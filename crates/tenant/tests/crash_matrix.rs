//! Crash-safety matrix for the spill path: a process killed at any
//! point during an eviction must never lose the tenant's previous good
//! spill container. The spill protocol is write-temp-sibling + rename,
//! so the matrix simulates every observable intermediate state the
//! kill can leave on disk and proves each one recovers.

use rds_geometry::Point;
use rds_tenant::{spill, TenantRegistry, TenantTemplate};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rds-tenant-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn template() -> TenantTemplate {
    let mut t = TenantTemplate::new(1, 0.5);
    t.seed = 7;
    t.expected_len = 256;
    t
}

fn batch(salt: u64, n: u64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(vec![((salt + i) % 7) as f64 * 10.0]))
        .collect()
}

/// Every way a kill can interleave with the temp-sibling protocol,
/// expressed as what the next process finds on disk next to the good
/// container written by a completed earlier spill.
#[test]
fn kill_mid_spill_never_loses_the_previous_good_container() {
    let control = TenantRegistry::new(template(), usize::MAX, scratch("ctl")).unwrap();
    control.ingest("t", &batch(0, 40), None).unwrap();

    // debris: (tag, simulated temp-sibling content the kill left behind)
    let debris: [(&str, Option<&str>); 4] = [
        ("clean", None),                       // killed before the write began
        ("empty-tmp", Some("")),               // killed right after create
        ("partial-tmp", Some("{\"magic\":\"rds-che")), // killed mid-write
        ("full-tmp", Some("not-even-json")),   // killed before the rename
    ];
    for (tag, tmp) in debris {
        let dir = scratch(tag);
        {
            let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
            reg.ingest("t", &batch(0, 40), None).unwrap();
            assert!(reg.evict("t").unwrap(), "complete one good spill");
        }
        let good_path = spill::container_path(&dir, "t");
        assert!(good_path.exists());
        if let Some(content) = tmp {
            // the temp sibling the killed process would have left
            let mut tmp_path = good_path.as_os_str().to_owned();
            tmp_path.push(".tmp-99999");
            std::fs::write(std::path::PathBuf::from(tmp_path), content).unwrap();
        }
        // next process: the tenant restores from the intact container,
        // bit-identical to the never-evicted control
        let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
        assert_eq!(
            reg.f0_estimate("t").unwrap().to_bits(),
            control.f0_estimate("t").unwrap().to_bits(),
            "debris case {tag}: restore diverged"
        );
        assert_eq!(reg.snapshot("t").unwrap().seen(), 40, "debris case {tag}");
    }
}

/// A kill that corrupts the container itself (torn rename on a broken
/// filesystem, bit rot) is detected by the checksum and surfaces as a
/// typed error — the registry refuses to resurrect a damaged tenant
/// rather than silently restarting it empty.
#[test]
fn corrupted_container_is_a_typed_error_not_a_silent_reset() {
    let dir = scratch("corrupt");
    {
        let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
        reg.ingest("t", &batch(0, 40), None).unwrap();
        reg.evict("t").unwrap();
    }
    let path = spill::container_path(&dir, "t");
    let good = std::fs::read_to_string(&path).unwrap();
    let mut bytes = good.into_bytes();
    let pos = bytes.len() / 2;
    bytes[pos] = bytes[pos].wrapping_add(1);
    std::fs::write(&path, bytes).unwrap();

    let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
    let err = reg.f0_estimate("t").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("checkpoint rejected"), "got: {msg}");
    // other tenants are unaffected by one tenant's bad container
    assert!(reg.f0_estimate("other").is_ok());
}

/// A spill failure during budget eviction must leave the victim fully
/// serviceable (the sweep stops; the registry runs over budget rather
/// than dropping data).
#[test]
fn failed_spill_leaves_the_victim_resident_and_correct() {
    let dir = scratch("rofail");
    let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
    reg.ingest("t", &batch(0, 40), None).unwrap();
    let expected = reg.f0_estimate("t").unwrap();
    // make the tenant's shard directory path un-creatable: a *file*
    // squats where the shard dir must go
    let shard_dir = spill::container_path(&dir, "t");
    let shard_dir = shard_dir.parent().unwrap();
    let _ = std::fs::remove_dir_all(shard_dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(shard_dir, b"squatter").unwrap();
    assert!(reg.evict("t").is_err(), "spill must report the failure");
    assert!(reg.is_resident("t"), "failed spill must not drop the sampler");
    assert_eq!(reg.f0_estimate("t").unwrap().to_bits(), expected.to_bits());
}
