//! Property tests of eviction invisibility across every sampler family.
//!
//! The registry itself hosts the facade's two backend families; the
//! spill container discipline (`spill::seal_state` / `spill::open_state`)
//! is generic over [`Checkpointable`], and these tests prove the
//! spill → restore → continue path bit-identical to a never-evicted
//! sampler for **all six** families, under adversarial schedules that
//! re-evict at many random points mid-stream. A separate property drives
//! the registry end-to-end against a never-evicting control with random
//! interleavings and forced evictions.

use proptest::prelude::*;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use rds_tenant::{spill, TenantRegistry, TenantTemplate};
use robust_distinct_sampling::core::{
    Checkpointable, DistinctSampler, FixedRateWindowSampler, JlRobustSampler, KDistinctSampler,
    KWithReplacementSampler, MetricRobustSampler, RobustL0Sampler, SamplerConfig,
    SimHashPartitioner, SlidingWindowSampler,
};

fn cfg(seed: u64, n: u64) -> SamplerConfig {
    SamplerConfig::builder(1, 0.5)
        .seed(seed)
        .expected_len(n.max(4))
        .kappa0(1.0)
        .build()
        .unwrap()
}

fn stream(n: u64, n_entities: u64) -> Vec<StreamItem> {
    (0..n)
        .map(|i| {
            let e = i % n_entities.max(1);
            StreamItem::new(
                Point::new(vec![e as f64 * 10.0 + 0.01 * ((i / 7) % 5) as f64]),
                Stamp::new(i, i / 3),
            )
        })
        .collect()
}

/// Feeds the stream to a control copy and an evicted copy; the evicted
/// copy is sealed into a spill container and reopened at every schedule
/// point (an adversarial churn no real budget would produce). Both must
/// stay observationally bit-identical throughout and at the end.
fn assert_eviction_invisible<S>(control: S, evicted: S, items: &[StreamItem], schedule: &[usize])
where
    S: DistinctSampler + Checkpointable,
{
    let mut control = control;
    let mut evicted = evicted;
    let mut cuts: Vec<usize> = schedule.iter().map(|&s| s % (items.len() + 1)).collect();
    cuts.sort_unstable();
    let mut at = 0usize;
    for &cut in &cuts {
        for it in &items[at..cut] {
            control.process(it);
            evicted.process(it);
        }
        at = cut;
        let container = spill::seal_state(&evicted);
        evicted = spill::open_state::<S>(&container).expect("reopen spilled state");
    }
    for it in &items[at..] {
        control.process(it);
        evicted.process(it);
    }
    assert_eq!(
        control.f0_estimate().to_bits(),
        evicted.f0_estimate().to_bits(),
        "estimates diverged across evictions"
    );
    assert_eq!(control.seen(), evicted.seen());
    assert_eq!(control.words(), evicted.words(), "candidate structure diverged");
    for draw in 0..4 {
        let a = control.query_record();
        let b = evicted.query_record();
        assert_eq!(
            a.as_ref().map(|r| &r.rep),
            b.as_ref().map(|r| &r.rep),
            "draw {draw}: PRNG position did not survive eviction churn"
        );
        assert_eq!(a.map(|r| r.count), b.map(|r| r.count), "draw {draw}: counts");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn infinite_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 50u64..300,
        n_entities in 2u64..40,
        schedule in proptest::collection::vec(0usize..10_000, 1..6),
    ) {
        let items = stream(n, n_entities);
        assert_eviction_invisible(
            RobustL0Sampler::try_new(cfg(seed, n)).unwrap(),
            RobustL0Sampler::try_new(cfg(seed, n)).unwrap(),
            &items,
            &schedule,
        );
    }

    #[test]
    fn sliding_window_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 50u64..300,
        n_entities in 2u64..40,
        w in 1u64..200,
        time_flag in 0u8..2,
        schedule in proptest::collection::vec(0usize..10_000, 1..6),
    ) {
        let items = stream(n, n_entities);
        let window = if time_flag == 1 { Window::Time(w) } else { Window::Sequence(w) };
        assert_eviction_invisible(
            SlidingWindowSampler::try_new(cfg(seed, n), window).unwrap(),
            SlidingWindowSampler::try_new(cfg(seed, n), window).unwrap(),
            &items,
            &schedule,
        );
    }

    #[test]
    fn fixed_rate_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 50u64..250,
        n_entities in 2u64..40,
        w in 1u64..200,
        level in 0u32..4,
        schedule in proptest::collection::vec(0usize..10_000, 1..6),
    ) {
        let items = stream(n, n_entities);
        assert_eviction_invisible(
            FixedRateWindowSampler::new(cfg(seed, n), Window::Sequence(w), level),
            FixedRateWindowSampler::new(cfg(seed, n), Window::Sequence(w), level),
            &items,
            &schedule,
        );
    }

    #[test]
    fn k_distinct_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 50u64..250,
        n_entities in 2u64..40,
        k in 1usize..6,
        schedule in proptest::collection::vec(0usize..10_000, 1..6),
    ) {
        let items = stream(n, n_entities);
        assert_eviction_invisible(
            KDistinctSampler::try_new(cfg(seed, n), k).unwrap(),
            KDistinctSampler::try_new(cfg(seed, n), k).unwrap(),
            &items,
            &schedule,
        );
    }

    #[test]
    fn metric_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 40u64..150,
        n_entities in 2u64..16,
        schedule in proptest::collection::vec(0usize..10_000, 1..5),
    ) {
        let dim = 8usize;
        let items: Vec<StreamItem> = (0..n)
            .map(|i| {
                let e = (i % n_entities) as usize;
                let mut v = vec![0.05; dim];
                v[e % dim] = 10.0 + (e / dim) as f64 * 5.0;
                v[(e + 1) % dim] += 0.001 * ((i / 7) % 3) as f64;
                StreamItem::new(Point::new(v), Stamp::at(i))
            })
            .collect();
        let mk = || {
            let part = SimHashPartitioner::try_new(dim, 10, 0.05, seed ^ 0xA5).unwrap();
            MetricRobustSampler::try_new(part, 16, seed).unwrap()
        };
        assert_eviction_invisible(mk(), mk(), &items, &schedule);
    }

    #[test]
    fn jl_family_survives_eviction_churn(
        seed in 0u64..1000,
        n in 40u64..150,
        n_entities in 2u64..16,
        schedule in proptest::collection::vec(0usize..10_000, 1..5),
    ) {
        let dim = 48usize;
        let items: Vec<StreamItem> = (0..n)
            .map(|i| {
                let e = (i % n_entities) as usize;
                let mut v = vec![0.0; dim];
                v[e % dim] = 100.0 * (1.0 + (e / dim) as f64);
                v[(e + 3) % dim] = 0.001 * ((i / 5) % 4) as f64;
                StreamItem::new(Point::new(v), Stamp::at(i))
            })
            .collect();
        let mk = || {
            let base = SamplerConfig::builder(dim, 0.5)
                .seed(seed)
                .expected_len(n.max(4))
                .build()
                .unwrap();
            JlRobustSampler::try_new(dim, 0.5, 0.5, base).unwrap()
        };
        assert_eviction_invisible(mk(), mk(), &items, &schedule);
    }

    /// The registry end to end: random interleaved traffic over a small
    /// tenant set with forced evictions at adversarial points must match
    /// a never-evicting control tenant for tenant, bit for bit.
    #[test]
    fn registry_matches_control_under_adversarial_evictions(
        seed in 0u64..500,
        raw_ops in proptest::collection::vec(0u64..1_000_000, 5..40),
    ) {
        // each op packs (tenant, batch size, eviction target)
        let ops: Vec<(u64, u64, u64)> = raw_ops
            .iter()
            .map(|&r| (r % 4, r / 4 % 19 + 1, r / 80 % 8))
            .collect();
        let scratch = |tag: &str| {
            let dir = std::env::temp_dir().join(format!(
                "rds-tenant-prop-{}-{seed}-{tag}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let mut template = TenantTemplate::new(1, 0.5);
        template.seed = seed;
        template.expected_len = 256;
        let control = TenantRegistry::new(template.clone(), usize::MAX, scratch("ctl")).unwrap();
        let evicting = TenantRegistry::new(template, usize::MAX, scratch("ev")).unwrap();
        for (round, &(tenant, n, evict_tenant)) in ops.iter().enumerate() {
            let id = format!("t{tenant}");
            let pts: Vec<Point> = (0..n)
                .map(|i| Point::new(vec![((tenant * 31 + round as u64 + i) % 9) as f64 * 10.0]))
                .collect();
            control.ingest(&id, &pts, None).unwrap();
            evicting.ingest(&id, &pts, None).unwrap();
            // adversary: evict someone (maybe the tenant just written)
            evicting.evict(&format!("t{}", evict_tenant % 4)).unwrap();
            prop_assert_eq!(
                control.f0_estimate(&id).unwrap().to_bits(),
                evicting.f0_estimate(&id).unwrap().to_bits(),
                "tenant {} diverged at round {}", id, round
            );
        }
        for tenant in 0..4u64 {
            let id = format!("t{tenant}");
            prop_assert_eq!(control.snapshot(&id).unwrap().seen(), evicting.snapshot(&id).unwrap().seen());
            for draw in 0..3u64 {
                let a = control.query_at(&id, draw).unwrap();
                let b = evicting.query_at(&id, draw).unwrap();
                prop_assert_eq!(a.as_ref().map(|r| &r.rep), b.as_ref().map(|r| &r.rep));
            }
        }
    }
}

#[test]
fn k_with_replacement_survives_eviction_churn() {
    // not a DistinctSampler (returns k parallel samples) — direct test
    let items = stream(200, 20);
    let mut control = KWithReplacementSampler::try_new(cfg(9, 200), 3).unwrap();
    let mut evicted = KWithReplacementSampler::try_new(cfg(9, 200), 3).unwrap();
    for (i, it) in items.iter().enumerate() {
        control.process(&it.point);
        evicted.process(&it.point);
        if i % 47 == 13 {
            let container = spill::seal_state(&evicted);
            evicted = spill::open_state(&container).expect("reopen");
        }
    }
    assert_eq!(control.sample(), evicted.sample());
    assert_eq!(control.k(), evicted.k());
}

#[test]
fn containers_reject_tampering_with_typed_errors() {
    let mut s = RobustL0Sampler::try_new(cfg(7, 64)).unwrap();
    for it in stream(64, 8) {
        DistinctSampler::process(&mut s, &it);
    }
    let good = spill::seal_state(&s);
    // round trip sanity
    spill::open_state::<RobustL0Sampler>(&good).expect("good container opens");
    // truncation at every 10% mark
    for pct in 0..10 {
        let cut = good.len() * pct / 10;
        assert!(
            spill::open_state::<RobustL0Sampler>(&good[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    // payload byte flip fails the checksum
    let mut bytes = good.clone().into_bytes();
    let pos = good.find("payload").unwrap() + 20;
    bytes[pos] = bytes[pos].wrapping_add(1);
    let text = String::from_utf8(bytes).unwrap();
    assert!(spill::open_state::<RobustL0Sampler>(&text).is_err());
    // wrong family: a window sampler cannot open as an infinite one
    let mut w = SlidingWindowSampler::try_new(cfg(7, 64), Window::Sequence(16)).unwrap();
    for it in stream(64, 8) {
        DistinctSampler::process(&mut w, &it);
    }
    let wc = spill::seal_state(&w);
    assert!(spill::open_state::<RobustL0Sampler>(&wc).is_err());
}
