//! Integration tests of the tenant registry: budget-bounded residency,
//! eviction invisibility (spilled tenants answer bit-identically to
//! never-evicted controls), restart durability, and request validation.

use rds_geometry::Point;
use rds_core::RdsError;
use rds_stream::{Stamp, Window};
use rds_tenant::{TenantRegistry, TenantTemplate, MAX_TENANT_ID_LEN};

/// A fresh scratch spill directory unique to this test.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rds-tenant-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn template() -> TenantTemplate {
    let mut t = TenantTemplate::new(1, 0.5);
    t.seed = 42;
    t.expected_len = 256;
    t
}

/// `n` points for tenant-local entity ids derived from `salt`.
fn batch(salt: u64, n: u64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(vec![((salt + i) % 7) as f64 * 10.0 + 0.01 * (i % 3) as f64]))
        .collect()
}

#[test]
fn tenants_are_created_on_first_touch_and_answer() {
    let reg = TenantRegistry::new(template(), usize::MAX, scratch("touch")).unwrap();
    let ack = reg.ingest("acme", &batch(0, 50), None).unwrap();
    assert_eq!(ack.seen, 50);
    assert!(ack.words > 0);
    assert!(reg.f0_estimate("acme").unwrap() >= 1.0);
    assert!(reg.query_at("acme", 0).unwrap().is_some());
    // an untouched tenant id is its own empty stream, not an error
    assert_eq!(reg.f0_estimate("fresh").unwrap(), 0.0);
    assert_eq!(reg.stats().tenants, 2);
}

#[test]
fn tenants_are_independent_and_individually_deterministic() {
    let reg = TenantRegistry::new(template(), usize::MAX, scratch("indep")).unwrap();
    reg.ingest("a", &batch(0, 80), None).unwrap();
    reg.ingest("b", &batch(3, 40), None).unwrap();
    assert_eq!(reg.snapshot("a").unwrap().seen(), 80);
    assert_eq!(reg.snapshot("b").unwrap().seen(), 40);

    // a second registry with the same template replays identically
    let reg2 = TenantRegistry::new(template(), usize::MAX, scratch("indep2")).unwrap();
    reg2.ingest("a", &batch(0, 80), None).unwrap();
    assert_eq!(
        reg.f0_estimate("a").unwrap().to_bits(),
        reg2.f0_estimate("a").unwrap().to_bits()
    );
}

#[test]
fn budget_bounds_resident_words_via_eviction() {
    // size the budget off one real tenant's footprint
    let probe = TenantRegistry::new(template(), usize::MAX, scratch("probe")).unwrap();
    probe.ingest("t", &batch(0, 60), None).unwrap();
    let one = probe.stats().resident_words as usize;
    assert!(one > 0);

    let budget = one * 3;
    let reg = TenantRegistry::new(template(), budget, scratch("budget")).unwrap();
    for t in 0..20u64 {
        reg.ingest(&format!("tenant-{t}"), &batch(t, 60), None).unwrap();
        assert!(
            reg.resident_words() <= budget,
            "after tenant {t}: resident {} exceeds budget {budget}",
            reg.resident_words()
        );
    }
    let stats = reg.stats();
    assert_eq!(stats.tenants, 20);
    assert!(stats.resident < 20, "evictions must have happened");
    assert!(stats.spills > 0);
    // every tenant still answers — spilled ones restore transparently
    for t in 0..20u64 {
        assert!(reg.f0_estimate(&format!("tenant-{t}")).unwrap() >= 1.0);
    }
}

#[test]
fn eviction_is_invisible_bit_identical_answers() {
    let control = TenantRegistry::new(template(), usize::MAX, scratch("ctl")).unwrap();
    let squeezed = {
        let probe = TenantRegistry::new(template(), usize::MAX, scratch("sz")).unwrap();
        probe.ingest("t", &batch(0, 60), None).unwrap();
        let one = probe.stats().resident_words as usize;
        // room for roughly two tenants: constant churn across six
        TenantRegistry::new(template(), one * 2, scratch("sq")).unwrap()
    };
    let ids: Vec<String> = (0..6).map(|t| format!("t{t}")).collect();
    // interleaved traffic pattern: each round touches every tenant, so
    // the squeezed registry spills and restores continuously
    for round in 0..5u64 {
        for (t, id) in ids.iter().enumerate() {
            let pts = batch(round * 7 + t as u64, 30);
            control.ingest(id, &pts, None).unwrap();
            squeezed.ingest(id, &pts, None).unwrap();
        }
    }
    assert!(squeezed.stats().spills > 0, "the squeeze must actually evict");
    assert!(squeezed.stats().restores > 0);
    for id in &ids {
        assert_eq!(
            control.f0_estimate(id).unwrap().to_bits(),
            squeezed.f0_estimate(id).unwrap().to_bits(),
            "tenant {id}: f0 diverged across eviction"
        );
        assert_eq!(
            control.snapshot(id).unwrap().seen(),
            squeezed.snapshot(id).unwrap().seen()
        );
        for draw in 0..4u64 {
            let a = control.query_at(id, draw).unwrap();
            let b = squeezed.query_at(id, draw).unwrap();
            assert_eq!(
                a.as_ref().map(|r| &r.rep),
                b.as_ref().map(|r| &r.rep),
                "tenant {id} draw {draw}: sample diverged across eviction"
            );
            assert_eq!(a.map(|r| r.count), b.map(|r| r.count));
        }
        let ka = control.query_k_at(id, 3, 9).unwrap();
        let kb = squeezed.query_k_at(id, 3, 9).unwrap();
        assert_eq!(ka.len(), kb.len());
        for (x, y) in ka.iter().zip(kb.iter()) {
            assert_eq!(x.rep, y.rep);
        }
    }
}

#[test]
fn spill_all_then_reopen_resumes_every_tenant() {
    let dir = scratch("reopen");
    let control = TenantRegistry::new(template(), usize::MAX, scratch("reopen-ctl")).unwrap();
    {
        let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
        for t in 0..5u64 {
            let id = format!("t{t}");
            reg.ingest(&id, &batch(t, 40), None).unwrap();
            control.ingest(&id, &batch(t, 40), None).unwrap();
        }
        assert_eq!(reg.spill_all().unwrap(), 5);
        assert_eq!(reg.resident_words(), 0);
    }
    // a new process pointed at the same directory
    let reg = TenantRegistry::new(template(), usize::MAX, &dir).unwrap();
    for t in 0..5u64 {
        let id = format!("t{t}");
        let pts = batch(t + 100, 25);
        reg.ingest(&id, &pts, None).unwrap();
        control.ingest(&id, &pts, None).unwrap();
        assert_eq!(
            reg.f0_estimate(&id).unwrap().to_bits(),
            control.f0_estimate(&id).unwrap().to_bits(),
            "tenant {id}: restart broke bit-identity"
        );
        assert_eq!(reg.snapshot(&id).unwrap().seen(), 65);
    }
}

#[test]
fn windowed_tenants_advance_and_expire() {
    let mut t = template();
    t.window = Window::Time(10);
    let reg = TenantRegistry::new(t, usize::MAX, scratch("window")).unwrap();
    let times: Vec<u64> = (0..30).collect();
    reg.ingest("w", &batch(0, 30), Some(&times)).unwrap();
    let live = reg.f0_estimate("w").unwrap();
    assert!(live >= 1.0);
    // advance far past the window: everything expires
    reg.advance("w", Stamp::new(30, 1_000)).unwrap();
    assert_eq!(reg.f0_estimate("w").unwrap(), 0.0);
}

#[test]
fn explicit_evict_and_residency_probes() {
    let reg = TenantRegistry::new(template(), usize::MAX, scratch("evict")).unwrap();
    reg.ingest("x", &batch(0, 20), None).unwrap();
    assert!(reg.is_resident("x"));
    assert!(reg.evict("x").unwrap());
    assert!(!reg.is_resident("x"));
    assert!(!reg.evict("x").unwrap(), "double evict is a no-op");
    // still answers (restores), and is resident again afterwards
    assert!(reg.f0_estimate("x").unwrap() >= 1.0);
    assert!(reg.is_resident("x"));
    assert!(!reg.evict("never-seen").unwrap());
}

#[test]
fn request_validation_rejects_bad_ids_and_mismatched_times() {
    let reg = TenantRegistry::new(template(), usize::MAX, scratch("validate")).unwrap();
    let bad = [
        String::new(),
        "a/b".to_owned(),
        "a b".to_owned(),
        "\u{e9}".to_owned(),
        "x".repeat(MAX_TENANT_ID_LEN + 1),
    ];
    for id in &bad {
        assert!(
            matches!(reg.f0_estimate(id), Err(RdsError::InvalidTenant { .. })),
            "id {id:?} should be rejected"
        );
    }
    // dots, dashes, underscores are tenant-namespace bread and butter
    for id in ["a.b-c_d", "UPPER", "0", &"y".repeat(MAX_TENANT_ID_LEN)] {
        assert!(reg.f0_estimate(id).is_ok(), "id {id:?} should be accepted");
    }
    let err = reg
        .ingest("ok", &batch(0, 3), Some(&[1, 2]))
        .unwrap_err();
    assert!(matches!(err, RdsError::InvalidTenant { .. }));
}

#[test]
fn stats_track_lifecycle_counters() {
    let reg = TenantRegistry::new(template(), usize::MAX, scratch("stats")).unwrap();
    assert_eq!(reg.stats().tenants, 0);
    reg.ingest("a", &batch(0, 10), None).unwrap();
    reg.ingest("b", &batch(1, 10), None).unwrap();
    let s = reg.stats();
    assert_eq!((s.tenants, s.resident, s.creates), (2, 2, 2));
    assert_eq!((s.spills, s.restores), (0, 0));
    assert!(s.resident_words > 0);
    reg.evict("a").unwrap();
    reg.f0_estimate("a").unwrap();
    let s = reg.stats();
    assert_eq!((s.spills, s.restores), (1, 1));
    assert_eq!(s.creates, 2, "restore must not count as a create");
}

#[test]
fn concurrent_tenants_under_pressure_stay_consistent() {
    use std::sync::Arc;
    let probe = TenantRegistry::new(template(), usize::MAX, scratch("conc-probe")).unwrap();
    probe.ingest("t", &batch(0, 60), None).unwrap();
    let one = probe.stats().resident_words as usize;
    let reg = Arc::new(TenantRegistry::new(template(), one * 3, scratch("conc")).unwrap());
    let mut handles = Vec::new();
    for w in 0..4u64 {
        let reg = Arc::clone(&reg);
        handles.push(std::thread::spawn(move || {
            // each worker owns two tenants: per-tenant traffic is
            // single-writer, the budget pressure is cross-thread
            for round in 0..6u64 {
                for t in [w * 2, w * 2 + 1] {
                    let id = format!("c{t}");
                    reg.ingest(&id, &batch(round + t, 25), None).unwrap();
                    assert!(reg.f0_estimate(&id).unwrap() >= 1.0);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = reg.stats();
    assert_eq!(stats.tenants, 8);
    for t in 0..8u64 {
        assert_eq!(reg.snapshot(&format!("c{t}")).unwrap().seen(), 150);
    }
}
