//! Spill containers and the sharded spill directory layout.
//!
//! An evicted tenant's state leaves memory as exactly the checkpoint
//! container the rest of the workspace already writes (`rds-checkpoint`
//! magic, format version, FNV-1a checksum over the canonical payload
//! bytes — see `WriterCheckpoint::to_container_json`), landed with
//! [`rds_core::persist::write_atomic`] so a crash mid-spill can never
//! destroy the previous good container: the incomplete write stays on a
//! temp sibling and the rename is the commit.
//!
//! Containers live under `spill_dir/{hh}/{id}.chk` where `hh` is the low
//! byte of `fnv1a64(id)` in hex — 256 shard directories, so a million
//! spilled tenants do not pile into one directory and directory scans
//! stay cheap.
//!
//! The registry itself spills whole writers via their
//! [`WriterCheckpoint`](robust_distinct_sampling::WriterCheckpoint); the
//! generic [`seal_state`]/[`open_state`] pair below wraps *any*
//! [`Checkpointable`] sampler state in the same container discipline, so
//! the eviction-invisibility property tests can drive every sampler
//! family — not just the two the facade hosts.

use rds_core::{Checkpointable, RdsError};
use robust_distinct_sampling::{fnv1a64, CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MAGIC};
use serde::Deserialize;
use std::path::{Path, PathBuf};

/// Where tenant `id`'s spill container lives under `spill_dir`:
/// `spill_dir/{hh}/{id}.chk`, sharded by the low byte of the id's hash.
pub fn container_path(spill_dir: &Path, id: &str) -> PathBuf {
    let shard = fnv1a64(id.as_bytes()) & 0xff;
    spill_dir.join(format!("{shard:02x}")).join(format!("{id}.chk"))
}

/// Writes tenant `id`'s spill container atomically (temp sibling +
/// rename), creating the shard directory on first use. Returns the final
/// path.
///
/// # Errors
///
/// [`RdsError::Checkpoint`] when the shard directory cannot be created
/// or the atomic write fails; the previous container (if any) is intact
/// in every failure case.
pub fn write_container(spill_dir: &Path, id: &str, json: &str) -> Result<PathBuf, RdsError> {
    let path = container_path(spill_dir, id);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| {
            RdsError::checkpoint(format!("create spill shard dir {}: {e}", parent.display()))
        })?;
    }
    rds_core::persist::write_atomic(&path, json).map_err(|e| {
        RdsError::checkpoint(format!("write spill container {}: {e}", path.display()))
    })?;
    Ok(path)
}

/// Reads tenant `id`'s spill container if one exists. `Ok(None)` means
/// the tenant has never been spilled (a fresh sampler should be built);
/// any other failure to read is an error, not an excuse to silently
/// restart the tenant from scratch.
///
/// # Errors
///
/// [`RdsError::Checkpoint`] for any I/O failure other than the file not
/// existing.
pub fn read_container(spill_dir: &Path, id: &str) -> Result<Option<String>, RdsError> {
    let path = container_path(spill_dir, id);
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(RdsError::checkpoint(format!(
            "read spill container {}: {e}",
            path.display()
        ))),
    }
}

/// Seals any [`Checkpointable`] sampler's state into a checkpoint
/// container string — same magic, version and checksum discipline as the
/// facade's writer containers, so a mixed-up file fails loudly instead
/// of parsing.
pub fn seal_state<S: Checkpointable>(sampler: &S) -> String {
    let payload_json =
        // lint:allow(L9) serializing an in-memory Value tree has no I/O
        // and no unrepresentable cases; it cannot fail
        serde_json::to_string(&sampler.checkpoint_state()).expect("value serialization is infallible");
    let checksum = fnv1a64(payload_json.as_bytes());
    format!(
        "{{\"magic\":\"{CHECKPOINT_MAGIC}\",\
         \"version\":{CHECKPOINT_FORMAT_VERSION},\
         \"checksum\":{checksum},\
         \"payload\":{payload_json}}}"
    )
}

/// Verifies and reopens a container written by [`seal_state`], restoring
/// the sampler through its panic-free `try_from_state` path.
///
/// # Errors
///
/// [`RdsError::Checkpoint`] naming what failed: unparseable JSON, bad
/// magic, unsupported version, checksum mismatch, malformed state, or a
/// state the sampler family rejects.
pub fn open_state<S: Checkpointable>(text: &str) -> Result<S, RdsError> {
    let payload = verify_container(text)?;
    let state = S::State::from_value(&payload)
        .map_err(|e| RdsError::checkpoint(format!("malformed spill payload: {e}")))?;
    S::try_from_state(state)
}

/// Checks a container's magic, format version and checksum, returning
/// the verified payload value.
fn verify_container(text: &str) -> Result<serde::Value, RdsError> {
    let container: serde::Value = serde_json::from_str(text)
        .map_err(|e| RdsError::checkpoint(format!("not a valid JSON container: {e}")))?;
    match container.get("magic") {
        Some(serde::Value::Str(m)) if m == CHECKPOINT_MAGIC => {}
        Some(serde::Value::Str(m)) => {
            return Err(RdsError::checkpoint(format!(
                "bad magic `{m}` (expected `{CHECKPOINT_MAGIC}`)"
            )))
        }
        _ => {
            return Err(RdsError::checkpoint(format!(
                "missing magic (expected `{CHECKPOINT_MAGIC}`) — not a checkpoint file?"
            )))
        }
    }
    let version = container
        .get("version")
        .map(u64::from_value)
        .transpose()
        .map_err(|e| RdsError::checkpoint(format!("bad version field: {e}")))?
        .ok_or_else(|| RdsError::checkpoint("missing format version"))?;
    if version != CHECKPOINT_FORMAT_VERSION {
        return Err(RdsError::checkpoint(format!(
            "unsupported format version {version} (this build reads \
             version {CHECKPOINT_FORMAT_VERSION})"
        )));
    }
    let expected = container
        .get("checksum")
        .map(u64::from_value)
        .transpose()
        .map_err(|e| RdsError::checkpoint(format!("bad checksum field: {e}")))?
        .ok_or_else(|| RdsError::checkpoint("missing checksum"))?;
    let payload = container
        .get("payload")
        .ok_or_else(|| RdsError::checkpoint("missing payload"))?;
    let payload_json =
        // lint:allow(L9) serializing an in-memory Value tree has no I/O
        // and no unrepresentable cases; it cannot fail
        serde_json::to_string(payload).expect("value serialization is infallible");
    let actual = fnv1a64(payload_json.as_bytes());
    if actual != expected {
        return Err(RdsError::checkpoint(format!(
            "checksum mismatch (stored {expected:#018x}, computed {actual:#018x}) — \
             the payload was truncated or altered"
        )));
    }
    Ok(payload.clone())
}
