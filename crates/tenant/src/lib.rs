//! # rds-tenant
//!
//! Multi-tenant sampler registry: one process, millions of keyed
//! streams, one global space budget.
//!
//! A [`TenantRegistry`] owns a sampler per tenant id, all built from one
//! [`TenantTemplate`] (per-tenant seeds derive from the id, so tenants
//! are independent yet individually deterministic). Resident samplers
//! are metered in machine `words()` — the paper's space-accounting unit
//! — against a global budget; when the budget runs out, a second-chance
//! clock evicts idle tenants by spilling their complete
//! `Checkpointable` state to checkpoint containers on disk (atomic
//! writes, sharded directory) and restores them lazily on next touch.
//!
//! **Eviction is invisible.** A spilled-and-restored tenant continues
//! from the exact PRNG position it was evicted at: every subsequent
//! answer is bit-identical (`f64::to_bits` identical) to a tenant that
//! was never evicted. The property tests drive this across every
//! sampler family and adversarial eviction schedules.
//!
//! ```
//! use rds_tenant::{TenantRegistry, TenantTemplate};
//! use rds_geometry::Point;
//!
//! let dir = std::env::temp_dir().join("rds-tenant-doc");
//! let reg = TenantRegistry::new(TenantTemplate::new(2, 0.1), 1 << 20, &dir).unwrap();
//! reg.ingest("acme", &[Point::new(vec![1.0, 2.0])], None).unwrap();
//! assert!(reg.f0_estimate("acme").unwrap() >= 1.0);
//! ```

#![warn(missing_docs)]

mod registry;
pub mod spill;

pub use registry::{
    validate_tenant_id, RegistryStats, TenantAck, TenantRegistry, TenantTemplate,
    MAX_TENANT_ID_LEN,
};
