//! The tenant registry: millions of keyed sampler streams in one
//! process, metered against one global space budget.
//!
//! # Locking discipline (the basis of lint rule L9)
//!
//! Three kinds of lock exist and they nest strictly:
//!
//! 1. the registry-wide `map` lock (tenant id → entry) and `ring` lock
//!    (eviction clock) — held for map/deque operations ONLY, never
//!    across a slot acquisition and never across spill/restore I/O;
//! 2. one per-tenant `slot` lock — MAY be held across that tenant's own
//!    spill/restore I/O (that is the point: one slow tenant stalls only
//!    itself), and a thread never holds two slot locks at once;
//! 3. lock-free fields (`referenced` bits, the published reader pointer,
//!    the resident-words gauge) — the read path touches only these plus
//!    one brief map lookup, so queries against resident tenants never
//!    contend with an eviction writing another tenant to disk.
//!
//! Budget admission (`reserve`) runs BEFORE the caller takes its slot
//! lock, so eviction — which takes victim slot locks — can never
//! deadlock against an admission holding one.

use crate::spill;
use parking_lot::{AtomicArc, Mutex};
use rds_core::RdsError;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use robust_distinct_sampling::{
    fnv1a64, PublishCadence, Rds, RdsReader, RdsWriter, Snapshot, WriterCheckpoint,
};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tenant ids become spill filenames, so the charset is locked down
/// hard: 1..=128 bytes of `[A-Za-z0-9._-]`. Rejecting instead of
/// escaping keeps the on-disk layout bijective with the id space.
pub const MAX_TENANT_ID_LEN: usize = 128;

/// Validates a tenant id (see [`MAX_TENANT_ID_LEN`]).
///
/// # Errors
///
/// [`RdsError::InvalidTenant`] naming the offending property.
pub fn validate_tenant_id(id: &str) -> Result<(), RdsError> {
    if id.is_empty() {
        return Err(RdsError::invalid_tenant("tenant id must be non-empty"));
    }
    if id.len() > MAX_TENANT_ID_LEN {
        return Err(RdsError::invalid_tenant(format!(
            "tenant id length {} exceeds the maximum of {MAX_TENANT_ID_LEN}",
            id.len()
        )));
    }
    if let Some(bad) = id
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(RdsError::invalid_tenant(format!(
            "tenant id contains {bad:?}; allowed characters are [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// The per-tenant sampler configuration every tenant of a registry
/// shares — the multi-tenant analogue of the server's backend config.
/// Each tenant's sampler is seeded with `seed ^ fnv1a64(id)`, so
/// tenants are mutually independent yet individually deterministic:
/// re-creating a tenant from scratch replays the same draws.
#[derive(Clone, Debug)]
pub struct TenantTemplate {
    /// Point dimensionality (required, must be positive).
    pub dim: usize,
    /// Near-duplicate radius (required, positive and finite).
    pub alpha: f64,
    /// Window regime; [`Window::Infinite`] for whole-stream tenants.
    pub window: Window,
    /// Base seed; per-tenant seeds derive from it (see type docs).
    pub seed: u64,
    /// Expected per-tenant stream length (sampler sizing hint).
    pub expected_len: u64,
    /// Samples per `query_k` call, when set.
    pub k: Option<usize>,
    /// `(eps, delta)`-style count accuracy target, when set.
    pub eps: Option<f64>,
}

impl TenantTemplate {
    /// A template over `dim`-dimensional points with near-duplicate
    /// radius `alpha` and defaults everywhere else (infinite window,
    /// seed 0, expected length 2^20).
    pub fn new(dim: usize, alpha: f64) -> Self {
        TenantTemplate {
            dim,
            alpha,
            window: Window::Infinite,
            seed: 0,
            expected_len: 1 << 20,
            k: None,
            eps: None,
        }
    }

    /// The seed tenant `id`'s sampler is built with.
    pub fn tenant_seed(&self, id: &str) -> u64 {
        self.seed ^ fnv1a64(id.as_bytes())
    }

    /// The builder for tenant `id`, with every template parameter set
    /// explicitly — on restore this turns the checkpoint's config echo
    /// into a hard cross-check, so a container from a differently
    /// configured registry fails loudly instead of resurrecting under
    /// the wrong parameters.
    fn builder(&self, id: &str) -> robust_distinct_sampling::RdsBuilder {
        let mut b = Rds::builder()
            .dim(self.dim)
            .alpha(self.alpha)
            .window(self.window)
            .shards(1)
            .seed(self.tenant_seed(id))
            .expected_len(self.expected_len)
            .publish_cadence(PublishCadence::Manual);
        if let Some(k) = self.k {
            b = b.k(k);
        }
        if let Some(eps) = self.eps {
            b = b.count_accuracy(eps);
        }
        b
    }

    fn build(&self, id: &str) -> Result<(RdsWriter, RdsReader), RdsError> {
        self.builder(id).build_split()
    }

    fn restore(&self, id: &str, chk: WriterCheckpoint) -> Result<(RdsWriter, RdsReader), RdsError> {
        self.builder(id).restore(chk)
    }
}

/// Where a tenant's sampler currently lives.
enum Slot {
    /// Never admitted in this process (and possibly spilled on disk by a
    /// previous one — admission checks the spill directory first).
    Vacant,
    /// In memory, charged `words` against the budget.
    Resident {
        writer: Box<RdsWriter>,
        words: usize,
    },
    /// On disk; the footprint it had when spilled stays in the entry's
    /// `last_words` as the admission estimate for its next restore.
    Spilled,
}

/// One tenant's registry entry. The entry itself is immortal once
/// created (cheap: a string, two pointers and three atomics) — only the
/// sampler inside the slot comes and goes with the budget.
struct TenantEntry {
    id: String,
    slot: Mutex<Slot>,
    /// Second-chance bit for the clock eviction scan.
    referenced: AtomicBool,
    /// Lock-free estimate feeding `reserve` before the slot is locked.
    last_words: AtomicUsize,
    /// The published read handle: `Some` exactly while resident. Query
    /// threads load this and answer from the snapshot without touching
    /// any lock the eviction path holds.
    reader: AtomicArc<Option<RdsReader>>,
}

/// What a mutating tenant operation reports back.
#[derive(Clone, Copy, Debug)]
pub struct TenantAck {
    /// The tenant's snapshot epoch after the operation.
    pub epoch: u64,
    /// Items this tenant has processed in total.
    pub seen: u64,
    /// The tenant's in-memory footprint in machine words.
    pub words: usize,
}

/// A point-in-time gauge of the registry, served on `/healthz`.
#[derive(Clone, Copy, Debug)]
pub struct RegistryStats {
    /// Tenants known to the registry (resident + spilled + vacant).
    pub tenants: u64,
    /// Tenants currently holding an in-memory sampler.
    pub resident: u64,
    /// Machine words the resident samplers occupy.
    pub resident_words: u64,
    /// The global budget in machine words.
    pub budget_words: u64,
    /// Lifetime count of evictions that wrote a spill container.
    pub spills: u64,
    /// Lifetime count of restores from spill containers.
    pub restores: u64,
    /// Lifetime count of fresh tenant sampler builds.
    pub creates: u64,
}

/// A registry of keyed sampler streams sharing one space budget.
///
/// Every operation takes the tenant id; tenants are created on first
/// touch, evicted to disk (checkpoint containers, atomic writes) when
/// the budget runs out, and transparently restored — bit-identical,
/// exact PRNG position — on their next touch. See the module docs for
/// the locking discipline.
pub struct TenantRegistry {
    template: TenantTemplate,
    budget_words: usize,
    spill_dir: PathBuf,
    /// Words a template-fresh sampler occupies — the admission estimate
    /// for tenants that have never been resident.
    fresh_words: usize,
    map: Mutex<HashMap<String, Arc<TenantEntry>>>,
    /// The eviction clock: entries enter on admission and leave when
    /// spilled (or requeue on a second chance).
    ring: Mutex<VecDeque<Arc<TenantEntry>>>,
    resident_words: AtomicUsize,
    resident_count: AtomicUsize,
    spills: AtomicU64,
    restores: AtomicU64,
    creates: AtomicU64,
}

impl TenantRegistry {
    /// Opens a registry: `budget_words` is the global cap on resident
    /// sampler footprint (the paper's space unit, `words()`), and
    /// `spill_dir` receives eviction containers — tenants spilled by a
    /// previous process in the same directory restore transparently.
    ///
    /// The budget is a target, not a straitjacket: a single tenant
    /// always gets to be resident even if it alone exceeds the budget
    /// (otherwise no request could ever be answered), and a burst of
    /// concurrent admissions can transiently overshoot until the next
    /// operation rebalances.
    ///
    /// # Errors
    ///
    /// Any template validation error from the underlying builder (the
    /// template is probed once here, so a bad configuration fails at
    /// registry construction, not on first traffic).
    pub fn new(
        template: TenantTemplate,
        budget_words: usize,
        spill_dir: impl Into<PathBuf>,
    ) -> Result<Self, RdsError> {
        let (mut probe_writer, _probe_reader) = template.build("probe")?;
        let fresh_words = probe_writer.words();
        Ok(TenantRegistry {
            template,
            budget_words,
            spill_dir: spill_dir.into(),
            fresh_words,
            map: Mutex::new(HashMap::new()),
            ring: Mutex::new(VecDeque::new()),
            resident_words: AtomicUsize::new(0),
            resident_count: AtomicUsize::new(0),
            spills: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            creates: AtomicU64::new(0),
        })
    }

    /// The global budget in machine words.
    pub fn budget_words(&self) -> usize {
        self.budget_words
    }

    /// Machine words currently charged by resident samplers.
    pub fn resident_words(&self) -> usize {
        self.resident_words.load(Ordering::Relaxed)
    }

    /// The spill directory this registry evicts into.
    pub fn spill_dir(&self) -> &std::path::Path {
        &self.spill_dir
    }

    /// A point-in-time gauge of the registry.
    pub fn stats(&self) -> RegistryStats {
        let tenants = { self.map.lock().len() } as u64;
        RegistryStats {
            tenants,
            resident: self.resident_count.load(Ordering::Relaxed) as u64,
            resident_words: self.resident_words.load(Ordering::Relaxed) as u64,
            budget_words: self.budget_words as u64,
            spills: self.spills.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            creates: self.creates.load(Ordering::Relaxed),
        }
    }

    /// Feeds a batch of points to tenant `id`, stamping them with the
    /// tenant's own sequence numbers (each tenant is its own stream —
    /// tenants never share stamps). `times` optionally carries one time
    /// coordinate per point for time-windowed templates. Publishes a
    /// fresh snapshot before returning, so readers observe the batch.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidTenant`] for a bad id or a `times` length
    /// mismatch; [`RdsError::Checkpoint`] when a restore from the spill
    /// directory fails.
    pub fn ingest(
        &self,
        id: &str,
        points: &[Point],
        times: Option<&[u64]>,
    ) -> Result<TenantAck, RdsError> {
        validate_tenant_id(id)?;
        if let Some(ts) = times {
            if ts.len() != points.len() {
                return Err(RdsError::invalid_tenant(format!(
                    "times length {} does not match points length {}",
                    ts.len(),
                    points.len()
                )));
            }
        }
        let entry = self.entry(id);
        self.reserve(self.estimate(&entry), id);
        let (ack, admitted) = {
            let mut slot = entry.slot.lock();
            let admitted = self.ensure_resident(&entry, &mut slot)?;
            let Slot::Resident { writer, words } = &mut *slot else {
                return Err(RdsError::checkpoint(
                    "tenant slot empty after admission (internal invariant)",
                ));
            };
            let before = *words;
            for (i, p) in points.iter().enumerate() {
                let seq = writer.seen();
                let stamp = match times.and_then(|ts| ts.get(i)) {
                    Some(&t) => Stamp::new(seq, t),
                    None => Stamp::at(seq),
                };
                writer.process_item(StreamItem::new(p.clone(), stamp));
            }
            writer.publish();
            let after = writer.words();
            *words = after;
            entry.last_words.store(after, Ordering::Relaxed);
            self.recharge(before, after);
            (
                TenantAck {
                    epoch: writer.epoch(),
                    seen: writer.seen(),
                    words: after,
                },
                admitted,
            )
        };
        self.finish_touch(&entry, admitted, id);
        Ok(ack)
    }

    /// Advances tenant `id`'s clock to `now` without feeding data —
    /// time-windowed tenants expire entries on wall-clock advance, not
    /// only on traffic. Publishes the post-advance snapshot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::ingest`].
    pub fn advance(&self, id: &str, now: Stamp) -> Result<TenantAck, RdsError> {
        validate_tenant_id(id)?;
        let entry = self.entry(id);
        self.reserve(self.estimate(&entry), id);
        let (ack, admitted) = {
            let mut slot = entry.slot.lock();
            let admitted = self.ensure_resident(&entry, &mut slot)?;
            let Slot::Resident { writer, words } = &mut *slot else {
                return Err(RdsError::checkpoint(
                    "tenant slot empty after admission (internal invariant)",
                ));
            };
            let before = *words;
            writer.advance(now);
            writer.publish();
            let after = writer.words();
            *words = after;
            entry.last_words.store(after, Ordering::Relaxed);
            self.recharge(before, after);
            (
                TenantAck {
                    epoch: writer.epoch(),
                    seen: writer.seen(),
                    words: after,
                },
                admitted,
            )
        };
        self.finish_touch(&entry, admitted, id);
        Ok(ack)
    }

    /// The tenant's current snapshot, admitting (restoring or creating)
    /// the tenant if it is not resident. For a resident tenant this is
    /// the lock-light path: one brief map lookup, then a lock-free
    /// pointer load — no slot lock, no contention with evictions of
    /// other tenants.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::ingest`].
    pub fn snapshot(&self, id: &str) -> Result<Arc<Snapshot>, RdsError> {
        validate_tenant_id(id)?;
        let entry = self.entry(id);
        entry.referenced.store(true, Ordering::Relaxed);
        if let Some(reader) = entry.reader.load().as_ref() {
            return Ok(reader.snapshot());
        }
        // Slow path: bring the tenant back (or to life).
        self.reserve(self.estimate(&entry), id);
        let admitted = {
            let mut slot = entry.slot.lock();
            self.ensure_resident(&entry, &mut slot)?
        };
        self.finish_touch(&entry, admitted, id);
        match entry.reader.load().as_ref() {
            Some(reader) => Ok(reader.snapshot()),
            // Only reachable if an eviction raced in between — retry via
            // the slot to serialize against it.
            None => {
                let mut slot = entry.slot.lock();
                self.ensure_resident(&entry, &mut slot)?;
                match entry.reader.load().as_ref() {
                    Some(reader) => Ok(reader.snapshot()),
                    None => Err(RdsError::checkpoint(
                        "tenant reader unpublished after admission (internal invariant)",
                    )),
                }
            }
        }
    }

    /// Draws one uniform entity sample from tenant `id` (see
    /// [`Snapshot::query_at`]); `draw` indexes the tenant's published
    /// sample sequence.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::ingest`].
    pub fn query_at(
        &self,
        id: &str,
        draw: u64,
    ) -> Result<Option<rds_core::GroupRecord>, RdsError> {
        Ok(self.snapshot(id)?.query_at(draw))
    }

    /// Draws `k` distinct-entity samples from tenant `id` (see
    /// [`Snapshot::query_k_at`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::ingest`].
    pub fn query_k_at(
        &self,
        id: &str,
        k: usize,
        draw: u64,
    ) -> Result<Vec<rds_core::GroupRecord>, RdsError> {
        Ok(self.snapshot(id)?.query_k_at(k, draw))
    }

    /// Tenant `id`'s distinct-entity estimate (see
    /// [`Snapshot::f0_estimate`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::ingest`].
    pub fn f0_estimate(&self, id: &str) -> Result<f64, RdsError> {
        Ok(self.snapshot(id)?.f0_estimate())
    }

    /// Spills every resident tenant to disk (graceful shutdown): after
    /// this returns `Ok`, the registry's entire state is on disk and a
    /// new process pointed at the same spill directory resumes every
    /// tenant bit-identically. Returns how many tenants were written.
    ///
    /// # Errors
    ///
    /// The first spill failure; tenants already spilled stay spilled,
    /// the failing tenant stays resident.
    pub fn spill_all(&self) -> Result<usize, RdsError> {
        let entries: Vec<Arc<TenantEntry>> = { self.map.lock().values().cloned().collect() };
        let mut spilled = 0usize;
        for entry in entries {
            let mut slot = entry.slot.lock();
            if self.spill_slot(&entry, &mut slot)? {
                spilled += 1;
            }
        }
        self.ring.lock().clear();
        Ok(spilled)
    }

    /// Evicts tenant `id` right now if it is resident (test/ops hook —
    /// normal eviction is budget-driven). Returns whether a container
    /// was written.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidTenant`] for a bad id, or the spill failure.
    pub fn evict(&self, id: &str) -> Result<bool, RdsError> {
        validate_tenant_id(id)?;
        let entry = { self.map.lock().get(id).cloned() };
        let Some(entry) = entry else { return Ok(false) };
        let mut slot = entry.slot.lock();
        self.spill_slot(&entry, &mut slot)
    }

    /// Whether tenant `id` currently holds an in-memory sampler.
    pub fn is_resident(&self, id: &str) -> bool {
        let entry = { self.map.lock().get(id).cloned() };
        entry.is_some_and(|e| e.reader.load().is_some())
    }

    // ---- internals ------------------------------------------------

    /// The entry for `id`, created (Vacant) on first touch.
    fn entry(&self, id: &str) -> Arc<TenantEntry> {
        let mut map = self.map.lock();
        if let Some(e) = map.get(id) {
            return Arc::clone(e);
        }
        let entry = Arc::new(TenantEntry {
            id: id.to_owned(),
            slot: Mutex::new(Slot::Vacant),
            referenced: AtomicBool::new(false),
            last_words: AtomicUsize::new(0),
            reader: AtomicArc::new(Arc::new(None)),
        });
        map.insert(id.to_owned(), Arc::clone(&entry));
        entry
    }

    /// The admission estimate for an entry: its last known footprint,
    /// or a fresh sampler's footprint for never-resident tenants.
    fn estimate(&self, entry: &TenantEntry) -> usize {
        match entry.last_words.load(Ordering::Relaxed) {
            0 => self.fresh_words,
            w => w,
        }
    }

    /// Adjusts the global gauge from a tenant's footprint moving
    /// `before → after` words.
    fn recharge(&self, before: usize, after: usize) {
        if after >= before {
            self.resident_words.fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.resident_words.fetch_sub(before - after, Ordering::Relaxed);
        }
    }

    /// Post-operation bookkeeping: mark the entry recently used, enter
    /// it into the eviction clock if this touch admitted it, and
    /// rebalance in case the operation's growth overshot the budget.
    fn finish_touch(&self, entry: &Arc<TenantEntry>, admitted: bool, protect: &str) {
        entry.referenced.store(true, Ordering::Relaxed);
        if admitted {
            self.ring.lock().push_back(Arc::clone(entry));
        }
        self.reserve(0, protect);
    }

    /// Makes the slot `Resident`, restoring from the spill directory if
    /// a container exists there, building fresh otherwise. Publishes the
    /// reader pointer before returning. Returns whether this call did
    /// the admission (the caller then enters the entry into the clock —
    /// after releasing the slot lock).
    fn ensure_resident(&self, entry: &TenantEntry, slot: &mut Slot) -> Result<bool, RdsError> {
        if matches!(*slot, Slot::Resident { .. }) {
            return Ok(false);
        }
        let (writer, reader) = match spill::read_container(&self.spill_dir, &entry.id)? {
            Some(text) => {
                let chk = WriterCheckpoint::from_container_json(&text)?;
                let pair = self.template.restore(&entry.id, chk)?;
                self.restores.fetch_add(1, Ordering::Relaxed);
                pair
            }
            None => {
                let pair = self.template.build(&entry.id)?;
                self.creates.fetch_add(1, Ordering::Relaxed);
                pair
            }
        };
        let mut writer = Box::new(writer);
        let words = writer.words();
        entry.reader.store(Arc::new(Some(reader)));
        entry.last_words.store(words, Ordering::Relaxed);
        *slot = Slot::Resident { writer, words };
        self.resident_words.fetch_add(words, Ordering::Relaxed);
        self.resident_count.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Spills a resident slot to disk: container written atomically
    /// FIRST, only then is the in-memory sampler dropped and the reader
    /// pointer cleared — a spill failure leaves the tenant resident and
    /// fully serviceable. Returns whether a container was written.
    fn spill_slot(&self, entry: &TenantEntry, slot: &mut Slot) -> Result<bool, RdsError> {
        let Slot::Resident { writer, words } = slot else {
            return Ok(false);
        };
        let json = writer.checkpoint().to_container_json();
        spill::write_container(&self.spill_dir, &entry.id, &json)?;
        let words = *words;
        entry.reader.store(Arc::new(None));
        *slot = Slot::Spilled;
        self.resident_words.fetch_sub(words, Ordering::Relaxed);
        self.resident_count.fetch_sub(1, Ordering::Relaxed);
        self.spills.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Frees budget until `needed` more words fit, evicting cold
    /// tenants one at a time. `protect` (the tenant being served) is
    /// never evicted by its own admission — which also guarantees the
    /// min-one-resident semantics: if the protected tenant alone
    /// overshoots the budget, reserve gives up rather than thrash.
    fn reserve(&self, needed: usize, protect: &str) {
        while self
            .resident_words
            .load(Ordering::Relaxed)
            .saturating_add(needed)
            > self.budget_words
        {
            if !self.evict_one(protect) {
                break;
            }
        }
    }

    /// One clock sweep step: pop the oldest entry; recently-used entries
    /// get a second chance (bit cleared, requeued), cold ones are
    /// spilled. Returns `false` when nothing could be evicted (empty
    /// clock, everything hot and protected, or a spill I/O failure —
    /// the failure leaves the victim resident and requeued, and stops
    /// the sweep so a broken disk does not become a hot loop).
    fn evict_one(&self, protect: &str) -> bool {
        let mut passes = { self.ring.lock().len() } * 2 + 1;
        while passes > 0 {
            passes -= 1;
            let cand = { self.ring.lock().pop_front() };
            let Some(cand) = cand else { return false };
            if cand.id == protect || cand.referenced.swap(false, Ordering::Relaxed) {
                self.ring.lock().push_back(cand);
                continue;
            }
            let mut slot = cand.slot.lock();
            match self.spill_slot(&cand, &mut slot) {
                Ok(true) => return true,
                // Already spilled or vacant — simply drop it from the
                // clock; it re-enters on its next admission.
                Ok(false) => continue,
                Err(_) => {
                    drop(slot);
                    self.ring.lock().push_back(cand);
                    return false;
                }
            }
        }
        false
    }
}
