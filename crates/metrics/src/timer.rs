//! Per-item processing time measurement (the paper's `pTime` metric).
//!
//! The paper reports *processing time per item, measured in milliseconds*,
//! averaged over repeated single-threaded scans of the whole stream.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Accumulates wall-clock time over a number of processed items and
/// reports the mean per-item cost.
///
/// # Examples
///
/// ```
/// use rds_metrics::ItemTimer;
///
/// let mut t = ItemTimer::new();
/// let run = t.start();
/// // ... process 100 items ...
/// t.stop(run, 100);
/// assert_eq!(t.items(), 100);
/// assert!(t.per_item_ms() >= 0.0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ItemTimer {
    total_nanos: u128,
    items: u64,
}

/// Token returned by [`ItemTimer::start`]; pass it back to
/// [`ItemTimer::stop`].
#[derive(Debug)]
pub struct RunningTimer(Instant);

impl ItemTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing a scan.
    pub fn start(&self) -> RunningTimer {
        RunningTimer(Instant::now())
    }

    /// Stops timing and attributes the elapsed time to `items` items.
    pub fn stop(&mut self, run: RunningTimer, items: u64) {
        self.total_nanos += run.0.elapsed().as_nanos();
        self.items += items;
    }

    /// Total items attributed so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Total measured time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_nanos as f64 / 1e6
    }

    /// Mean per-item processing time in milliseconds (the paper's
    /// `pTime`); zero when no items were recorded.
    pub fn per_item_ms(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_ms() / self.items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_items() {
        let mut t = ItemTimer::new();
        let r = t.start();
        t.stop(r, 10);
        let r = t.start();
        t.stop(r, 5);
        assert_eq!(t.items(), 15);
    }

    #[test]
    fn measures_positive_time_for_work() {
        let mut t = ItemTimer::new();
        let r = t.start();
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        t.stop(r, 1000);
        assert!(t.per_item_ms() > 0.0);
        assert!(t.total_ms() > 0.0);
    }

    #[test]
    fn empty_timer_reports_zero() {
        let t = ItemTimer::new();
        assert_eq!(t.per_item_ms(), 0.0);
        assert_eq!(t.items(), 0);
    }
}
