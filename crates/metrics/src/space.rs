//! Word-level space accounting (the paper's `pSpace` metric).
//!
//! The paper reports *peak space usage throughout the streaming process,
//! measured by words*. Samplers in this workspace expose their current
//! footprint in words; [`SpaceMeter`] tracks the running peak.

use serde::{Deserialize, Serialize};

/// Tracks the peak of a word-valued quantity over time.
///
/// # Examples
///
/// ```
/// use rds_metrics::SpaceMeter;
///
/// let mut m = SpaceMeter::new();
/// m.observe(10);
/// m.observe(25);
/// m.observe(5);
/// assert_eq!(m.peak_words(), 25);
/// assert_eq!(m.current_words(), 5);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SpaceMeter {
    current: usize,
    peak: usize,
}

impl SpaceMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current footprint in words.
    #[inline]
    pub fn observe(&mut self, words: usize) {
        self.current = words;
        if words > self.peak {
            self.peak = words;
        }
    }

    /// The most recently observed footprint.
    pub fn current_words(&self) -> usize {
        self.current
    }

    /// The peak footprint observed so far.
    pub fn peak_words(&self) -> usize {
        self.peak
    }

    /// Resets the meter.
    pub fn reset(&mut self) {
        self.current = 0;
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_monotone() {
        let mut m = SpaceMeter::new();
        for w in [3, 1, 4, 1, 5, 9, 2, 6] {
            m.observe(w);
        }
        assert_eq!(m.peak_words(), 9);
        assert_eq!(m.current_words(), 6);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = SpaceMeter::new();
        m.observe(100);
        m.reset();
        assert_eq!(m.peak_words(), 0);
        assert_eq!(m.current_words(), 0);
    }

    #[test]
    fn default_is_empty() {
        let m = SpaceMeter::default();
        assert_eq!(m.peak_words(), 0);
    }
}
