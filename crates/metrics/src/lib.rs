//! Measurement harness reproducing the paper's evaluation metrics.
//!
//! * [`ItemTimer`] — `pTime`, processing time per item (ms);
//! * [`SpaceMeter`] — `pSpace`, peak space in machine words;
//! * [`SampleHistogram`] — empirical sampling distribution with the
//!   `stdDevNm` / `maxDevNm` statistics of Section 6.1.

#![warn(missing_docs)]

mod deviation;
mod space;
mod timer;

pub use deviation::SampleHistogram;
pub use space::SpaceMeter;
pub use timer::{ItemTimer, RunningTimer};
