//! Accuracy metrics for empirical sampling distributions.
//!
//! Section 6.1 of the paper measures how far the empirical sampling
//! distribution of an ℓ0-sampler is from uniform, using two statistics
//! adopted from Cormode & Firmani:
//!
//! * `stdDevNm` — the standard deviation of the empirical sampling
//!   distribution, normalized by the target probability `f* = 1/F0`;
//! * `maxDevNm` — the maximum relative deviation
//!   `max_i |f_i - f*| / f*`.

use serde::{Deserialize, Serialize};

/// Counts how many times each of `F0` groups was sampled over repeated
/// runs, and computes the paper's deviation statistics.
///
/// # Examples
///
/// ```
/// use rds_metrics::SampleHistogram;
///
/// let mut h = SampleHistogram::new(4);
/// for g in [0, 1, 2, 3, 0, 1, 2, 3] {
///     h.record(g);
/// }
/// assert_eq!(h.runs(), 8);
/// assert_eq!(h.std_dev_nm(), 0.0); // perfectly uniform
/// assert_eq!(h.max_dev_nm(), 0.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleHistogram {
    counts: Vec<u64>,
    runs: u64,
}

impl SampleHistogram {
    /// Creates a histogram over `n_groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `n_groups == 0`.
    pub fn new(n_groups: usize) -> Self {
        assert!(n_groups > 0, "need at least one group");
        Self {
            counts: vec![0; n_groups],
            runs: 0,
        }
    }

    /// Records that `group` was sampled in one run.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn record(&mut self, group: usize) {
        self.counts[group] += 1;
        self.runs += 1;
    }

    /// Merges another histogram over the same groups into this one
    /// (used by the multi-threaded experiment harness).
    ///
    /// # Panics
    ///
    /// Panics if the group counts differ.
    pub fn merge(&mut self, other: &SampleHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram size mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.runs += other.runs;
    }

    /// Number of groups `F0`.
    pub fn n_groups(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Raw per-group sample counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical sampling frequencies `f_i = counts_i / runs`.
    ///
    /// Returns an all-zero vector when no runs were recorded.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.runs == 0 {
            return vec![0.0; self.counts.len()];
        }
        let r = self.runs as f64;
        self.counts.iter().map(|&c| c as f64 / r).collect()
    }

    /// `stdDevNm`: standard deviation of the empirical distribution,
    /// normalized by `f* = 1/F0`.
    ///
    /// Since the frequencies sum to 1, their mean is exactly `f*`, so this
    /// is `sqrt(mean((f_i - f*)^2)) / f*`.
    pub fn std_dev_nm(&self) -> f64 {
        let f_star = 1.0 / self.counts.len() as f64;
        let freqs = self.frequencies();
        let var = freqs
            .iter()
            .map(|f| {
                let d = f - f_star;
                d * d
            })
            .sum::<f64>()
            / freqs.len() as f64;
        var.sqrt() / f_star
    }

    /// `maxDevNm`: `max_i |f_i - f*| / f*`.
    pub fn max_dev_nm(&self) -> f64 {
        let f_star = 1.0 / self.counts.len() as f64;
        self.frequencies()
            .iter()
            .map(|f| (f - f_star).abs() / f_star)
            .fold(0.0, f64::max)
    }

    /// A χ²-style uniformity statistic: `sum_i (c_i - E)^2 / E` with
    /// `E = runs / F0`. Under uniform sampling it concentrates around
    /// `F0 - 1`; tests use it with generous slack.
    pub fn chi_square(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        let expect = self.runs as f64 / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts_have_zero_deviation() {
        let mut h = SampleHistogram::new(5);
        for g in 0..5 {
            for _ in 0..10 {
                h.record(g);
            }
        }
        assert_eq!(h.std_dev_nm(), 0.0);
        assert_eq!(h.max_dev_nm(), 0.0);
        assert_eq!(h.chi_square(), 0.0);
    }

    #[test]
    fn all_mass_on_one_group() {
        let mut h = SampleHistogram::new(4);
        for _ in 0..100 {
            h.record(2);
        }
        // f = (0, 0, 1, 0), f* = 1/4: max dev = (1 - 1/4) / (1/4) = 3
        assert!((h.max_dev_nm() - 3.0).abs() < 1e-12);
        // variance = (3*(1/16) + (3/4)^2)/4 = (3/16 + 9/16)/4 = 3/16
        let expect_std = (3.0f64 / 16.0).sqrt() / 0.25;
        assert!((h.std_dev_nm() - expect_std).abs() < 1e-12);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = SampleHistogram::new(7);
        for i in 0..1000 {
            h.record(i % 7);
        }
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = SampleHistogram::new(3);
        assert_eq!(h.frequencies(), vec![0.0; 3]);
        assert_eq!(h.runs(), 0);
        // with zero runs every group deviates fully: |0 - f*|/f* = 1
        assert!((h.max_dev_nm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SampleHistogram::new(2);
        a.record(0);
        let mut b = SampleHistogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
        assert_eq!(a.runs(), 3);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_rejects_different_sizes() {
        let mut a = SampleHistogram::new(2);
        let b = SampleHistogram::new(3);
        a.merge(&b);
    }

    #[test]
    fn chi_square_detects_skew() {
        let mut skewed = SampleHistogram::new(10);
        let mut uniform = SampleHistogram::new(10);
        for i in 0..1000 {
            uniform.record(i % 10);
            skewed.record(if i % 2 == 0 { 0 } else { i % 10 });
        }
        assert!(skewed.chi_square() > 10.0 * uniform.chi_square() + 1.0);
    }
}
