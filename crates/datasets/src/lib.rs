//! Evaluation datasets for robust distinct sampling.
//!
//! Reproduces the data pipeline of Section 6.1 of the paper: base point
//! clouds ([`rand_cloud`], [`yacht_like`], [`seeds_like`]) rescaled to
//! minimum pairwise distance 1, near-duplicate injection with uniform
//! ([`uniform_dups`]) or power-law ([`powerlaw_dups`]) group sizes, and
//! ground-truth partition utilities ([`partition`]).

#![warn(missing_docs)]

mod generators;
mod noise;
pub mod partition;

pub use generators::{min_pairwise_distance, rand_cloud, rescale_min_dist, seeds_like, yacht_like};
pub use noise::{
    alpha_for, dup_radius, near_duplicate, powerlaw_dups, uniform_dups, Dataset, LabeledPoint,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The number of near-duplicates per point in the paper's first
/// transformation (`k_i ~ Uniform{1..=100}`).
pub const PAPER_MAX_DUPS: usize = 100;

/// Which of the paper's eight evaluation datasets to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperDataset {
    /// 500 uniform points in `R^5`, uniform duplicate counts.
    Rand5,
    /// 500 uniform points in `R^20`, uniform duplicate counts.
    Rand20,
    /// 308-point yacht-hydrodynamics stand-in in `R^7`, uniform counts.
    Yacht,
    /// 210-point seeds stand-in in `R^8`, uniform counts.
    Seeds,
    /// Rand5 base with power-law duplicate counts.
    Rand5Pl,
    /// Rand20 base with power-law duplicate counts.
    Rand20Pl,
    /// Yacht base with power-law duplicate counts.
    YachtPl,
    /// Seeds base with power-law duplicate counts.
    SeedsPl,
}

impl PaperDataset {
    /// All eight datasets in the paper's presentation order.
    pub const ALL: [PaperDataset; 8] = [
        PaperDataset::Rand5,
        PaperDataset::Rand20,
        PaperDataset::Yacht,
        PaperDataset::Seeds,
        PaperDataset::Rand5Pl,
        PaperDataset::Rand20Pl,
        PaperDataset::YachtPl,
        PaperDataset::SeedsPl,
    ];

    /// The dataset's display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Rand5 => "Rand5",
            PaperDataset::Rand20 => "Rand20",
            PaperDataset::Yacht => "Yacht",
            PaperDataset::Seeds => "Seeds",
            PaperDataset::Rand5Pl => "Rand5-pl",
            PaperDataset::Rand20Pl => "Rand20-pl",
            PaperDataset::YachtPl => "Yacht-pl",
            PaperDataset::SeedsPl => "Seeds-pl",
        }
    }

    /// Number of runs the paper used for this dataset's sampling-
    /// distribution figure (200k for the random clouds, 500k for the
    /// UCI-derived sets).
    pub fn paper_runs(&self) -> u64 {
        match self {
            PaperDataset::Rand5 | PaperDataset::Rand20 => 200_000,
            PaperDataset::Rand5Pl | PaperDataset::Rand20Pl => 200_000,
            _ => 500_000,
        }
    }

    /// Generates the dataset (base + near-duplicates + shuffle) from a
    /// seed. Identical seeds give identical datasets.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C_7A11_5EED_0000);
        let base = match self {
            PaperDataset::Rand5 | PaperDataset::Rand5Pl => rand_cloud(500, 5, &mut rng),
            PaperDataset::Rand20 | PaperDataset::Rand20Pl => rand_cloud(500, 20, &mut rng),
            PaperDataset::Yacht | PaperDataset::YachtPl => yacht_like(&mut rng),
            PaperDataset::Seeds | PaperDataset::SeedsPl => seeds_like(&mut rng),
        };
        let mut ds = match self {
            PaperDataset::Rand5
            | PaperDataset::Rand20
            | PaperDataset::Yacht
            | PaperDataset::Seeds => uniform_dups(self.name(), &base, PAPER_MAX_DUPS, &mut rng),
            _ => powerlaw_dups(self.name(), &base, &mut rng),
        };
        ds.shuffle(&mut rng);
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_datasets_generate() {
        for which in PaperDataset::ALL {
            let ds = which.generate(1);
            assert!(!ds.is_empty(), "{} is empty", which.name());
            assert!(ds.n_groups > 0);
            assert_eq!(ds.name, which.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Seeds.generate(42);
        let b = PaperDataset::Seeds.generate(42);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.points[0].point, b.points[0].point);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PaperDataset::Rand5.generate(1);
        let b = PaperDataset::Rand5.generate(2);
        assert_ne!(a.points[0].point, b.points[0].point);
    }

    #[test]
    fn group_counts_match_bases() {
        assert_eq!(PaperDataset::Rand5.generate(3).n_groups, 500);
        assert_eq!(PaperDataset::Yacht.generate(3).n_groups, 308);
        assert_eq!(PaperDataset::Seeds.generate(3).n_groups, 210);
    }

    #[test]
    fn dims_match_paper() {
        assert_eq!(PaperDataset::Rand5.generate(4).dim, 5);
        assert_eq!(PaperDataset::Rand20.generate(4).dim, 20);
        assert_eq!(PaperDataset::Yacht.generate(4).dim, 7);
        assert_eq!(PaperDataset::SeedsPl.generate(4).dim, 8);
    }

    #[test]
    fn paper_runs_match_figures() {
        assert_eq!(PaperDataset::Rand5.paper_runs(), 200_000);
        assert_eq!(PaperDataset::Yacht.paper_runs(), 500_000);
    }
}
