//! Ground-truth group partitions.
//!
//! * [`connected_partition`] — transitive closure of the "within `alpha`"
//!   relation; for a well-separated dataset (Definition 1.2) this is the
//!   *natural partition* of Definition 1.3.
//! * [`greedy_partition`] — the greedy ball-peeling process of
//!   Definition 3.2, used by the Section 3 analysis of general datasets.
//! * [`min_partition_size_brute`] — exact minimum-cardinality partition
//!   size (Definition 1.4) by exhaustive search, for small instances in
//!   tests (Lemma 3.3 checks).
//! * [`is_sparse`] — the `(alpha, beta)`-sparsity test of Definition 1.1.

use rds_geometry::Point;

/// Union-find over point indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partitions `points` into the connected components of the graph that
/// joins every pair at distance `<= alpha`. Returns a group id per point
/// (ids are consecutive from 0).
///
/// For a *well-separated* dataset this equals the natural partition; for
/// general datasets it may merge chains of overlapping balls.
pub fn connected_partition(points: &[Point], alpha: f64) -> Vec<usize> {
    let n = points.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if points[i].within(&points[j], alpha) {
                uf.union(i, j);
            }
        }
    }
    normalize((0..n).map(|i| uf.find(i)).collect())
}

/// The greedy partition of Definition 3.2, processing points in the given
/// order: repeatedly take the first unassigned point `p` and form the
/// group `Ball(p, alpha) ∩ S` from the unassigned points.
///
/// Returns a group id per point (ids ordered by group creation).
pub fn greedy_partition(points: &[Point], alpha: f64) -> Vec<usize> {
    let n = points.len();
    let mut group = vec![usize::MAX; n];
    let mut next = 0usize;
    for i in 0..n {
        if group[i] != usize::MAX {
            continue;
        }
        group[i] = next;
        for j in (i + 1)..n {
            if group[j] == usize::MAX && points[i].within(&points[j], alpha) {
                group[j] = next;
            }
        }
        next += 1;
    }
    group
}

/// Number of groups in a partition given as per-point group ids.
pub fn partition_size(labels: &[usize]) -> usize {
    let mut seen: Vec<usize> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Exact size of the minimum-cardinality partition into groups of diameter
/// `<= alpha` (Definition 1.4), by branch-and-bound over assignments.
///
/// Exponential in `n`; intended for `n <= 12` in tests.
pub fn min_partition_size_brute(points: &[Point], alpha: f64) -> usize {
    let n = points.len();
    if n == 0 {
        return 0;
    }
    // compatibility matrix
    let mut compat = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            compat[i][j] = points[i].within(&points[j], alpha);
        }
    }
    // groups[g] = members of group g; assign points in order
    let mut best = n;
    let mut groups: Vec<Vec<usize>> = Vec::new();
    fn rec(
        i: usize,
        n: usize,
        compat: &[Vec<bool>],
        groups: &mut Vec<Vec<usize>>,
        best: &mut usize,
    ) {
        if groups.len() >= *best {
            return; // cannot improve
        }
        if i == n {
            *best = groups.len();
            return;
        }
        for g in 0..groups.len() {
            if groups[g].iter().all(|&m| compat[m][i]) {
                groups[g].push(i);
                rec(i + 1, n, compat, groups, best);
                groups[g].pop();
            }
        }
        groups.push(vec![i]);
        rec(i + 1, n, compat, groups, best);
        groups.pop();
    }
    rec(0, n, &compat, &mut groups, &mut best);
    best
}

/// Whether the dataset is `(alpha, beta)`-sparse (Definition 1.1): every
/// pairwise distance is either `<= alpha` or `> beta`.
pub fn is_sparse(points: &[Point], alpha: f64, beta: f64) -> bool {
    assert!(beta >= alpha, "beta must be at least alpha");
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].distance(&points[j]);
            if d > alpha && d <= beta {
                return false;
            }
        }
    }
    true
}

/// Whether the dataset is *well-separated* (Definition 1.2): the
/// separation ratio exceeds 2, i.e. the set is `(alpha, 2 alpha)`-sparse
/// (with strict inequality beyond `2 alpha`).
pub fn is_well_separated(points: &[Point], alpha: f64) -> bool {
    is_sparse(points, alpha, 2.0 * alpha)
}

/// Renumbers arbitrary group ids to consecutive ids starting at 0,
/// in order of first appearance.
fn normalize(labels: Vec<usize>) -> Vec<usize> {
    let mut map: Vec<(usize, usize)> = Vec::new();
    let mut out = Vec::with_capacity(labels.len());
    for l in labels {
        let id = match map.iter().find(|(k, _)| *k == l) {
            Some(&(_, v)) => v,
            None => {
                let v = map.len();
                map.push((l, v));
                v
            }
        };
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(xs: &[f64]) -> Vec<Point> {
        xs.iter().map(|&x| Point::new(vec![x])).collect()
    }

    #[test]
    fn connected_partition_separates_far_points() {
        let p = pts(&[0.0, 0.5, 10.0, 10.4]);
        let labels = connected_partition(&p, 1.0);
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn connected_partition_merges_chains() {
        // 0 - 0.9 - 1.8: a chain where endpoints are 1.8 > alpha apart but
        // transitively connected
        let p = pts(&[0.0, 0.9, 1.8]);
        let labels = connected_partition(&p, 1.0);
        assert_eq!(partition_size(&labels), 1);
    }

    #[test]
    fn greedy_partition_respects_order() {
        // greedy from the left: {0, 0.9}, {1.8}
        let p = pts(&[0.0, 0.9, 1.8]);
        let labels = greedy_partition(&p, 1.0);
        assert_eq!(labels, vec![0, 0, 1]);
        // greedy from the middle point first: {0.9, 0, 1.8} -> 1 group
        let p2 = pts(&[0.9, 0.0, 1.8]);
        let labels2 = greedy_partition(&p2, 1.0);
        assert_eq!(partition_size(&labels2), 1);
    }

    #[test]
    fn greedy_group_count_within_factor_of_optimal() {
        // Lemma 3.3: n_gdy <= n_opt (in fact) and n_opt = O(n_gdy).
        let p = pts(&[0.0, 0.4, 0.8, 1.2, 1.6, 5.0, 5.3, 9.9]);
        let alpha = 0.5;
        let gdy = partition_size(&greedy_partition(&p, alpha));
        let opt = min_partition_size_brute(&p, alpha);
        assert!(gdy <= opt, "greedy {gdy} > opt {opt}");
        assert!(opt <= 3 * gdy, "opt {opt} not O(greedy {gdy})");
    }

    #[test]
    fn min_partition_brute_hand_cases() {
        // three collinear points within 1.0 pairwise need 1 group
        assert_eq!(min_partition_size_brute(&pts(&[0.0, 0.5, 1.0]), 1.0), 1);
        // chain 0, 0.9, 1.8: diameter constraint forces 2 groups
        assert_eq!(min_partition_size_brute(&pts(&[0.0, 0.9, 1.8]), 1.0), 2);
        assert_eq!(min_partition_size_brute(&[], 1.0), 0);
    }

    #[test]
    fn sparsity_checks() {
        let p = pts(&[0.0, 0.3, 5.0, 5.2]);
        assert!(is_sparse(&p, 0.4, 2.0));
        assert!(!is_sparse(&p, 0.1, 2.0)); // 0.3 falls in (0.1, 2.0]
        assert!(is_well_separated(&p, 0.4));
    }

    #[test]
    fn well_separated_detects_violation() {
        // distance 0.7 lies in (0.4, 0.8]: separation ratio < 2
        let p = pts(&[0.0, 0.7]);
        assert!(!is_well_separated(&p, 0.4));
    }

    #[test]
    fn normalize_orders_by_first_appearance() {
        assert_eq!(normalize(vec![7, 7, 3, 7, 9, 3]), vec![0, 0, 1, 0, 2, 1]);
    }

    #[test]
    fn partition_functions_agree_on_well_separated_data() {
        // two tight clusters
        let p = pts(&[0.0, 0.1, 0.2, 4.0, 4.1]);
        let alpha = 0.5;
        assert!(is_well_separated(&p, alpha));
        let c = partition_size(&connected_partition(&p, alpha));
        let g = partition_size(&greedy_partition(&p, alpha));
        let m = min_partition_size_brute(&p, alpha);
        assert_eq!(c, 2);
        assert_eq!(g, 2);
        assert_eq!(m, 2);
    }
}
