//! Near-duplicate injection (the two transformations of Section 6.1).
//!
//! Starting from a base point set with minimum pairwise distance 1, the
//! paper creates each near-duplicate of `x_i` by sampling a direction
//! uniformly from the unit cube, rescaling it to a length drawn from
//! `(0, 1/(2 d^1.5))`, and adding it to `x_i`. Each base point plus its
//! near-duplicates forms one ground-truth group.
//!
//! * Transformation 1 (`uniform_dups`): `k_i ~ Uniform{1..=100}` duplicates
//!   per point — the datasets Rand5 / Rand20 / Yacht / Seeds.
//! * Transformation 2 (`powerlaw_dups`): point `i` (in a random order)
//!   receives `ceil(n / i)` duplicates — the `-pl` datasets.

use crate::generators::min_pairwise_distance;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use rds_geometry::Point;
use rds_stream::{enumerate_stream, StreamItem};

/// A stream point labelled with its ground-truth group (the index of the
/// base point it was generated from).
#[derive(Clone, Debug)]
pub struct LabeledPoint {
    /// The data point.
    pub point: Point,
    /// Ground-truth group id in `0..n_groups`.
    pub group: usize,
}

/// A generated evaluation dataset: labelled points plus the metadata the
/// experiments need.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Display name (e.g. `"Rand5"`, `"Seeds-pl"`).
    pub name: String,
    /// All points (base + near-duplicates), in generation order until
    /// [`Dataset::shuffle`] is called.
    pub points: Vec<LabeledPoint>,
    /// Number of ground-truth groups (`F0` of the dataset).
    pub n_groups: usize,
    /// Ambient dimension.
    pub dim: usize,
    /// The distance threshold `alpha` under which the dataset is
    /// well-separated: intra-group diameter `<= alpha`, inter-group
    /// distance `>> 2 alpha`.
    pub alpha: f64,
}

impl Dataset {
    /// Number of points (the stream length `m`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Randomly shuffles the points (the paper shuffles every dataset
    /// before streaming it).
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.points.shuffle(rng);
    }

    /// The dataset as a stamped stream (sequence number == timestamp ==
    /// position).
    pub fn stream(&self) -> Vec<StreamItem> {
        enumerate_stream(self.points.iter().map(|lp| lp.point.clone()))
    }

    /// Ground-truth group of each stream position.
    pub fn labels(&self) -> Vec<usize> {
        self.points.iter().map(|lp| lp.group).collect()
    }
}

/// The maximum near-duplicate displacement radius used by the paper:
/// `1 / (2 d^{1.5})`.
pub fn dup_radius(dim: usize) -> f64 {
    0.5 / (dim as f64).powf(1.5)
}

/// The group-diameter threshold `alpha` implied by [`dup_radius`]: two
/// duplicates of the same base point are at distance at most
/// `2 * dup_radius = 1 / d^{1.5}`.
pub fn alpha_for(dim: usize) -> f64 {
    2.0 * dup_radius(dim)
}

/// Generates one near-duplicate of `x`: a uniform direction from the unit
/// cube scaled to a length drawn uniformly from `(0, dup_radius(d))`.
pub fn near_duplicate<R: Rng + ?Sized>(x: &Point, rng: &mut R) -> Point {
    let d = x.dim();
    let z = Point::new((0..d).map(|_| rng.random_range(0.0..1.0)).collect());
    let norm = z.norm().max(f64::MIN_POSITIVE);
    let len = rng.random_range(0.0..dup_radius(d));
    let zhat = z.scale(len / norm);
    x.add(&zhat)
}

fn build<R: Rng + ?Sized>(name: &str, base: &[Point], dup_counts: &[usize], rng: &mut R) -> Dataset {
    assert_eq!(base.len(), dup_counts.len());
    assert!(!base.is_empty(), "base dataset must be non-empty");
    debug_assert!(
        (min_pairwise_distance(base) - 1.0).abs() < 1e-6,
        "base must be rescaled to min distance 1"
    );
    let dim = base[0].dim();
    let mut points = Vec::with_capacity(base.len() + dup_counts.iter().sum::<usize>());
    for (g, (x, &k)) in base.iter().zip(dup_counts.iter()).enumerate() {
        points.push(LabeledPoint {
            point: x.clone(),
            group: g,
        });
        for _ in 0..k {
            points.push(LabeledPoint {
                point: near_duplicate(x, rng),
                group: g,
            });
        }
    }
    Dataset {
        name: name.to_string(),
        points,
        n_groups: base.len(),
        dim,
        alpha: alpha_for(dim),
    }
}

/// Transformation 1 of Section 6.1: each base point receives
/// `k_i ~ Uniform{1..=max_k}` near-duplicates (the paper uses
/// `max_k = 100`).
pub fn uniform_dups<R: Rng + ?Sized>(
    name: &str,
    base: &[Point],
    max_k: usize,
    rng: &mut R,
) -> Dataset {
    assert!(max_k >= 1, "max_k must be at least 1");
    let counts: Vec<usize> = (0..base.len())
        .map(|_| rng.random_range(1..=max_k))
        .collect();
    build(name, base, &counts, rng)
}

/// Transformation 2 of Section 6.1: after randomly ordering the base
/// points, point `i` (1-based) receives `ceil(n / i)` near-duplicates —
/// a power-law group-size distribution.
pub fn powerlaw_dups<R: Rng + ?Sized>(name: &str, base: &[Point], rng: &mut R) -> Dataset {
    let n = base.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut counts = vec![0usize; n];
    for (rank, &idx) in order.iter().enumerate() {
        // rank is 0-based; the paper's i is 1-based
        counts[idx] = (n as f64 / (rank + 1) as f64).ceil() as usize;
    }
    build(name, base, &counts, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rand_cloud;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        rand_cloud(n, dim, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn dup_radius_matches_formula() {
        assert!((dup_radius(4) - 0.5 / 8.0).abs() < 1e-12);
        assert!((alpha_for(4) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn near_duplicates_stay_within_radius() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Point::new(vec![3.0, -1.0, 2.0, 0.0, 1.0]);
        for _ in 0..200 {
            let y = near_duplicate(&x, &mut rng);
            assert!(x.distance(&y) < dup_radius(5) + 1e-12);
        }
    }

    #[test]
    fn uniform_dups_group_sizes_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = base(40, 5, 1);
        let ds = uniform_dups("t", &b, 10, &mut rng);
        assert_eq!(ds.n_groups, 40);
        let mut sizes = vec![0usize; 40];
        for lp in &ds.points {
            sizes[lp.group] += 1;
        }
        // base point + 1..=10 duplicates
        assert!(sizes.iter().all(|&s| (2..=11).contains(&s)));
        assert_eq!(ds.len(), sizes.iter().sum::<usize>());
    }

    #[test]
    fn powerlaw_counts_follow_ceil_n_over_i() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30;
        let b = base(n, 5, 2);
        let ds = powerlaw_dups("t", &b, &mut rng);
        let mut sizes = vec![0usize; n];
        for lp in &ds.points {
            sizes[lp.group] += 1;
        }
        let mut dup_counts: Vec<usize> = sizes.iter().map(|s| s - 1).collect();
        dup_counts.sort_unstable_by(|a, b| b.cmp(a));
        let mut expect: Vec<usize> = (1..=n).map(|i| (n as f64 / i as f64).ceil() as usize).collect();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(dup_counts, expect);
    }

    #[test]
    fn groups_are_well_separated_at_alpha() {
        let mut rng = StdRng::seed_from_u64(8);
        let b = base(30, 5, 3);
        let ds = uniform_dups("t", &b, 5, &mut rng);
        // intra-group diameter <= alpha; inter-group distance > 2 alpha
        for i in 0..ds.points.len() {
            for j in (i + 1)..ds.points.len() {
                let d = ds.points[i].point.distance(&ds.points[j].point);
                if ds.points[i].group == ds.points[j].group {
                    assert!(d <= ds.alpha + 1e-9, "intra {d} > alpha {}", ds.alpha);
                } else {
                    assert!(d > 2.0 * ds.alpha, "inter {d} <= 2 alpha {}", ds.alpha);
                }
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = base(10, 3, 4);
        let mut ds = uniform_dups("t", &b, 3, &mut rng);
        let before = ds.len();
        let mut group_hist = vec![0usize; ds.n_groups];
        for lp in &ds.points {
            group_hist[lp.group] += 1;
        }
        ds.shuffle(&mut rng);
        assert_eq!(ds.len(), before);
        let mut after = vec![0usize; ds.n_groups];
        for lp in &ds.points {
            after[lp.group] += 1;
        }
        assert_eq!(group_hist, after);
    }

    #[test]
    fn stream_and_labels_align() {
        let mut rng = StdRng::seed_from_u64(10);
        let b = base(5, 3, 5);
        let ds = uniform_dups("t", &b, 2, &mut rng);
        let stream = ds.stream();
        let labels = ds.labels();
        assert_eq!(stream.len(), labels.len());
        for (i, item) in stream.iter().enumerate() {
            assert_eq!(item.stamp.seq, i as u64);
            assert_eq!(item.point, ds.points[i].point);
        }
    }
}
