//! Base point-cloud generators for the paper's evaluation datasets.
//!
//! Section 6.1 uses four base datasets before near-duplicate injection:
//!
//! * **Rand5** — 500 uniform random points in `(0,1)^5`;
//! * **Rand20** — 500 uniform random points in `(0,1)^20`;
//! * **Yacht** — 308 points in `R^7` (UCI yacht hydrodynamics);
//! * **Seeds** — 210 points in `R^8` (UCI seeds, 3 wheat varieties).
//!
//! The two UCI files are not redistributable inside this offline
//! repository, so [`yacht_like`] and [`seeds_like`] generate synthetic
//! stand-ins with the same cardinality, dimension and cluster structure
//! (see DESIGN.md, "Substitutions"). All generators end with the paper's
//! preprocessing step: rescale so the minimum pairwise distance is 1.

use rand::{Rng, RngExt};
use rds_geometry::Point;

/// Uniform random cloud in `(0,1)^dim`, rescaled to minimum pairwise
/// distance 1 (the paper's Rand5/Rand20 bases with `n = 500`).
pub fn rand_cloud<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Point> {
    let raw: Vec<Point> = (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.random_range(0.0..1.0)).collect()))
        .collect();
    rescale_min_dist(raw)
}

/// Synthetic stand-in for the UCI *Yacht Hydrodynamics* dataset: 308
/// points in `R^7`.
///
/// The real dataset is a designed experiment — 22 hull geometries, each
/// evaluated at 14 Froude numbers, with 6 geometry parameters plus the
/// speed parameter. We mirror that: 22 parameter combinations on a small
/// lattice in the first 6 coordinates, crossed with 14 levels in the 7th,
/// plus small deterministic-seeded jitter so no two points coincide.
pub fn yacht_like<R: Rng + ?Sized>(rng: &mut R) -> Vec<Point> {
    let mut pts = Vec::with_capacity(308);
    // 22 hull configurations on a lattice.
    let hulls: Vec<[f64; 6]> = (0..22)
        .map(|h| {
            let mut cfg = [0.0; 6];
            let mut x = h;
            for c in cfg.iter_mut() {
                *c = (x % 3) as f64;
                x /= 3;
            }
            cfg
        })
        .collect();
    for hull in &hulls {
        for froude in 0..14 {
            let mut coords = Vec::with_capacity(7);
            for &c in hull {
                // jitter breaks exact ties between lattice points
                coords.push(c + rng.random_range(-0.01..0.01));
            }
            coords.push(froude as f64 * 0.5 + rng.random_range(-0.01..0.01));
            pts.push(Point::new(coords));
        }
    }
    debug_assert_eq!(pts.len(), 308);
    rescale_min_dist(pts)
}

/// Synthetic stand-in for the UCI *Seeds* dataset: 210 points in `R^8`,
/// three clusters of 70 (the three wheat varieties).
pub fn seeds_like<R: Rng + ?Sized>(rng: &mut R) -> Vec<Point> {
    let dim = 8;
    let centers: Vec<Point> = (0..3)
        .map(|c| Point::new((0..dim).map(|i| ((c * dim + i) % 5) as f64 * 2.0).collect()))
        .collect();
    let mut pts = Vec::with_capacity(210);
    for center in &centers {
        for _ in 0..70 {
            let coords = center
                .coords()
                .iter()
                .map(|&x| x + rds_geometry::standard_normal(rng) * 0.8)
                .collect();
            pts.push(Point::new(coords));
        }
    }
    rescale_min_dist(pts)
}

/// Minimum pairwise distance of a point set (`O(n^2)`; the evaluation
/// bases have at most 500 points).
///
/// Returns `f64::INFINITY` for sets with fewer than two points.
pub fn min_pairwise_distance(points: &[Point]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].distance_sq(&points[j]);
            if d < best {
                best = d;
            }
        }
    }
    best.sqrt()
}

/// Rescales a point set so that its minimum pairwise distance is exactly 1
/// (the paper's preprocessing before near-duplicate generation).
///
/// # Panics
///
/// Panics if two points coincide (zero minimum distance) — the rescaling
/// would be undefined.
pub fn rescale_min_dist(points: Vec<Point>) -> Vec<Point> {
    if points.len() < 2 {
        return points;
    }
    let min = min_pairwise_distance(&points);
    assert!(
        min > 0.0 && min.is_finite(),
        "cannot rescale a dataset with duplicate points"
    );
    let s = 1.0 / min;
    points.into_iter().map(|p| p.scale(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rand_cloud_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = rand_cloud(100, 5, &mut rng);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| p.dim() == 5));
    }

    #[test]
    fn rand_cloud_min_distance_is_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = rand_cloud(50, 4, &mut rng);
        assert!((min_pairwise_distance(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn yacht_like_shape_matches_uci() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = yacht_like(&mut rng);
        assert_eq!(pts.len(), 308);
        assert!(pts.iter().all(|p| p.dim() == 7));
        assert!((min_pairwise_distance(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seeds_like_shape_matches_uci() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = seeds_like(&mut rng);
        assert_eq!(pts.len(), 210);
        assert!(pts.iter().all(|p| p.dim() == 8));
        assert!((min_pairwise_distance(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_pairwise_distance_hand_case() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![3.0, 4.0]),
            Point::new(vec![0.0, 2.0]),
        ];
        assert!((min_pairwise_distance(&pts) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_pairwise_distance_of_singleton_is_infinite() {
        assert!(min_pairwise_distance(&[Point::origin(3)]).is_infinite());
    }

    #[test]
    fn rescale_preserves_shape_ratios() {
        let pts = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.5]),
            Point::new(vec![2.0]),
        ];
        let scaled = rescale_min_dist(pts);
        // min distance 0.5 -> scale by 2
        assert_eq!(scaled[1], Point::new(vec![1.0]));
        assert_eq!(scaled[2], Point::new(vec![4.0]));
    }

    #[test]
    #[should_panic(expected = "duplicate points")]
    fn rescale_rejects_duplicates() {
        let _ = rescale_min_dist(vec![Point::origin(2), Point::origin(2)]);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = rand_cloud(20, 3, &mut StdRng::seed_from_u64(7));
        let b = rand_cloud(20, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
