//! Exponential histograms (Datar, Gionis, Indyk & Motwani, SICOMP 2002):
//! basic counting over sliding windows.
//!
//! Remark 1 of the paper contrasts its hierarchical sliding-window
//! structure with exponential histograms — "by a careful look one will
//! notice that our algorithm is very different"; this implementation
//! makes the comparison concrete (and is a useful noiseless baseline in
//! its own right: it counts 1-bits in the window up to `1 ± eps`).

use std::collections::VecDeque;

/// An exponential histogram estimating the number of 1s among the last
/// `w` bits of a 0/1 stream, with relative error `eps`.
///
/// Buckets hold exponentially growing counts (1, 1, 2, 2, ..., capped at
/// `k/2 + 1` buckets per size with `k = ceil(1/eps)`); the estimate
/// charges half of the oldest bucket.
///
/// # Examples
///
/// ```
/// use rds_baselines::ExponentialHistogram;
///
/// let mut eh = ExponentialHistogram::new(100, 0.1);
/// for t in 0..1000u64 {
///     eh.insert(t, true);
/// }
/// let est = eh.estimate();
/// assert!((est as f64 - 100.0).abs() <= 10.0 + 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct ExponentialHistogram {
    w: u64,
    /// max buckets per size class before merging: `ceil(1/eps)/2 + 2`.
    cap: usize,
    /// `(timestamp_of_newest_1, size)` from newest to oldest.
    buckets: VecDeque<(u64, u64)>,
    last_time: Option<u64>,
}

impl ExponentialHistogram {
    /// Creates a histogram over windows of the last `w` positions with
    /// target relative error `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `eps` is not in `(0, 1]`.
    pub fn new(w: u64, eps: f64) -> Self {
        assert!(w >= 1, "window must be positive");
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
        let k = (1.0 / eps).ceil() as usize;
        Self {
            w,
            cap: k / 2 + 2,
            buckets: VecDeque::new(),
            last_time: None,
        }
    }

    /// Feeds the bit at time `t` (times must be non-decreasing; only
    /// 1-bits change the structure).
    ///
    /// # Panics
    ///
    /// Panics if `t` decreases.
    pub fn insert(&mut self, t: u64, bit: bool) {
        if let Some(last) = self.last_time {
            assert!(t >= last, "times must be non-decreasing");
        }
        self.last_time = Some(t);
        self.expire(t);
        if !bit {
            return;
        }
        self.buckets.push_front((t, 1));
        // merge oldest pairs of each size class while a class overflows
        let mut size = 1u64;
        loop {
            let count = self.buckets.iter().filter(|&&(_, s)| s == size).count();
            if count <= self.cap {
                break;
            }
            // merge the two OLDEST buckets of this size
            let mut idxs: Vec<usize> = self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &(_, s))| s == size)
                .map(|(i, _)| i)
                .collect();
            let oldest = idxs.pop().expect("count > cap >= 2");
            let second = idxs.pop().expect("count > cap >= 2");
            // keep the newer timestamp of the merged pair (`second` is
            // newer than `oldest` since the deque is newest-first)
            let merged_time = self.buckets[second].0;
            self.buckets[second] = (merged_time, size * 2);
            self.buckets.remove(oldest);
            size *= 2;
        }
    }

    fn expire(&mut self, now: u64) {
        while let Some(&(t, _)) = self.buckets.back() {
            if t + self.w <= now {
                self.buckets.pop_back();
            } else {
                break;
            }
        }
    }

    /// The estimate of the number of 1s in the window: full sizes of all
    /// but the oldest bucket, plus half the oldest.
    pub fn estimate(&self) -> u64 {
        match self.buckets.back() {
            None => 0,
            Some(&(_, oldest)) => {
                let total: u64 = self.buckets.iter().map(|&(_, s)| s).sum();
                total - oldest + oldest.div_ceil(2)
            }
        }
    }

    /// Number of buckets currently held (`O(log^2 w / eps)` bits of
    /// state).
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The window length.
    pub fn window(&self) -> u64 {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_estimates_zero() {
        let eh = ExponentialHistogram::new(10, 0.5);
        assert_eq!(eh.estimate(), 0);
    }

    #[test]
    fn counts_exactly_while_few_ones() {
        let mut eh = ExponentialHistogram::new(100, 0.1);
        for t in 0..5u64 {
            eh.insert(t * 3, true);
        }
        assert_eq!(eh.estimate(), 5);
    }

    #[test]
    fn zeros_do_not_change_the_count() {
        let mut eh = ExponentialHistogram::new(50, 0.2);
        eh.insert(0, true);
        for t in 1..30u64 {
            eh.insert(t, false);
        }
        assert_eq!(eh.estimate(), 1);
    }

    #[test]
    fn old_ones_expire() {
        let mut eh = ExponentialHistogram::new(10, 0.2);
        for t in 0..5u64 {
            eh.insert(t, true);
        }
        // jump past the window
        eh.insert(100, false);
        assert_eq!(eh.estimate(), 0);
    }

    #[test]
    fn estimate_is_within_eps_on_dense_streams() {
        for &eps in &[0.5f64, 0.2, 0.1] {
            let w = 256u64;
            let mut eh = ExponentialHistogram::new(w, eps);
            for t in 0..4096u64 {
                eh.insert(t, true);
            }
            let est = eh.estimate() as f64;
            let truth = w as f64;
            assert!(
                (est - truth).abs() <= eps * truth + 1.0,
                "eps={eps}: estimate {est} vs {truth}"
            );
        }
    }

    #[test]
    fn estimate_tracks_sparse_patterns() {
        let w = 128u64;
        let mut eh = ExponentialHistogram::new(w, 0.1);
        // every 4th position is a 1
        for t in 0..2048u64 {
            eh.insert(t, t % 4 == 0);
        }
        let truth = (w / 4) as f64;
        let est = eh.estimate() as f64;
        assert!(
            (est - truth).abs() <= 0.1 * truth + 1.0,
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn bucket_count_stays_logarithmic() {
        let mut eh = ExponentialHistogram::new(1 << 16, 0.1);
        for t in 0..(1u64 << 17) {
            eh.insert(t, true);
        }
        assert!(
            eh.n_buckets() < 200,
            "buckets {} not polylog",
            eh.n_buckets()
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_time_rejected() {
        let mut eh = ExponentialHistogram::new(8, 0.5);
        eh.insert(5, true);
        eh.insert(4, true);
    }
}
