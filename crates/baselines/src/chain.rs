//! Chain sampling (Babcock, Datar & Motwani, SODA 2002): uniform random
//! sampling from a sequence-based sliding window.
//!
//! Section 2.3 of the paper cites this as the sliding-window replacement
//! for reservoir sampling when a random *member* of the sampled group is
//! wanted. It is also the noiseless sliding-window sampling baseline.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Uniform single-item sampler over the last `w` stream items.
///
/// Maintains the classic "chain": the current sample plus the
/// pre-selected replacement for each chain element's expiry, giving
/// expected `O(1)` state.
///
/// # Examples
///
/// ```
/// use rds_baselines::ChainSampler;
///
/// let mut s: ChainSampler<u64> = ChainSampler::new(10, 42);
/// for x in 0..100u64 {
///     s.insert(x);
/// }
/// let sample = *s.sample().expect("window non-empty");
/// assert!((90..100).contains(&sample));
/// ```
#[derive(Debug)]
pub struct ChainSampler<T> {
    w: u64,
    seen: u64,
    /// `(position, item)` pairs; the front is the current sample, each
    /// following entry replaces the previous one when it expires.
    chain: VecDeque<(u64, T)>,
    /// The future position that will extend the chain when it arrives.
    awaiting: Option<u64>,
    rng: StdRng,
}

impl<T> ChainSampler<T> {
    /// Creates a sampler over windows of the last `w` items.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: u64, seed: u64) -> Self {
        assert!(w >= 1, "window must have positive length");
        Self {
            w,
            seen: 0,
            chain: VecDeque::new(),
            awaiting: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Feeds one item (positions are assigned 1, 2, 3, ... internally).
    pub fn insert(&mut self, item: T) {
        self.seen += 1;
        let t = self.seen;
        // Expire chain elements that left the window; the next chain
        // element (pre-selected uniformly from the expiring element's
        // successor window) becomes the sample.
        while let Some(&(pos, _)) = self.chain.front() {
            if pos + self.w <= t {
                self.chain.pop_front();
            } else {
                break;
            }
        }
        // If this position was pre-selected as the successor of the chain
        // tail, append it and pre-select its own successor.
        if self.awaiting == Some(t) {
            self.chain.push_back((t, item));
            self.awaiting = Some(self.rng.random_range(t + 1..=t + self.w));
            return;
        }
        // Otherwise the item becomes the new sample with probability
        // 1/min(t, w), restarting the chain.
        let denom = t.min(self.w);
        if self.rng.random_range(0..denom) == 0 {
            self.chain.clear();
            self.chain.push_back((t, item));
            self.awaiting = Some(self.rng.random_range(t + 1..=t + self.w));
        }
    }

    /// The current sample: a uniformly random item of the last `w`
    /// positions. `None` only before the first insertion.
    pub fn sample(&self) -> Option<&T> {
        self.chain.front().map(|(_, item)| item)
    }

    /// Number of items inserted.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current chain length (diagnostic; expected `O(1)`).
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_always_inside_the_window() {
        let w = 16u64;
        let mut s: ChainSampler<u64> = ChainSampler::new(w, 7);
        for x in 0..500u64 {
            s.insert(x);
            let &v = s.sample().expect("non-empty after first insert");
            assert!(v + w > x, "sample {v} expired at time {x}");
            assert!(v <= x);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform_over_window() {
        let w = 10u64;
        let trials = 30_000u64;
        let mut counts = vec![0u64; w as usize];
        for seed in 0..trials {
            let mut s: ChainSampler<u64> = ChainSampler::new(w, seed);
            for x in 0..50u64 {
                s.insert(x);
            }
            let &v = s.sample().expect("non-empty");
            counts[(v - 40) as usize] += 1;
        }
        let expect = trials / w;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(expect) < expect / 3,
                "position {i}: {c} vs {expect} ({counts:?})"
            );
        }
    }

    #[test]
    fn short_streams_sample_uniformly_too() {
        let trials = 20_000u64;
        let mut counts = vec![0u64; 3];
        for seed in 0..trials {
            let mut s: ChainSampler<u64> = ChainSampler::new(100, seed * 13 + 1);
            for x in 0..3u64 {
                s.insert(x);
            }
            counts[*s.sample().expect("non-empty") as usize] += 1;
        }
        let expect = trials / 3;
        for &c in &counts {
            assert!(c.abs_diff(expect) < expect / 3, "{counts:?}");
        }
    }

    #[test]
    fn chain_stays_short() {
        let mut s: ChainSampler<u64> = ChainSampler::new(64, 3);
        let mut max_chain = 0;
        for x in 0..10_000u64 {
            s.insert(x);
            max_chain = max_chain.max(s.chain_len());
        }
        assert!(max_chain < 40, "chain grew to {max_chain}");
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_window_rejected() {
        let _: ChainSampler<u64> = ChainSampler::new(0, 1);
    }
}
