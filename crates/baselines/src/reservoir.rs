//! Vitter's reservoir sampling (Algorithm R) — the classical uniform
//! sampler over *points* (not groups).
//!
//! Section 2.3 of the paper plugs reservoir sampling into Algorithm 1 to
//! return a random member of the sampled group; we also use it standalone
//! as the "what uniform-over-points looks like" baseline: on noisy data a
//! point-uniform sample is exactly the group-size-biased distribution the
//! robust sampler avoids.

use rand::Rng;

/// A size-`k` reservoir over items of type `T`.
///
/// After `n >= k` insertions, every subset of size `k` of the stream is
/// equally likely to be the reservoir (Vitter 1985).
///
/// # Examples
///
/// ```
/// use rds_baselines::Reservoir;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut r = Reservoir::new(3);
/// for x in 0..100 {
///     r.insert(x, &mut rng);
/// }
/// assert_eq!(r.items().len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    k: usize,
    items: Vec<T>,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir of capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "reservoir capacity must be at least 1");
        Self {
            k,
            items: Vec::with_capacity(k),
            seen: 0,
        }
    }

    /// Offers one item to the reservoir.
    pub fn insert<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.k {
            self.items.push(item);
        } else {
            let j = rng.random_range(0..self.seen);
            if (j as usize) < self.k {
                self.items[j as usize] = item;
            }
        }
    }

    /// The current sample set (fewer than `k` items only while the stream
    /// is shorter than `k`).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

// `random_range` comes from `RngExt`; import it for the impl above.
use rand::RngExt;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_up_to_capacity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(5);
        for x in 0..3 {
            r.insert(x, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2]);
        for x in 3..100 {
            r.insert(x, &mut rng);
        }
        assert_eq!(r.items().len(), 5);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn single_slot_is_uniform() {
        // classic check: each of n items ends up in a 1-slot reservoir
        // with probability ~1/n
        let n = 20u64;
        let trials = 20_000;
        let mut counts = vec![0u64; n as usize];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..trials {
            let mut r = Reservoir::new(1);
            for x in 0..n {
                r.insert(x, &mut rng);
            }
            counts[r.items()[0] as usize] += 1;
        }
        let expect = trials / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c.abs_diff(expect) < expect / 2,
                "item {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn items_are_distinct_positions() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = Reservoir::new(10);
        for x in 0..1000u64 {
            r.insert(x, &mut rng);
        }
        let mut v = r.items().to_vec();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 10, "reservoir duplicated a stream position");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _: Reservoir<u64> = Reservoir::new(0);
    }
}
