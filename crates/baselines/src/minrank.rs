//! The folklore noiseless ℓ0-sampler: assign each distinct item a random
//! rank and keep the minimum-rank item.
//!
//! This is the "uniform random sampling on representative points"
//! primitive the paper builds on (Techniques Overview, Section 1) and the
//! baseline whose behaviour on noisy data motivates the whole paper: on a
//! stream with near-duplicates the sampler sees every near-duplicate as a
//! fresh distinct item, so its output is biased toward heavily duplicated
//! groups — see the `bias` experiment in the bench crate.

use rds_geometry::Point;
use rds_hashing::{point_identity, splitmix64};

/// A noiseless min-rank ℓ0-sampler over 64-bit item identities.
///
/// The rank of item `x` is the seeded mix of `x`; equal items always get
/// equal ranks, so duplicates of the *exact same* item do not bias the
/// sample, but near-duplicates (different identities) do.
///
/// # Examples
///
/// ```
/// use rds_baselines::MinRankL0Sampler;
///
/// let mut s = MinRankL0Sampler::new(7);
/// for x in [3u64, 1, 4, 1, 5, 9, 2, 6] {
///     s.process(x);
/// }
/// assert!(s.sample().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct MinRankL0Sampler {
    seed: u64,
    best: Option<(u64, u64)>, // (rank, item)
    seen: u64,
}

impl MinRankL0Sampler {
    /// Creates the sampler with a rank-hash seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            best: None,
            seen: 0,
        }
    }

    /// Feeds one item.
    pub fn process(&mut self, item: u64) {
        self.seen += 1;
        let rank = splitmix64(self.seed ^ item);
        match self.best {
            Some((r, _)) if r <= rank => {}
            _ => self.best = Some((rank, item)),
        }
    }

    /// The current sample: a uniformly random *distinct* item of the
    /// stream (over the hash randomness).
    pub fn sample(&self) -> Option<u64> {
        self.best.map(|(_, item)| item)
    }

    /// Number of items processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// [`MinRankL0Sampler`] lifted to Euclidean points by exact-bit identity —
/// the baseline that *fails* on near-duplicates.
#[derive(Clone, Debug)]
pub struct PointMinRankSampler {
    inner: MinRankL0Sampler,
    id_seed: u64,
    best_point: Option<Point>,
}

impl PointMinRankSampler {
    /// Creates the sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: MinRankL0Sampler::new(seed ^ 0x5A5A),
            id_seed: seed,
            best_point: None,
        }
    }

    /// Feeds one point; the point's identity is its exact bit pattern.
    pub fn process(&mut self, p: &Point) {
        let id = point_identity(p.coords(), self.id_seed);
        let before = self.inner.sample();
        self.inner.process(id);
        if self.inner.sample() != before {
            self.best_point = Some(p.clone());
        }
    }

    /// The current sample.
    pub fn sample(&self) -> Option<&Point> {
        self.best_point.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_metrics::SampleHistogram;

    #[test]
    fn exact_duplicates_do_not_bias() {
        // stream: item 0 appears 1000 times, items 1..=9 once each;
        // over many seeds, item 0 must be sampled ~1/10 of the time.
        let mut hist = SampleHistogram::new(10);
        for seed in 0..2000u64 {
            let mut s = MinRankL0Sampler::new(seed);
            for _ in 0..1000 {
                s.process(0);
            }
            for x in 1..10u64 {
                s.process(x);
            }
            hist.record(s.sample().expect("non-empty") as usize);
        }
        assert!(
            hist.max_dev_nm() < 0.5,
            "biased: {:?}",
            hist.counts()
        );
    }

    #[test]
    fn near_duplicate_points_do_bias() {
        // group 0 has 50 near-duplicates; groups 1..=9 have one point.
        // The noiseless sampler treats all 59 points as distinct, so
        // group 0 is sampled ~50/59 of the time — the failure the paper
        // fixes.
        let mut group0_wins = 0u64;
        let trials = 400;
        for seed in 0..trials {
            let mut s = PointMinRankSampler::new(seed * 17 + 3);
            for i in 0..50 {
                s.process(&Point::new(vec![0.0 + i as f64 * 1e-9]));
            }
            for g in 1..10 {
                s.process(&Point::new(vec![g as f64 * 10.0]));
            }
            let p = s.sample().expect("non-empty");
            if p.get(0) < 1.0 {
                group0_wins += 1;
            }
        }
        let frac = group0_wins as f64 / trials as f64;
        assert!(
            frac > 0.6,
            "expected heavy bias toward the duplicated group, got {frac}"
        );
    }

    #[test]
    fn empty_stream_has_no_sample() {
        assert!(MinRankL0Sampler::new(1).sample().is_none());
        assert!(PointMinRankSampler::new(1).sample().is_none());
    }

    #[test]
    fn sample_is_from_the_stream() {
        let mut s = MinRankL0Sampler::new(5);
        let items = [10u64, 20, 30];
        for &x in &items {
            s.process(x);
        }
        assert!(items.contains(&s.sample().expect("non-empty")));
        assert_eq!(s.seen(), 3);
    }
}
