//! The Flajolet–Martin probabilistic counter (JCSS 1985) — the classic
//! bitmap F0 sketch whose sliding-window adaptation Section 5 of the
//! paper builds on (it is also where the constant `phi = 0.77351` comes
//! from).

use rds_hashing::splitmix64;

/// The Flajolet–Martin bias correction constant.
pub const PHI: f64 = 0.77351;

/// An FM sketch: `copies` bitmaps, each recording which trailing-zero
/// counts were observed; the estimate is `2^{mean R} / phi` with `R` the
/// index of the lowest unset bit.
///
/// # Examples
///
/// ```
/// use rds_baselines::FmSketch;
///
/// let mut s = FmSketch::new(64, 9);
/// for x in 0..2000u64 {
///     s.process(x);
/// }
/// let est = s.estimate();
/// assert!(est > 800.0 && est < 5000.0);
/// ```
#[derive(Clone, Debug)]
pub struct FmSketch {
    bitmaps: Vec<u64>,
    seed: u64,
}

impl FmSketch {
    /// Creates a sketch with `copies` independent bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn new(copies: usize, seed: u64) -> Self {
        assert!(copies >= 1, "need at least one bitmap");
        Self {
            bitmaps: vec![0; copies],
            seed,
        }
    }

    /// Feeds one item.
    pub fn process(&mut self, item: u64) {
        for (i, bm) in self.bitmaps.iter_mut().enumerate() {
            let h = splitmix64(self.seed ^ item ^ ((i as u64) << 56).wrapping_add(i as u64));
            let rho = h.trailing_zeros().min(63);
            *bm |= 1u64 << rho;
        }
    }

    /// Index of the lowest unset bit of one bitmap.
    fn lowest_zero(bm: u64) -> u32 {
        (!bm).trailing_zeros()
    }

    /// The distinct-count estimate `2^{mean R} / phi`.
    pub fn estimate(&self) -> f64 {
        let mean_r = self
            .bitmaps
            .iter()
            .map(|&bm| Self::lowest_zero(bm) as f64)
            .sum::<f64>()
            / self.bitmaps.len() as f64;
        2f64.powf(mean_r) / PHI
    }

    /// Number of bitmap copies.
    pub fn copies(&self) -> usize {
        self.bitmaps.len()
    }

    /// Words of memory in use.
    pub fn words(&self) -> usize {
        self.bitmaps.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_near_one() {
        let s = FmSketch::new(16, 1);
        assert!(s.estimate() <= 2.0);
    }

    #[test]
    fn duplicates_are_free() {
        let mut a = FmSketch::new(32, 2);
        let mut b = FmSketch::new(32, 2);
        for x in 0..300u64 {
            a.process(x);
            b.process(x);
            b.process(x);
            b.process(x);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn estimate_grows_with_cardinality() {
        let mut small = FmSketch::new(64, 3);
        let mut large = FmSketch::new(64, 3);
        for x in 0..100u64 {
            small.process(x);
        }
        for x in 0..10_000u64 {
            large.process(x);
        }
        assert!(large.estimate() > 4.0 * small.estimate());
    }

    #[test]
    fn estimate_is_order_of_magnitude_correct() {
        let mut s = FmSketch::new(128, 4);
        let truth = 4096.0;
        for x in 0..4096u64 {
            s.process(x.wrapping_mul(0x2545F4914F6CDD1D));
        }
        let est = s.estimate();
        assert!(
            est > truth / 3.0 && est < truth * 3.0,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn lowest_zero_hand_cases() {
        assert_eq!(FmSketch::lowest_zero(0b0), 0);
        assert_eq!(FmSketch::lowest_zero(0b1), 1);
        assert_eq!(FmSketch::lowest_zero(0b111), 3);
        assert_eq!(FmSketch::lowest_zero(0b1011), 2);
    }
}
