//! Noiseless-stream baselines for the comparison experiments.
//!
//! All of these treat items by exact identity; on data with
//! near-duplicates they exhibit exactly the failures the paper's robust
//! algorithms repair (group-size-biased sampling, inflated distinct
//! counts):
//!
//! * [`MinRankL0Sampler`] / [`PointMinRankSampler`] — folklore min-rank
//!   ℓ0 sampling;
//! * [`Reservoir`] — Vitter's reservoir sampling over points;
//! * [`ChainSampler`] — Babcock et al. sliding-window sampling;
//! * [`ExponentialHistogram`] — Datar et al. basic counting (Remark 1's
//!   point of comparison);
//! * [`KmvDistinctEstimator`] — bottom-k (BJKST-family) F0;
//! * [`FmSketch`] — Flajolet–Martin probabilistic counting;
//! * [`HyperLogLog`] — HLL cardinality estimation.

#![warn(missing_docs)]

mod bjkst;
mod chain;
mod eh;
mod fm;
mod hll;
mod minrank;
mod reservoir;

pub use bjkst::KmvDistinctEstimator;
pub use chain::ChainSampler;
pub use eh::ExponentialHistogram;
pub use fm::{FmSketch, PHI};
pub use hll::HyperLogLog;
pub use minrank::{MinRankL0Sampler, PointMinRankSampler};
pub use reservoir::Reservoir;
