//! HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007) — the
//! industry-standard noiseless F0 sketch that Section 5 of the paper
//! mentions as a plug-in target for the robust sampler.

use rds_hashing::splitmix64;

/// A HyperLogLog counter with `2^b` registers.
///
/// # Examples
///
/// ```
/// use rds_baselines::HyperLogLog;
///
/// let mut h = HyperLogLog::new(10, 7);
/// for x in 0..50_000u64 {
///     h.process(x);
/// }
/// let est = h.estimate();
/// assert!(est > 40_000.0 && est < 60_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct HyperLogLog {
    b: u32,
    registers: Vec<u8>,
    seed: u64,
}

impl HyperLogLog {
    /// Creates a counter with `2^b` registers (`4 <= b <= 16`); the
    /// standard error is about `1.04 / sqrt(2^b)`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `4..=16`.
    pub fn new(b: u32, seed: u64) -> Self {
        assert!((4..=16).contains(&b), "b must be in 4..=16");
        Self {
            b,
            registers: vec![0; 1 << b],
            seed,
        }
    }

    /// Feeds one item.
    pub fn process(&mut self, item: u64) {
        let h = splitmix64(self.seed ^ item);
        let idx = (h >> (64 - self.b)) as usize;
        let rest = h << self.b;
        // rank: position of the leftmost 1-bit in the remaining bits
        let rho = (rest.leading_zeros() + 1).min(64 - self.b + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    fn alpha(m: f64) -> f64 {
        // standard bias-correction constants
        match m as u64 {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        }
    }

    /// The distinct-count estimate with the standard small-range (linear
    /// counting) correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-(r as i32)))
            .sum();
        let raw = Self::alpha(m) * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another counter with the same parameters (register-wise
    /// max).
    ///
    /// # Panics
    ///
    /// Panics if the parameters differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.b, other.b, "precision mismatch");
        assert_eq!(self.seed, other.seed, "seed mismatch");
        for (a, &b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(b);
        }
    }

    /// Words of memory in use (registers are sub-word; we count the
    /// conventional `m/8` packing).
    pub fn words(&self) -> usize {
        self.registers.len() / 8 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter_estimates_zero() {
        let h = HyperLogLog::new(8, 1);
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn duplicates_are_free() {
        let mut a = HyperLogLog::new(10, 2);
        let mut b = HyperLogLog::new(10, 2);
        for x in 0..1000u64 {
            a.process(x);
            for _ in 0..5 {
                b.process(x);
            }
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut h = HyperLogLog::new(12, 3);
        for x in 0..100u64 {
            h.process(x);
        }
        let est = h.estimate();
        assert!((est - 100.0).abs() < 15.0, "estimate {est}");
    }

    #[test]
    fn large_range_accuracy() {
        let mut h = HyperLogLog::new(12, 4);
        let truth = 200_000u64;
        for x in 0..truth {
            h.process(x.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let est = h.estimate();
        let rel = (est - truth as f64).abs() / truth as f64;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10, 5);
        let mut b = HyperLogLog::new(10, 5);
        let mut union = HyperLogLog::new(10, 5);
        for x in 0..5000u64 {
            a.process(x);
            union.process(x);
        }
        for x in 2500..7500u64 {
            b.process(x);
            union.process(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
    }

    #[test]
    #[should_panic(expected = "b must be in 4..=16")]
    fn invalid_precision_rejected() {
        let _ = HyperLogLog::new(2, 1);
    }
}
