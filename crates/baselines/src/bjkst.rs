//! Bottom-k (KMV) distinct-elements estimation — the BJKST (Bar-Yossef,
//! Jayram, Kumar, Sivakumar, Trevisan, RANDOM 2002) family of noiseless
//! F0 estimators that Section 5 of the paper robustifies.
//!
//! The estimator keeps the `k` minimum hash values seen; with `v_k` the
//! k-th minimum mapped into `[0, 1]`, the number of distinct elements is
//! about `(k - 1) / v_k`.

use rds_hashing::splitmix64;
use std::collections::BTreeSet;

/// Bottom-k distinct counter over `u64` item identities.
///
/// # Examples
///
/// ```
/// use rds_baselines::KmvDistinctEstimator;
///
/// let mut e = KmvDistinctEstimator::new(64, 1);
/// for x in 0..1000u64 {
///     e.process(x % 100); // 100 distinct items, each 10 times
/// }
/// let est = e.estimate();
/// assert!(est > 60.0 && est < 160.0);
/// ```
#[derive(Clone, Debug)]
pub struct KmvDistinctEstimator {
    k: usize,
    seed: u64,
    smallest: BTreeSet<u64>,
    seen: u64,
}

impl KmvDistinctEstimator {
    /// Creates the estimator with `k` retained minima; the standard error
    /// is about `1/sqrt(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "bottom-k needs k >= 2");
        Self {
            k,
            seed,
            smallest: BTreeSet::new(),
            seen: 0,
        }
    }

    /// Feeds one item.
    pub fn process(&mut self, item: u64) {
        self.seen += 1;
        let h = splitmix64(self.seed ^ item);
        if self.smallest.len() < self.k {
            self.smallest.insert(h);
        } else if let Some(&max) = self.smallest.iter().next_back() {
            if h < max {
                // duplicates hash identically: `insert` returning false
                // keeps the set unchanged, as required
                if self.smallest.insert(h) {
                    self.smallest.remove(&max);
                }
            }
        }
    }

    /// The distinct-count estimate.
    pub fn estimate(&self) -> f64 {
        let n = self.smallest.len();
        if n < self.k {
            // fewer distinct elements than k: the set is exact
            return n as f64;
        }
        let vk = *self.smallest.iter().next_back().expect("k >= 2") as f64
            / u64::MAX as f64;
        (self.k as f64 - 1.0) / vk
    }

    /// Number of items processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Words of memory in use.
    pub fn words(&self) -> usize {
        self.smallest.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut e = KmvDistinctEstimator::new(32, 1);
        for x in 0..10u64 {
            for _ in 0..5 {
                e.process(x);
            }
        }
        assert_eq!(e.estimate(), 10.0);
    }

    #[test]
    fn duplicates_do_not_change_the_estimate() {
        let mut a = KmvDistinctEstimator::new(16, 2);
        let mut b = KmvDistinctEstimator::new(16, 2);
        for x in 0..500u64 {
            a.process(x);
            b.process(x);
            b.process(x); // duplicate every item
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn estimate_within_tolerance_on_large_stream() {
        let truth = 5000.0;
        let mut errs = Vec::new();
        for seed in 0..10u64 {
            let mut e = KmvDistinctEstimator::new(256, seed * 7 + 1);
            for x in 0..5000u64 {
                e.process(x.wrapping_mul(0x9E3779B97F4A7C15));
            }
            errs.push((e.estimate() - truth).abs() / truth);
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.2, "mean relative error {mean_err}");
    }

    #[test]
    fn near_duplicate_identities_inflate_the_count() {
        // the failure mode on noisy data: 100 groups x 50 near-duplicates
        // look like 5000 distinct items
        let mut e = KmvDistinctEstimator::new(256, 3);
        for g in 0..100u64 {
            for d in 0..50u64 {
                e.process(g * 1_000_000 + d); // distinct identities per duplicate
            }
        }
        assert!(
            e.estimate() > 2000.0,
            "expected inflation far above 100 groups, got {}",
            e.estimate()
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn tiny_k_rejected() {
        let _ = KmvDistinctEstimator::new(1, 1);
    }
}
