//! Sharded concurrent ingestion for robust distinct sampling.
//!
//! The paper's site summaries merge ([`DistributedSampling`]), so a single
//! heavy stream can be *sharded*: `N` worker threads each own an ordinary
//! [`RobustL0Sampler`] built from one shared [`SamplerConfig`] (identical
//! grid and hash), a router hash-partitions arriving points across the
//! workers, and queries merge the per-shard [`SiteSummary`]s exactly as a
//! coordinator would merge remote sites. Correctness is inherited from
//! the merge: the union of the shard substreams *is* the stream, and the
//! merge deduplicates groups whose points were split across shards.
//!
//! Two mechanisms make the sharded path fast:
//!
//! * **Entity-affine routing.** Points are routed by the cell of a coarse
//!   routing grid (side `4 * side(alpha)`), so the near-duplicates of one
//!   entity land on one shard almost always. Each shard therefore tracks
//!   `~F0 / N` candidate groups, and the per-point linear scan over the
//!   accept/reject sets — Algorithm 1's hot path — shrinks by the shard
//!   factor. This is a genuine algorithmic speedup, visible even on a
//!   single hardware thread; on a multicore box the shards additionally
//!   run in parallel.
//! * **Batched hand-off.** Points travel to the workers in [`Vec`]
//!   batches (default [`DEFAULT_BATCH_SIZE`]) and are ingested with
//!   [`RobustL0Sampler::process_batch`], amortizing channel traffic and
//!   the space-metering sweep over the batch.
//!
//! ```
//! use rds_core::SamplerConfig;
//! use rds_engine::ShardedEngine;
//! use rds_geometry::Point;
//!
//! let cfg = SamplerConfig::new(1, 0.5).with_seed(7);
//! let mut engine = ShardedEngine::new(cfg, 4);
//! for i in 0..400u64 {
//!     // 40 entities, 10 near-duplicate observations each
//!     engine.ingest(Point::new(vec![(i % 40) as f64 * 10.0]));
//! }
//! assert!(engine.query().is_some());
//! let f0 = engine.finish().f0_estimate();
//! assert!((f0 - 40.0).abs() < 20.0);
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_core::{
    DistributedSampling, MergedSummary, RobustL0Sampler, SamplerConfig, SiteSummary,
};
use rds_geometry::{Grid, Point};
use rds_hashing::CellKeyMixer;
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;

/// Default number of points per batch handed to a worker shard.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// The routing grid is this factor coarser than the sampler grid, so one
/// entity (diameter <= alpha) straddles a routing-cell boundary — and thus
/// may split across shards — only with probability about `dim / 4`.
const ROUTE_SIDE_FACTOR: f64 = 4.0;

/// Seed tweaks: the router must not reuse the samplers' randomness.
const ROUTE_GRID_SALT: u64 = 0x5AAD_ED01;
const ROUTE_MIX_SALT: u64 = 0x5AAD_ED02;

enum Cmd {
    Batch(Vec<Point>),
    Snapshot(Sender<SiteSummary>),
}

struct Shard {
    tx: Sender<Cmd>,
    buf: Vec<Point>,
    routed: u64,
}

/// Deterministic point-to-shard router: the cell of a coarse random grid,
/// key-mixed and reduced mod the shard count.
struct Router {
    grid: Grid,
    mixer: CellKeyMixer,
    scratch: Vec<i64>,
}

impl Router {
    fn new(cfg: &SamplerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ROUTE_GRID_SALT);
        Self {
            grid: Grid::random(cfg.dim, ROUTE_SIDE_FACTOR * cfg.side(), &mut rng),
            mixer: CellKeyMixer::new(cfg.seed ^ ROUTE_MIX_SALT),
            scratch: Vec::new(),
        }
    }

    fn shard_of(&mut self, p: &Point, n_shards: usize) -> usize {
        self.grid.cell_of_into(p, &mut self.scratch);
        (self.mixer.key(&self.scratch) % n_shards as u64) as usize
    }
}

/// A sharded ingestion pipeline over the infinite window: hash-partitions
/// points across `N` worker threads, each owning a [`RobustL0Sampler`]
/// with the shared configuration, and answers queries by merging the
/// per-shard summaries.
///
/// All query methods implicitly [`flush`](Self::flush) first, so results
/// always reflect every ingested point. Dropping the engine shuts the
/// workers down; [`finish`](Self::finish) does the same but hands back
/// the final [`MergedSummary`] without cloning shard state.
#[derive(Debug)]
pub struct ShardedEngine {
    dist: DistributedSampling,
    router: Router,
    shards: Vec<Shard>,
    handles: Vec<JoinHandle<RobustL0Sampler>>,
    batch_size: usize,
    seen: u64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("buffered", &self.buf.len())
            .field("routed", &self.routed)
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Spawns `n_shards` worker threads, each with a fresh site sampler of
    /// the shared configuration (Algorithm 1's default threshold).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0`.
    pub fn new(cfg: SamplerConfig, n_shards: usize) -> Self {
        let threshold = cfg.threshold();
        Self::with_threshold(cfg, n_shards, threshold)
    }

    /// Like [`Self::new`] with an explicit accept-set threshold per shard
    /// (Section 5's F0 regime uses `kappa_B / eps^2`).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or `threshold == 0`.
    pub fn with_threshold(cfg: SamplerConfig, n_shards: usize, threshold: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let dist = DistributedSampling::new(cfg.clone());
        let router = Router::new(&cfg);
        let mut shards = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (tx, rx) = mpsc::channel::<Cmd>();
            let site_cfg = cfg.clone();
            let handle = std::thread::spawn(move || {
                let mut sampler = RobustL0Sampler::with_threshold(site_cfg, threshold);
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Batch(batch) => {
                            sampler.process_batch(&batch);
                        }
                        Cmd::Snapshot(reply) => {
                            // receiver may have given up; ignore
                            let _ = reply.send(sampler.summary());
                        }
                    }
                }
                sampler
            });
            shards.push(Shard {
                tx,
                buf: Vec::with_capacity(DEFAULT_BATCH_SIZE),
                routed: 0,
            });
            handles.push(handle);
        }
        Self {
            dist,
            router,
            shards,
            handles,
            batch_size: DEFAULT_BATCH_SIZE,
            seen: 0,
        }
    }

    /// Sets the number of points buffered per shard before a batch is
    /// shipped to the worker.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Routes one point to its shard, shipping that shard's buffer when it
    /// reaches the batch size.
    pub fn ingest(&mut self, p: Point) {
        self.seen += 1;
        let s = self.router.shard_of(&p, self.shards.len());
        let shard = &mut self.shards[s];
        shard.routed += 1;
        shard.buf.push(p);
        if shard.buf.len() >= self.batch_size {
            let batch = std::mem::replace(&mut shard.buf, Vec::with_capacity(self.batch_size));
            shard
                .tx
                .send(Cmd::Batch(batch))
                .expect("shard worker terminated");
        }
    }

    /// Ingests every point of an iterator of points (to feed pre-chunked
    /// input from [`rds_stream::batched`], flatten it first:
    /// `engine.ingest_batch(batches.flatten())`).
    pub fn ingest_batch<I>(&mut self, points: I)
    where
        I: IntoIterator<Item = Point>,
    {
        for p in points {
            self.ingest(p);
        }
    }

    /// Ships every partially filled shard buffer to its worker.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            if !shard.buf.is_empty() {
                let batch =
                    std::mem::replace(&mut shard.buf, Vec::with_capacity(self.batch_size));
                shard
                    .tx
                    .send(Cmd::Batch(batch))
                    .expect("shard worker terminated");
            }
        }
    }

    /// Flushes, then snapshots every shard's [`SiteSummary`] (the workers
    /// keep running and can ingest more afterwards).
    pub fn summaries(&mut self) -> Vec<SiteSummary> {
        self.flush();
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (reply_tx, reply_rx) = mpsc::channel();
            shard
                .tx
                .send(Cmd::Snapshot(reply_tx))
                .expect("shard worker terminated");
            pending.push(reply_rx);
        }
        pending
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker terminated"))
            .collect()
    }

    /// Flushes and merges the current shard states into a coordinator
    /// summary over the whole stream so far.
    pub fn merged(&mut self) -> MergedSummary {
        let summaries = self.summaries();
        self.dist
            .merge_summaries(&summaries)
            .expect("shards share one configuration by construction")
    }

    /// The merged robust F0 estimate (`|Sacc| * R` over the union).
    pub fn f0_estimate(&mut self) -> f64 {
        self.merged().f0_estimate()
    }

    /// Draws one robust ℓ0-sample over the whole stream: a uniformly
    /// random sampled entity's representative. `None` iff nothing was
    /// ingested.
    pub fn query(&mut self) -> Option<Point> {
        self.merged().query().cloned()
    }

    /// Draws up to `k` distinct sampled entities.
    pub fn query_k(&mut self, k: usize) -> Vec<Point> {
        self.merged()
            .query_k(k)
            .into_iter()
            .map(|rec| rec.rep.clone())
            .collect()
    }

    /// Shuts the workers down and merges their final states, moving (not
    /// cloning) every shard's candidate sets into the summary.
    pub fn finish(mut self) -> MergedSummary {
        self.flush();
        // Dropping the senders ends each worker's receive loop.
        let handles = std::mem::take(&mut self.handles);
        self.shards.clear();
        let summaries: Vec<SiteSummary> = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked").into_summary())
            .collect();
        self.dist
            .merge_summaries(&summaries)
            .expect("shards share one configuration by construction")
    }

    /// Number of points ingested so far (including still-buffered ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.handles.len()
    }

    /// The batch size in force.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// How many points were routed to each shard — diagnostic view of the
    /// partition balance.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.routed).collect()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close the channels so the workers exit their loops, then wait
        // for them; buffered points are discarded (call `finish` to keep
        // them).
        self.shards.clear();
        for h in std::mem::take(&mut self.handles) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![
            (i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 5) as f64,
        ])
    }

    fn cfg(seed: u64) -> SamplerConfig {
        SamplerConfig::new(1, 0.5)
            .with_seed(seed)
            .with_expected_len(2048)
    }

    #[test]
    fn counts_groups_exactly_when_nothing_subsamples() {
        let mut engine = ShardedEngine::new(cfg(1), 4).with_batch_size(32);
        for i in 0..512u64 {
            engine.ingest(grouped_point(i, 16));
        }
        assert_eq!(engine.seen(), 512);
        assert_eq!(engine.f0_estimate(), 16.0);
    }

    #[test]
    fn matches_single_stream_estimator_on_the_same_seeded_stream() {
        // The acceptance contract: sharded merged F0 == single-stream F0
        // within the configured tolerance, on one seeded stream.
        let n_groups = 300u64;
        let eps = 0.5f64;
        let threshold = (16.0 / (eps * eps)).ceil() as usize;
        let base = cfg(2).with_expected_len(6000);
        let mut single = RobustL0Sampler::with_threshold(base.clone(), threshold);
        let mut engine = ShardedEngine::with_threshold(base, 8, threshold);
        for i in 0..6000u64 {
            let p = grouped_point(i, n_groups);
            single.process(&p);
            engine.ingest(p);
        }
        let merged = engine.finish();
        let sharded_f0 = merged.f0_estimate();
        let single_f0 = single.f0_estimate();
        assert!(
            (sharded_f0 - single_f0).abs() <= eps * single_f0,
            "sharded {sharded_f0} vs single {single_f0} beyond eps {eps}"
        );
        assert!(
            (sharded_f0 - n_groups as f64).abs() <= eps * n_groups as f64,
            "sharded {sharded_f0} vs truth {n_groups} beyond eps {eps}"
        );
    }

    #[test]
    fn sharded_ingestion_is_deterministic() {
        let run = || {
            let mut engine = ShardedEngine::new(cfg(3), 3).with_batch_size(7);
            for i in 0..600u64 {
                engine.ingest(grouped_point(i, 50));
            }
            (engine.shard_loads(), engine.finish().f0_estimate())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mid_stream_queries_do_not_disturb_ingestion() {
        let mut engine = ShardedEngine::new(cfg(4), 2).with_batch_size(16);
        for i in 0..128u64 {
            engine.ingest(grouped_point(i, 8));
        }
        let early = engine.f0_estimate();
        assert_eq!(early, 8.0);
        for i in 128..1024u64 {
            engine.ingest(grouped_point(i, 32));
        }
        assert_eq!(engine.f0_estimate(), 32.0);
        assert_eq!(engine.seen(), 1024);
    }

    #[test]
    fn query_returns_an_ingested_entity() {
        let mut engine = ShardedEngine::new(cfg(5), 4);
        assert!(engine.query().is_none());
        for i in 0..64u64 {
            engine.ingest(grouped_point(i, 4));
        }
        let q = engine.query().expect("non-empty");
        let entity = (q.get(0) / 10.0).round();
        assert!((0.0..4.0).contains(&entity), "sample {q:?} not an entity");
    }

    #[test]
    fn query_k_returns_distinct_entities() {
        let mut engine = ShardedEngine::new(cfg(6), 4);
        for i in 0..256u64 {
            engine.ingest(grouped_point(i, 16));
        }
        let picks = engine.query_k(5);
        assert_eq!(picks.len(), 5);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].within(&picks[j], 0.5), "duplicate entities");
            }
        }
    }

    #[test]
    fn one_shard_degenerates_to_a_single_site() {
        // With one shard the engine is a plain sampler behind a channel.
        let mut single = RobustL0Sampler::new(cfg(7));
        let mut engine = ShardedEngine::new(cfg(7), 1).with_batch_size(10);
        for i in 0..300u64 {
            let p = grouped_point(i, 24);
            single.process(&p);
            engine.ingest(p);
        }
        let merged = engine.finish();
        assert_eq!(merged.f0_estimate(), single.f0_estimate());
        assert_eq!(merged.accept_set().len(), single.accept_set().len());
    }

    #[test]
    fn routing_is_entity_affine() {
        // Near-duplicates of one entity overwhelmingly route to one shard:
        // the load of the busiest shard per entity must be most of it.
        let mut engine = ShardedEngine::new(cfg(8), 4);
        let mut split_entities = 0u32;
        let n_entities = 64u64;
        for e in 0..n_entities {
            let mut shards_hit = std::collections::BTreeSet::new();
            for j in 0..8u64 {
                let p = Point::new(vec![e as f64 * 10.0 + 0.01 * (j % 5) as f64]);
                shards_hit.insert(engine.router.shard_of(&p, 4));
            }
            if shards_hit.len() > 1 {
                split_entities += 1;
            }
        }
        // side = 4*alpha = 2, jitter 0.04 << 2: splits are rare
        assert!(
            split_entities <= n_entities as u32 / 4,
            "{split_entities}/{n_entities} entities split across shards"
        );
    }

    #[test]
    fn uniformity_over_the_union_of_shards() {
        let n_groups = 16usize;
        let mut hist = rds_metrics::SampleHistogram::new(n_groups);
        for run in 0..300u64 {
            let mut engine =
                ShardedEngine::new(cfg(run * 131 + 11), 4).with_batch_size(32);
            for i in 0..256u64 {
                engine.ingest(grouped_point(i, n_groups as u64));
            }
            let q = engine.query().expect("non-empty");
            hist.record((q.get(0) / 10.0).round() as usize);
        }
        assert!(
            hist.std_dev_nm() < 0.5,
            "sharded sampling biased: {:?}",
            hist.counts()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(cfg(9), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_size_rejected() {
        let _ = ShardedEngine::new(cfg(10), 1).with_batch_size(0);
    }
}
