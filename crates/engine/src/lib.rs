//! Sharded concurrent ingestion for robust distinct sampling — generic
//! over the sampler family.
//!
//! Sampler summaries merge ([`SamplerSummary`]), so a single heavy stream
//! can be *sharded*: `N` worker threads each own a sampler built from one
//! shared [`SamplerConfig`] (identical grid and hash), a router
//! hash-partitions arriving items across the workers, and queries merge
//! the per-shard summaries exactly as a coordinator would merge remote
//! sites. Correctness is inherited from the merge: the union of the shard
//! substreams *is* the stream, and the merge deduplicates groups whose
//! points were split across shards.
//!
//! The engine is generic over `S: DistinctSampler + Send`, so
//! sliding-window ([`SlidingWindowSampler`]) and other workloads shard
//! exactly like the infinite-window one ([`RobustL0Sampler`], the default
//! type parameter). Window expiry stays correct under sharding because
//! items carry their *global* stamps: each shard's window is the global
//! window restricted to its substream, and before every snapshot the
//! worker advances its sampler to the engine's latest stamp
//! ([`DistinctSampler::advance`]), so shards that went quiet still expire.
//!
//! Two mechanisms make the sharded path fast:
//!
//! * **Entity-affine routing.** Points are routed by the cell of a coarse
//!   routing grid (side `4 * side(alpha)`), so the near-duplicates of one
//!   entity land on one shard almost always. Each shard therefore tracks
//!   `~F0 / N` candidate groups, and the per-point linear scan over the
//!   accept/reject sets — Algorithm 1's hot path — shrinks by the shard
//!   factor. This is a genuine algorithmic speedup, visible even on a
//!   single hardware thread; on a multicore box the shards additionally
//!   run in parallel.
//! * **Batched hand-off.** Items travel to the workers in [`Vec`]
//!   batches (default [`DEFAULT_BATCH_SIZE`]) and are ingested with
//!   [`DistinctSampler::process_batch`], amortizing channel traffic and
//!   per-item bookkeeping over the batch.
//!
//! Reads never mutate the stream state implicitly: [`ShardedEngine::flush`]
//! is the only operation that ships partially filled batch buffers to the
//! workers, and [`ShardedEngine::snapshot`] merges what the workers have
//! *received* without draining anything — so a monitoring path that
//! snapshots mid-stream observes the engine, it does not alter its
//! batching. Call `flush` first when a read must cover every ingested
//! item; [`ShardedEngine::finish`] always covers everything (it flushes,
//! then moves the final shard states out).
//!
//! ```
//! use rds_core::SamplerConfig;
//! use rds_engine::ShardedEngine;
//! use rds_geometry::Point;
//!
//! let cfg = SamplerConfig::builder(1, 0.5).seed(7).build().expect("valid");
//! let mut engine = ShardedEngine::try_new(cfg, 4).expect("valid");
//! for i in 0..400u64 {
//!     // 40 entities, 10 near-duplicate observations each
//!     engine.ingest(Point::new(vec![(i % 40) as f64 * 10.0]));
//! }
//! engine.flush(); // reads do not flush implicitly
//! assert!(engine.query().is_some());
//! let f0 = engine.finish().f0_estimate();
//! assert!((f0 - 40.0).abs() < 20.0);
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_core::{
    Checkpointable, DistinctSampler, GroupRecord, RdsError, RobustL0Sampler, SamplerConfig,
    SamplerSummary, SlidingWindowSampler,
};
use rds_geometry::{Grid, Point};
use rds_hashing::CellKeyMixer;
use rds_stream::{Stamp, StreamItem, Window};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;

/// Default number of items per batch handed to a worker shard.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// The routing grid is this factor coarser than the sampler grid, so one
/// entity (diameter <= alpha) straddles a routing-cell boundary — and thus
/// may split across shards — only with probability about `dim / 4`.
const ROUTE_SIDE_FACTOR: f64 = 4.0;

/// Seed tweaks: the router must not reuse the samplers' randomness.
const ROUTE_GRID_SALT: u64 = 0x5AAD_ED01;
const ROUTE_MIX_SALT: u64 = 0x5AAD_ED02;

enum Cmd<S: DistinctSampler> {
    Batch(Vec<StreamItem>),
    Snapshot(Sender<S::Summary>, Stamp),
    /// Runs an arbitrary closure against the worker's sampler — the
    /// escape hatch behind [`ShardedEngine::checkpoint`], which needs the
    /// full state ([`Checkpointable`]) rather than a query summary. The
    /// closure form keeps the worker loop compilable for sampler families
    /// that are not checkpointable.
    Inspect(Box<dyn FnOnce(&mut S) + Send>),
}

struct Shard<S: DistinctSampler> {
    tx: Sender<Cmd<S>>,
    buf: Vec<StreamItem>,
    routed: u64,
    /// Whether the worker received state-changing commands (batches,
    /// inspections) since this handle last cached its summary. Clean
    /// shards skip the snapshot round trip entirely — the engine-level
    /// dirty bit of the copy-on-write publication path.
    dirty: bool,
}

/// Deterministic point-to-shard router: the cell of a coarse random grid,
/// key-mixed and reduced mod the shard count.
struct Router {
    grid: Grid,
    mixer: CellKeyMixer,
    scratch: Vec<i64>,
}

impl Router {
    fn new(cfg: &SamplerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ROUTE_GRID_SALT);
        Self {
            grid: Grid::random(cfg.dim, ROUTE_SIDE_FACTOR * cfg.side(), &mut rng),
            mixer: CellKeyMixer::new(cfg.seed ^ ROUTE_MIX_SALT),
            scratch: Vec::new(),
        }
    }

    fn shard_of(&mut self, p: &Point, n_shards: usize) -> usize {
        self.grid.cell_of_into(p, &mut self.scratch);
        (self.mixer.key(&self.scratch) % n_shards as u64) as usize
    }
}

/// A sharded ingestion pipeline, generic over the sampler family `S`:
/// hash-partitions stream items across `N` worker threads, each owning an
/// `S` built from the shared configuration, and answers queries by
/// merging the per-shard [`DistinctSampler::Summary`]s.
///
/// The default type parameter is the infinite-window [`RobustL0Sampler`];
/// [`ShardedEngine::try_sliding_window`] builds the same pipeline over
/// [`SlidingWindowSampler`]s, and [`ShardedEngine::try_with_factory`]
/// accepts any [`DistinctSampler`].
///
/// Reads are side-effect free: [`snapshot`](Self::snapshot) and the query
/// methods cover exactly the items already shipped to the workers and
/// never drain the per-shard batch buffers — call
/// [`flush`](Self::flush) explicitly when a read must include every
/// ingested item. Dropping the engine shuts the workers down;
/// [`finish`](Self::finish) flushes, then hands back the final merged
/// summary without cloning shard state.
#[derive(Debug)]
pub struct ShardedEngine<S: DistinctSampler = RobustL0Sampler> {
    cfg: SamplerConfig,
    router: Router,
    shards: Vec<Shard<S>>,
    handles: Vec<JoinHandle<S>>,
    batch_size: usize,
    seen: u64,
    last_stamp: Stamp,
    draws: u64,
    /// Last summary received from each shard, reused verbatim while the
    /// shard stays clean (no round trip, no copy — the per-shard
    /// summaries are `Arc`-backed).
    summary_cache: Vec<Option<S::Summary>>,
    /// The engine clock the cached summaries were advanced to; a moved
    /// clock invalidates them for time-sensitive sampler families.
    snapshot_stamp: Option<Stamp>,
    /// The reduce of the cached per-shard summaries, valid while every
    /// shard is clean — makes a quiet engine's publication `O(1)`.
    merged_cache: Option<S::Summary>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").finish_non_exhaustive()
    }
}

impl<S: DistinctSampler> std::fmt::Debug for Shard<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("buffered", &self.buf.len())
            .field("routed", &self.routed)
            .finish_non_exhaustive()
    }
}

impl<S> ShardedEngine<S>
where
    S: DistinctSampler + Send + 'static,
    S::Summary: Send + 'static,
{
    /// Spawns `n_shards` workers whose samplers come from `make` (called
    /// once per shard, in shard order). Every sampler **must** be built
    /// from the same configuration as `cfg` — identical grid and hash are
    /// what make the summary merge sound; `cfg` itself only drives the
    /// router.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidShards`] if `n_shards == 0`, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_with_factory(
        cfg: &SamplerConfig,
        n_shards: usize,
        mut make: impl FnMut(usize) -> S,
    ) -> Result<Self, RdsError> {
        cfg.validate()?;
        if n_shards == 0 {
            return Err(RdsError::InvalidShards);
        }
        let router = Router::new(cfg);
        let mut shards = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let (tx, rx) = mpsc::channel::<Cmd<S>>();
            let mut sampler = make(i);
            let handle = std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Batch(batch) => {
                            sampler.process_batch(&batch);
                        }
                        Cmd::Snapshot(reply, now) => {
                            sampler.advance(now);
                            // receiver may have given up; ignore
                            let _ = reply.send(sampler.summary_cow());
                        }
                        Cmd::Inspect(f) => f(&mut sampler),
                    }
                }
                sampler
            });
            shards.push(Shard {
                tx,
                buf: Vec::with_capacity(DEFAULT_BATCH_SIZE),
                routed: 0,
                dirty: true,
            });
            handles.push(handle);
        }
        let summary_cache = (0..n_shards).map(|_| None).collect();
        Ok(Self {
            cfg: cfg.clone(),
            router,
            shards,
            handles,
            batch_size: DEFAULT_BATCH_SIZE,
            seen: 0,
            last_stamp: Stamp::at(0),
            draws: 0,
            summary_cache,
            snapshot_stamp: None,
            merged_cache: None,
        })
    }

    /// Sets the number of items buffered per shard before a batch is
    /// shipped to the worker.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Routes one point to its shard, stamping it with the engine's
    /// arrival counter (sequence number == timestamp). Use
    /// [`Self::ingest_item`] to supply explicit stamps (time-based
    /// windows).
    pub fn ingest(&mut self, p: Point) {
        let stamp = Stamp::at(self.seen);
        self.ingest_item(StreamItem::new(p, stamp));
    }

    /// Routes one stamped item to its shard, shipping that shard's buffer
    /// when it reaches the batch size. Stamps must be non-decreasing;
    /// they carry the *global* clock, so each shard's window expiry
    /// agrees with the unsharded sampler's.
    pub fn ingest_item(&mut self, item: StreamItem) {
        self.seen += 1;
        // max, not assign: an `advance` past the stream's own stamps must
        // not be rewound by a later item (stamps are non-decreasing, so
        // for plain streams this is the same assignment as before).
        self.last_stamp = self.last_stamp.max(item.stamp);
        let s = self.router.shard_of(&item.point, self.shards.len());
        let shard = &mut self.shards[s];
        shard.routed += 1;
        shard.buf.push(item);
        if shard.buf.len() >= self.batch_size {
            let batch = std::mem::replace(&mut shard.buf, Vec::with_capacity(self.batch_size));
            shard.dirty = true;
            shard
                .tx
                .send(Cmd::Batch(batch))
                // lint:allow(L1) a send fails only when the worker hung
                // up, which means it already panicked; propagating that
                // panic here is the only sound response
                .expect("shard worker terminated");
        }
    }

    /// Ingests every point of an iterator, one [`Self::ingest`] call per
    /// point (stamped with the engine's arrival counter). The iterator
    /// yields plain [`Point`]s — if your input is already chunked (e.g.
    /// from [`rds_stream::batched`]), flatten it first; the engine does
    /// its own per-shard batching regardless, so pre-chunking buys
    /// nothing.
    pub fn ingest_batch<I>(&mut self, points: I)
    where
        I: IntoIterator<Item = Point>,
    {
        for p in points {
            self.ingest(p);
        }
    }

    /// Ships every partially filled shard buffer to its worker.
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            if !shard.buf.is_empty() {
                let batch =
                    std::mem::replace(&mut shard.buf, Vec::with_capacity(self.batch_size));
                shard.dirty = true;
                shard
                    .tx
                    .send(Cmd::Batch(batch))
                    // lint:allow(L1) a send fails only when the worker
                    // hung up, which means it already panicked
                    .expect("shard worker terminated");
            }
        }
    }

    /// Snapshots every shard's summary **without flushing**: the result
    /// covers exactly the items the workers have received (shipped
    /// batches), not the ones still sitting in this handle's per-shard
    /// batch buffers. The workers keep running and can ingest more
    /// afterwards — snapshotting is non-draining. Window samplers are
    /// advanced to the engine's latest stamp first, so quiet shards
    /// expire correctly.
    ///
    /// Call [`Self::flush`] first when the snapshot must cover every
    /// ingested item.
    ///
    /// Copy-on-write: a shard that received nothing since its last
    /// summary (and, for time-sensitive families, whose clock did not
    /// move) is served from this handle's cache without a worker round
    /// trip; dirty shards reply with `Arc`-sharing summaries rebuilt only
    /// for their changed levels — snapshot cost is proportional to what
    /// changed, not to total state size.
    pub fn shard_summaries(&mut self) -> Vec<S::Summary>
    where
        S::Summary: Clone,
    {
        let now = self.last_stamp;
        let clock_moved = S::TIME_SENSITIVE && self.snapshot_stamp != Some(now);
        let mut pending = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            if !shard.dirty && !clock_moved && self.summary_cache[i].is_some() {
                pending.push(None);
                continue;
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            shard
                .tx
                .send(Cmd::Snapshot(reply_tx, now))
                // lint:allow(L1) a send fails only when the worker hung
                // up, which means it already panicked
                .expect("shard worker terminated");
            pending.push(Some(reply_rx));
        }
        self.snapshot_stamp = Some(now);
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, rx) in pending.into_iter().enumerate() {
            let summary = match rx {
                Some(rx) => {
                    // lint:allow(L1) recv fails only when the worker
                    // dropped the reply sender mid-request, i.e. it
                    // panicked
                    let s = rx.recv().expect("shard worker terminated");
                    self.summary_cache[i] = Some(s.clone());
                    self.shards[i].dirty = false;
                    self.merged_cache = None;
                    s
                }
                None => match &self.summary_cache[i] {
                    Some(cached) => cached.clone(),
                    // lint:allow(L1) unreachable: a shard is only skipped
                    // when its cache slot is occupied (checked above)
                    None => unreachable!("skipped shard has a cached summary"),
                },
            };
            out.push(summary);
        }
        out
    }

    /// Merges the current shard states into one summary — the
    /// non-draining publication path ([`Self::shard_summaries`] reduced
    /// with the summary merge). Unlike [`Self::finish`], the engine keeps
    /// running; unlike the pre-split API, nothing is flushed implicitly:
    /// items still buffered in this handle are *not* covered until
    /// [`Self::flush`] ships them.
    pub fn snapshot(&mut self) -> S::Summary
    where
        S::Summary: Clone,
    {
        let summaries = self.shard_summaries();
        if let Some(cached) = &self.merged_cache {
            // Every shard was served from cache, so the previous reduce
            // is still exact — a quiet engine publishes in O(1).
            return cached.clone();
        }
        let merged = Self::reduce(summaries);
        self.merged_cache = Some(merged.clone());
        merged
    }

    /// The merged robust F0 estimate over the union of the shards (over
    /// flushed items only; see [`Self::snapshot`]).
    pub fn f0_estimate(&mut self) -> f64
    where
        S::Summary: Clone,
    {
        self.snapshot().f0_estimate()
    }

    /// Draws one robust ℓ0-sample over the flushed stream: the owned
    /// record of a uniformly random sampled entity. `None` iff nothing
    /// reached the workers (or, for window backends, nothing is live).
    pub fn query(&mut self) -> Option<GroupRecord>
    where
        S::Summary: Clone,
    {
        self.draws += 1;
        self.snapshot().query_record(self.draws)
    }

    /// Draws up to `k` distinct sampled entities, owned (over flushed
    /// items only; see [`Self::snapshot`]).
    pub fn query_k(&mut self, k: usize) -> Vec<GroupRecord>
    where
        S::Summary: Clone,
    {
        self.draws += 1;
        self.snapshot().query_k(k, self.draws)
    }

    /// Advances the engine clock to `now` without feeding an item: the
    /// next snapshot expires window entries older than `now` on every
    /// shard (a no-op for infinite-window samplers). Stamps must be
    /// non-decreasing; an older `now` is ignored.
    pub fn advance(&mut self, now: Stamp) {
        self.last_stamp = self.last_stamp.max(now);
    }

    /// Shuts the workers down and merges their final states, moving (not
    /// cloning) every shard's state into the summary. `finish` covers
    /// every ingested item: it flushes the batch buffers before joining
    /// the workers ([`Self::snapshot`], by contrast, is the non-draining
    /// mid-stream publication path).
    pub fn finish(mut self) -> S::Summary {
        self.flush();
        let now = self.last_stamp;
        // Dropping the senders ends each worker's receive loop.
        let handles = std::mem::take(&mut self.handles);
        self.shards.clear();
        let summaries: Vec<S::Summary> = handles
            .into_iter()
            .map(|h| {
                // lint:allow(L1) join returns Err only when the worker
                // panicked; re-raising that panic on the caller is the
                // documented contract of finish
                let mut sampler = h.join().expect("shard worker panicked");
                sampler.advance(now);
                sampler.into_summary()
            })
            .collect();
        Self::reduce(summaries)
    }

    fn reduce(summaries: Vec<S::Summary>) -> S::Summary {
        S::Summary::merge_many(summaries)
            // lint:allow(L1) every shard sampler is built from the one
            // validated engine config, so the merge cannot mismatch
            .expect("shards share one configuration by construction")
            // lint:allow(L1) try_new rejects zero shards, so the summary
            // vec is never empty
            .expect("engine has at least one shard")
    }

    /// Number of items ingested so far (including still-buffered ones).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.handles.len()
    }

    /// The batch size in force.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// How many items were routed to each shard — diagnostic view of the
    /// partition balance.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.routed).collect()
    }

    /// The shared configuration the shards (and the router) were built
    /// from.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }
}

impl<S> ShardedEngine<S>
where
    S: DistinctSampler + Checkpointable + Send + 'static,
    S::Summary: Send + 'static,
{
    /// Captures the engine's complete state as an [`EngineCheckpoint`]:
    /// the shared configuration, the engine clock and batching
    /// parameters, and every shard's full sampler state
    /// ([`Checkpointable::checkpoint_state`]).
    ///
    /// The engine is quiesced first — partially filled batch buffers are
    /// flushed, and the per-shard state capture is queued behind every
    /// batch already in flight (the worker channels are FIFO) — so the
    /// checkpoint covers every item ever passed to
    /// [`Self::ingest`]/[`Self::ingest_item`]. The workers keep running;
    /// checkpointing is non-destructive.
    pub fn checkpoint(&mut self) -> EngineCheckpoint<S::State> {
        self.flush();
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            // The closure gets `&mut` access to the sampler; assume it
            // mutated (checkpoint capture does not, but correctness over
            // cleverness for the escape hatch).
            shard.dirty = true;
            let (reply_tx, reply_rx) = mpsc::channel();
            shard
                .tx
                .send(Cmd::Inspect(Box::new(move |sampler: &mut S| {
                    // receiver may have given up; ignore
                    let _ = reply_tx.send(sampler.checkpoint_state());
                })))
                // lint:allow(L1) a send fails only when the worker hung
                // up, which means it already panicked
                .expect("shard worker terminated");
            pending.push(reply_rx);
        }
        let states = pending
            .into_iter()
            // lint:allow(L1) recv fails only when the worker dropped the
            // reply sender mid-request, i.e. it panicked
            .map(|rx| rx.recv().expect("shard worker terminated"))
            .collect();
        EngineCheckpoint {
            cfg: self.cfg.clone(),
            batch_size: self.batch_size,
            seen: self.seen,
            last_stamp: self.last_stamp,
            draws: self.draws,
            states,
            routed: self.shard_loads(),
        }
    }

    /// Total in-memory footprint across every shard's sampler, in
    /// machine words — [`DistinctSampler::words`] lifted over the
    /// sharded engine, the metering hook global space budgets charge.
    /// Batch buffers are flushed first and the per-shard reads queue
    /// FIFO behind every in-flight batch, so the figure covers every
    /// ingested item.
    pub fn words(&mut self) -> usize {
        self.flush();
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            // The closure gets `&mut` access to the sampler; assume it
            // mutated (a words() read does not, but correctness over
            // cleverness for the escape hatch).
            shard.dirty = true;
            let (reply_tx, reply_rx) = mpsc::channel();
            shard
                .tx
                .send(Cmd::Inspect(Box::new(move |sampler: &mut S| {
                    // receiver may have given up; ignore
                    let _ = reply_tx.send(sampler.words());
                })))
                // lint:allow(L1) a send fails only when the worker hung
                // up, which means it already panicked
                .expect("shard worker terminated");
            pending.push(reply_rx);
        }
        pending
            .into_iter()
            // lint:allow(L1) recv fails only when the worker dropped the
            // reply sender mid-request, i.e. it panicked
            .map(|rx| rx.recv().expect("shard worker terminated"))
            .sum()
    }

    /// Rebuilds an engine from a checkpoint: restores every shard's
    /// sampler from its captured state, re-derives the router from the
    /// embedded configuration, and resumes the engine clock — continued
    /// ingestion and queries are bit-identical to an engine that never
    /// stopped.
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] when the checkpoint is internally
    /// inconsistent (no shards, zero batch size, shard state that does
    /// not match the shared configuration), or any restore error of the
    /// per-shard [`Checkpointable::try_from_state`].
    pub fn try_restore(chk: EngineCheckpoint<S::State>) -> Result<Self, RdsError> {
        let n_shards = chk.states.len();
        if n_shards == 0 {
            return Err(RdsError::checkpoint(
                "engine checkpoint holds no shard states",
            ));
        }
        if chk.batch_size == 0 {
            return Err(RdsError::checkpoint(
                "engine checkpoint has a zero batch size",
            ));
        }
        if chk.routed.len() != n_shards {
            return Err(RdsError::checkpoint(format!(
                "engine checkpoint routing counters cover {} shards, states {}",
                chk.routed.len(),
                n_shards
            )));
        }
        // Shards whose state embeds a configuration must match the shared
        // one: feeding a point of the router's dimension to a sampler
        // built for another dimension would panic inside a worker thread,
        // which violates the "untrusted checkpoints never panic" contract.
        for (i, st) in chk.states.iter().enumerate() {
            if let Some(state_cfg) = S::state_config(st) {
                if *state_cfg != chk.cfg {
                    return Err(RdsError::checkpoint(format!(
                        "shard {i} state embeds a configuration differing from \
                         the engine checkpoint's shared configuration"
                    )));
                }
            }
        }
        // Window families: every shard must expire under the same
        // horizon, or the merged summary would silently mix entries that
        // are live under one window and expired under another.
        let mut windows = chk.states.iter().filter_map(S::state_window);
        if let Some(w0) = windows.next() {
            if windows.any(|w| w != w0) {
                return Err(RdsError::checkpoint(
                    "engine checkpoint shards disagree on the window model",
                ));
            }
        }
        let mut samplers = chk
            .states
            .into_iter()
            .map(S::try_from_state)
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(Some)
            .collect::<Vec<_>>();
        let mut engine = Self::try_with_factory(&chk.cfg, n_shards, |i| {
            // lint:allow(L1) the vec holds exactly n_shards restored
            // samplers and the factory visits each index once
            samplers[i].take().expect("one restored sampler per shard")
        })?;
        engine.batch_size = chk.batch_size;
        engine.seen = chk.seen;
        engine.last_stamp = chk.last_stamp;
        engine.draws = chk.draws;
        for (shard, routed) in engine.shards.iter_mut().zip(chk.routed) {
            shard.routed = routed;
        }
        Ok(engine)
    }
}

/// The serializable full state of a [`ShardedEngine`]: the shared
/// configuration (the router is re-derived from it), the engine clock and
/// batching parameters, and one sampler state per shard, in shard order.
///
/// Produced by [`ShardedEngine::checkpoint`], consumed by
/// [`ShardedEngine::try_restore`]. The facade embeds it in its durable
/// checkpoint container; it also serializes standalone for callers using
/// the engine directly.
#[derive(Clone, Debug)]
pub struct EngineCheckpoint<St> {
    cfg: SamplerConfig,
    batch_size: usize,
    seen: u64,
    last_stamp: Stamp,
    draws: u64,
    states: Vec<St>,
    routed: Vec<u64>,
}

impl<St> EngineCheckpoint<St> {
    /// The shared configuration the checkpointed engine was built from.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The number of worker shards the checkpoint covers.
    pub fn n_shards(&self) -> usize {
        self.states.len()
    }

    /// Number of items the checkpointed engine had ingested.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The per-shard sampler states, in shard order — callers embedding
    /// the checkpoint (the facade container) cross-validate these against
    /// their own config echo before restoring.
    pub fn states(&self) -> &[St] {
        &self.states
    }
}

// Manual impls: the vendored derive does not handle generic structs.
impl<St: Serialize> Serialize for EngineCheckpoint<St> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("batch_size".to_string(), self.batch_size.to_value()),
            ("seen".to_string(), self.seen.to_value()),
            ("last_stamp".to_string(), self.last_stamp.to_value()),
            ("draws".to_string(), self.draws.to_value()),
            ("states".to_string(), self.states.to_value()),
            ("routed".to_string(), self.routed.to_value()),
        ])
    }
}

impl<St: Deserialize> Deserialize for EngineCheckpoint<St> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        fn get<T: Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::DeError> {
            T::from_value(value.get(name).unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::custom(format!("field `{name}`: {e}")))
        }
        Ok(Self {
            cfg: get(value, "cfg")?,
            batch_size: get(value, "batch_size")?,
            seen: get(value, "seen")?,
            last_stamp: get(value, "last_stamp")?,
            draws: get(value, "draws")?,
            states: get(value, "states")?,
            routed: get(value, "routed")?,
        })
    }
}

impl ShardedEngine<RobustL0Sampler> {
    /// Spawns `n_shards` worker threads, each with a fresh
    /// infinite-window site sampler of the shared configuration
    /// (Algorithm 1's default threshold).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidShards`] or any [`SamplerConfig::validate`]
    /// failure.
    pub fn try_new(cfg: SamplerConfig, n_shards: usize) -> Result<Self, RdsError> {
        let threshold = cfg.threshold();
        Self::try_with_threshold(cfg, n_shards, threshold)
    }

    /// Like [`Self::try_new`] with an explicit accept-set threshold per
    /// shard (Section 5's F0 regime uses `kappa_B / eps^2`).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidShards`], [`RdsError::InvalidThreshold`], or
    /// any [`SamplerConfig::validate`] failure.
    pub fn try_with_threshold(
        cfg: SamplerConfig,
        n_shards: usize,
        threshold: usize,
    ) -> Result<Self, RdsError> {
        if threshold == 0 {
            return Err(RdsError::InvalidThreshold);
        }
        Self::try_with_factory(&cfg, n_shards, |_| {
            RobustL0Sampler::try_with_threshold(cfg.clone(), threshold)
                // lint:allow(L1) threshold was just checked nonzero and
                // the config came from the validating builder
                .expect("configuration validated above")
        })
    }
}

impl ShardedEngine<SlidingWindowSampler> {
    /// Spawns `n_shards` workers, each with a fresh [`SlidingWindowSampler`]
    /// over `window` sharing the configuration. Items must be ingested
    /// through [`Self::ingest_item`] with their global stamps (or
    /// [`Self::ingest`], which stamps by arrival index).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidShards`], [`RdsError::UnboundedWindow`],
    /// [`RdsError::EmptyWindow`], or any [`SamplerConfig::validate`]
    /// failure.
    pub fn try_sliding_window(
        cfg: SamplerConfig,
        window: Window,
        n_shards: usize,
    ) -> Result<Self, RdsError> {
        let threshold = cfg.threshold();
        Self::try_sliding_window_with_threshold(cfg, window, n_shards, threshold)
    }

    /// Like [`Self::try_sliding_window`] with an explicit per-level
    /// accept-set threshold (the Section 5 F0 regime uses
    /// `kappa_B / eps^2`).
    ///
    /// # Errors
    ///
    /// As [`Self::try_sliding_window`], plus
    /// [`RdsError::InvalidThreshold`] on a zero threshold.
    pub fn try_sliding_window_with_threshold(
        cfg: SamplerConfig,
        window: Window,
        n_shards: usize,
        threshold: usize,
    ) -> Result<Self, RdsError> {
        // Validate window + threshold once up front so the factory cannot
        // panic (try_with_factory validates the config itself).
        window.len().ok_or(RdsError::UnboundedWindow).and_then(|w| {
            if w == 0 {
                Err(RdsError::EmptyWindow)
            } else if threshold == 0 {
                Err(RdsError::InvalidThreshold)
            } else {
                Ok(())
            }
        })?;
        Self::try_with_factory(&cfg, n_shards, |_| {
            SlidingWindowSampler::try_with_threshold(cfg.clone(), window, threshold)
                // lint:allow(L1) window and threshold were validated by
                // the probe construction just above
                .expect("window, threshold and configuration validated above")
        })
    }
}

impl<S: DistinctSampler> Drop for ShardedEngine<S> {
    fn drop(&mut self) {
        // Close the channels so the workers exit their loops, then wait
        // for them; buffered items are discarded (call `finish` to keep
        // them).
        self.shards.clear();
        for h in std::mem::take(&mut self.handles) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![
            (i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 5) as f64,
        ])
    }

    fn cfg(seed: u64) -> SamplerConfig {
        SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(2048).build().unwrap()
    }

    #[test]
    fn counts_groups_exactly_when_nothing_subsamples() {
        let mut engine = ShardedEngine::try_new(cfg(1), 4).unwrap().with_batch_size(32);
        for i in 0..512u64 {
            engine.ingest(grouped_point(i, 16));
        }
        assert_eq!(engine.seen(), 512);
        engine.flush();
        assert_eq!(engine.f0_estimate(), 16.0);
    }

    #[test]
    fn snapshot_is_non_draining_and_flush_is_explicit() {
        // The satellite contract: reads cover only flushed items and do
        // not silently ship the batch buffers.
        let mut engine = ShardedEngine::try_new(cfg(30), 2).unwrap().with_batch_size(1024);
        for i in 0..100u64 {
            engine.ingest(grouped_point(i, 10));
        }
        // nothing shipped yet: the snapshot covers the empty prefix
        assert_eq!(engine.f0_estimate(), 0.0);
        assert!(engine.query().is_none());
        // an explicit flush makes every ingested item visible
        engine.flush();
        assert_eq!(engine.f0_estimate(), 10.0);
        // snapshotting did not drain the workers: a second read agrees
        assert_eq!(engine.snapshot().f0_estimate(), 10.0);
    }

    #[test]
    fn matches_single_stream_estimator_on_the_same_seeded_stream() {
        // The acceptance contract: sharded merged F0 == single-stream F0
        // within the configured tolerance, on one seeded stream.
        let n_groups = 300u64;
        let eps = 0.5f64;
        let threshold = (16.0 / (eps * eps)).ceil() as usize;
        let base = SamplerConfig { expected_len: 6000, ..cfg(2) };
        let mut single = RobustL0Sampler::try_with_threshold(base.clone(), threshold).unwrap();
        let mut engine = ShardedEngine::try_with_threshold(base, 8, threshold).unwrap();
        for i in 0..6000u64 {
            let p = grouped_point(i, n_groups);
            single.process(&p);
            engine.ingest(p);
        }
        let merged = engine.finish();
        let sharded_f0 = merged.f0_estimate();
        let single_f0 = single.f0_estimate();
        assert!(
            (sharded_f0 - single_f0).abs() <= eps * single_f0,
            "sharded {sharded_f0} vs single {single_f0} beyond eps {eps}"
        );
        assert!(
            (sharded_f0 - n_groups as f64).abs() <= eps * n_groups as f64,
            "sharded {sharded_f0} vs truth {n_groups} beyond eps {eps}"
        );
    }

    #[test]
    fn sharded_ingestion_is_deterministic() {
        let run = || {
            let mut engine = ShardedEngine::try_new(cfg(3), 3).unwrap().with_batch_size(7);
            for i in 0..600u64 {
                engine.ingest(grouped_point(i, 50));
            }
            (engine.shard_loads(), engine.finish().f0_estimate())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mid_stream_queries_do_not_disturb_ingestion() {
        let mut engine = ShardedEngine::try_new(cfg(4), 2).unwrap().with_batch_size(16);
        for i in 0..128u64 {
            engine.ingest(grouped_point(i, 8));
        }
        engine.flush();
        let early = engine.f0_estimate();
        assert_eq!(early, 8.0);
        for i in 128..1024u64 {
            engine.ingest(grouped_point(i, 32));
        }
        engine.flush();
        assert_eq!(engine.f0_estimate(), 32.0);
        assert_eq!(engine.seen(), 1024);
    }

    #[test]
    fn query_returns_an_ingested_entity() {
        let mut engine = ShardedEngine::try_new(cfg(5), 4).unwrap();
        assert!(engine.query().is_none());
        for i in 0..64u64 {
            engine.ingest(grouped_point(i, 4));
        }
        engine.flush();
        let q = engine.query().expect("non-empty");
        let entity = (q.rep.get(0) / 10.0).round();
        assert!((0.0..4.0).contains(&entity), "sample {q:?} not an entity");
    }

    #[test]
    fn query_k_returns_distinct_entities() {
        let mut engine = ShardedEngine::try_new(cfg(6), 4).unwrap();
        for i in 0..256u64 {
            engine.ingest(grouped_point(i, 16));
        }
        engine.flush();
        let picks = engine.query_k(5);
        assert_eq!(picks.len(), 5);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].rep.within(&picks[j].rep, 0.5), "duplicate entities");
            }
        }
    }

    #[test]
    fn one_shard_degenerates_to_a_single_site() {
        // With one shard the engine is a plain sampler behind a channel.
        let mut single = RobustL0Sampler::try_new(cfg(7)).unwrap();
        let mut engine = ShardedEngine::try_new(cfg(7), 1).unwrap().with_batch_size(10);
        for i in 0..300u64 {
            let p = grouped_point(i, 24);
            single.process(&p);
            engine.ingest(p);
        }
        let merged = engine.finish();
        assert_eq!(merged.f0_estimate(), single.f0_estimate());
        assert_eq!(merged.accept_set().len(), single.accept_set().len());
    }

    #[test]
    fn routing_is_entity_affine() {
        // Near-duplicates of one entity overwhelmingly route to one shard:
        // the load of the busiest shard per entity must be most of it.
        let mut engine = ShardedEngine::try_new(cfg(8), 4).unwrap();
        let mut split_entities = 0u32;
        let n_entities = 64u64;
        for e in 0..n_entities {
            let mut shards_hit = std::collections::BTreeSet::new();
            for j in 0..8u64 {
                let p = Point::new(vec![e as f64 * 10.0 + 0.01 * (j % 5) as f64]);
                shards_hit.insert(engine.router.shard_of(&p, 4));
            }
            if shards_hit.len() > 1 {
                split_entities += 1;
            }
        }
        // side = 4*alpha = 2, jitter 0.04 << 2: splits are rare
        assert!(
            split_entities <= n_entities as u32 / 4,
            "{split_entities}/{n_entities} entities split across shards"
        );
    }

    #[test]
    fn uniformity_over_the_union_of_shards() {
        let n_groups = 16usize;
        let mut hist = rds_metrics::SampleHistogram::new(n_groups);
        for run in 0..300u64 {
            let mut engine =
                ShardedEngine::try_new(cfg(run * 131 + 11), 4).unwrap().with_batch_size(32);
            for i in 0..256u64 {
                engine.ingest(grouped_point(i, n_groups as u64));
            }
            let q = engine.query().expect("non-empty");
            hist.record((q.rep.get(0) / 10.0).round() as usize);
        }
        assert!(
            hist.std_dev_nm() < 0.5,
            "sharded sampling biased: {:?}",
            hist.counts()
        );
    }

    #[test]
    fn sliding_window_shards_end_to_end() {
        // The acceptance test of the generic redesign: a sliding-window
        // sampler sharded 4 ways tracks the live window, expires old
        // groups, and agrees with the unsharded sampler when nothing
        // subsamples.
        let w = 64u64;
        let mut engine = ShardedEngine::try_sliding_window(cfg(21), Window::Sequence(w), 4).unwrap()
            .with_batch_size(16);
        // Phase 1: 16 groups cycling; all 16 live at any time after warmup.
        for i in 0..512u64 {
            engine.ingest(grouped_point(i, 16));
        }
        engine.flush();
        assert_eq!(engine.f0_estimate(), 16.0, "all 16 groups live in the window");
        // Phase 2: only group 0 streams; after w items everything else
        // expired — including on shards that received none of the new
        // items (the advance-before-snapshot path).
        for i in 512..512 + 2 * w {
            engine.ingest(Point::new(vec![0.01 * (i % 3) as f64]));
        }
        engine.flush();
        assert_eq!(engine.f0_estimate(), 1.0, "only group 0 is live");
        let q = engine.query().expect("window non-empty");
        assert!(
            q.rep.within(&Point::new(vec![0.0]), 0.5),
            "sample must come from the only live group"
        );
        let final_summary = engine.finish();
        assert_eq!(final_summary.f0_estimate(), 1.0);
    }

    #[test]
    fn sharded_window_matches_unsharded_on_live_group_count() {
        let w = 128u64;
        let mut single = SlidingWindowSampler::try_new(cfg(22), Window::Sequence(w)).unwrap();
        let mut engine =
            ShardedEngine::try_sliding_window(cfg(22), Window::Sequence(w), 4).unwrap().with_batch_size(8);
        for i in 0..1024u64 {
            let p = grouped_point(i, 32);
            single.process(&StreamItem::new(p.clone(), Stamp::at(i)));
            engine.ingest_item(StreamItem::new(p, Stamp::at(i)));
        }
        // generous threshold: neither side subsamples, both count exactly
        assert_eq!(single.f0_estimate(), 32.0);
        engine.flush();
        assert_eq!(engine.f0_estimate(), 32.0);
    }

    #[test]
    fn sharded_time_window_expires_by_timestamp() {
        let mut engine =
            ShardedEngine::try_sliding_window(cfg(23), Window::Time(10), 3).unwrap().with_batch_size(4);
        // burst of 6 groups at time 0
        for g in 0..6u64 {
            engine.ingest_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        engine.flush();
        assert_eq!(engine.f0_estimate(), 6.0);
        // one group at time 20: the burst is out of the window
        engine.ingest_item(StreamItem::new(Point::new(vec![990.0]), Stamp::new(6, 20)));
        engine.flush();
        assert_eq!(engine.f0_estimate(), 1.0);
        let q = engine.query().expect("non-empty");
        assert_eq!(q.rep, Point::new(vec![990.0]));
    }

    #[test]
    fn try_constructors_surface_typed_errors() {
        assert!(matches!(
            ShardedEngine::try_new(cfg(9), 0),
            Err(RdsError::InvalidShards)
        ));
        assert!(matches!(
            ShardedEngine::try_with_threshold(cfg(9), 2, 0),
            Err(RdsError::InvalidThreshold)
        ));
        assert!(matches!(
            ShardedEngine::try_sliding_window(cfg(9), Window::Infinite, 2),
            Err(RdsError::UnboundedWindow)
        ));
        let bad = SamplerConfig { alpha: f64::NAN, ..cfg(9) };
        assert!(matches!(
            ShardedEngine::try_new(bad, 2),
            Err(RdsError::InvalidAlpha { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_size_rejected() {
        let _ = ShardedEngine::try_new(cfg(10), 1).unwrap().with_batch_size(0);
    }

    #[test]
    fn checkpoint_restore_continues_bit_identically() {
        // The engine-level crash-recovery contract: checkpoint → drop →
        // restore → continue must equal an uninterrupted run exactly.
        let mut uninterrupted = ShardedEngine::try_new(cfg(40), 3).unwrap().with_batch_size(16);
        let mut first_half = ShardedEngine::try_new(cfg(40), 3).unwrap().with_batch_size(16);
        for i in 0..300u64 {
            let p = grouped_point(i, 25);
            uninterrupted.ingest(p.clone());
            first_half.ingest(p);
        }
        let chk = first_half.checkpoint();
        assert_eq!(chk.seen(), 300);
        assert_eq!(chk.n_shards(), 3);
        drop(first_half); // the "crash"
        let mut restored =
            ShardedEngine::<RobustL0Sampler>::try_restore(chk).expect("restores");
        assert_eq!(restored.seen(), 300);
        for i in 300..600u64 {
            let p = grouped_point(i, 25);
            uninterrupted.ingest(p.clone());
            restored.ingest(p);
        }
        assert_eq!(restored.shard_loads(), uninterrupted.shard_loads());
        let a = uninterrupted.finish();
        let b = restored.finish();
        assert_eq!(a.f0_estimate(), b.f0_estimate());
        assert_eq!(a.accept_set().len(), b.accept_set().len());
        for (x, y) in a.accept_set().iter().zip(b.accept_set()) {
            assert_eq!(x.rep, y.rep);
            assert_eq!(x.count, y.count);
            assert_eq!(x.reservoir, y.reservoir, "reservoir RNG position must survive");
        }
    }

    #[test]
    fn windowed_checkpoint_survives_json_and_keeps_expiring() {
        let w = 64u64;
        let mut uninterrupted =
            ShardedEngine::try_sliding_window(cfg(41), Window::Sequence(w), 2).unwrap()
                .with_batch_size(8);
        let mut first_half =
            ShardedEngine::try_sliding_window(cfg(41), Window::Sequence(w), 2).unwrap()
                .with_batch_size(8);
        for i in 0..256u64 {
            let p = grouped_point(i, 16);
            uninterrupted.ingest_item(StreamItem::new(p.clone(), Stamp::at(i)));
            first_half.ingest_item(StreamItem::new(p, Stamp::at(i)));
        }
        // full wire round trip, as the facade's container does
        let wire = serde_json::to_string(&first_half.checkpoint()).expect("serializes");
        drop(first_half);
        let chk: EngineCheckpoint<rds_core::SlidingWindowState> =
            serde_json::from_str(&wire).expect("deserializes");
        let mut restored =
            ShardedEngine::<SlidingWindowSampler>::try_restore(chk).expect("restores");
        // both continue: only group 0 streams, everything else expires
        for i in 256..256 + 2 * w {
            let p = Point::new(vec![0.01 * (i % 3) as f64]);
            uninterrupted.ingest_item(StreamItem::new(p.clone(), Stamp::at(i)));
            restored.ingest_item(StreamItem::new(p, Stamp::at(i)));
        }
        uninterrupted.flush();
        restored.flush();
        assert_eq!(restored.f0_estimate(), 1.0, "window must keep sliding after restore");
        assert_eq!(uninterrupted.f0_estimate(), restored.f0_estimate());
        assert_eq!(restored.seen(), uninterrupted.seen());
    }

    #[test]
    fn corrupt_engine_checkpoints_are_typed_errors() {
        let mut engine = ShardedEngine::try_new(cfg(42), 2).unwrap();
        for i in 0..50u64 {
            engine.ingest(grouped_point(i, 5));
        }
        let chk = engine.checkpoint();
        let mut empty = chk.clone();
        empty.states.clear();
        empty.routed.clear();
        assert!(matches!(
            ShardedEngine::<RobustL0Sampler>::try_restore(empty),
            Err(RdsError::Checkpoint { .. })
        ));
        let mut zero_batch = chk.clone();
        zero_batch.batch_size = 0;
        assert!(matches!(
            ShardedEngine::<RobustL0Sampler>::try_restore(zero_batch),
            Err(RdsError::Checkpoint { .. })
        ));
        let mut lopsided = chk;
        lopsided.routed.pop();
        assert!(matches!(
            ShardedEngine::<RobustL0Sampler>::try_restore(lopsided),
            Err(RdsError::Checkpoint { .. })
        ));
    }

    #[test]
    fn restore_rejects_shards_with_disagreeing_windows() {
        // Regression: Window is not part of SamplerConfig, so shards
        // whose states expire under different horizons used to restore
        // Ok and merge live and expired entries into one wrong estimate.
        let mut engine =
            ShardedEngine::try_sliding_window(cfg(44), Window::Sequence(64), 2).unwrap();
        for i in 0..50u64 {
            engine.ingest(grouped_point(i, 5));
        }
        let mut chk = engine.checkpoint();
        let mut foreign =
            SlidingWindowSampler::try_new(cfg(44), Window::Sequence(6400)).unwrap();
        foreign.process(&StreamItem::new(Point::new(vec![1.0]), Stamp::at(0)));
        chk.states[0] = rds_core::Checkpointable::checkpoint_state(&foreign);
        match ShardedEngine::<SlidingWindowSampler>::try_restore(chk) {
            Err(RdsError::Checkpoint { reason }) => {
                assert!(reason.contains("window"), "reason: {reason}")
            }
            other => panic!("expected a typed checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_shard_states_of_a_foreign_configuration() {
        // Regression: a crafted checkpoint whose shared configuration
        // says dim 1 but whose shard state embeds dim 2 used to restore
        // Ok and panic inside a worker on the first ingested point.
        let mut engine = ShardedEngine::try_new(cfg(43), 2).unwrap();
        for i in 0..50u64 {
            engine.ingest(grouped_point(i, 5));
        }
        let mut chk = engine.checkpoint();
        let foreign_cfg = SamplerConfig::builder(2, 0.5)
            .seed(43)
            .expected_len(2048)
            .build()
            .unwrap();
        let mut foreign = RobustL0Sampler::try_new(foreign_cfg).unwrap();
        foreign.process(&Point::new(vec![1.0, 2.0]));
        chk.states[0] = rds_core::Checkpointable::checkpoint_state(&foreign);
        match ShardedEngine::<RobustL0Sampler>::try_restore(chk) {
            Err(RdsError::Checkpoint { reason }) => {
                assert!(reason.contains("shard 0"), "reason: {reason}")
            }
            other => panic!("expected a typed checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn advance_expires_quiet_windows_without_items() {
        let mut engine = ShardedEngine::try_sliding_window(cfg(31), Window::Time(10), 2)
            .unwrap()
            .with_batch_size(4);
        for g in 0..5u64 {
            engine.ingest_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        engine.flush();
        assert_eq!(engine.f0_estimate(), 5.0);
        // No new items — only the clock moves. Every shard must expire.
        engine.advance(Stamp::new(5, 100));
        assert_eq!(engine.f0_estimate(), 0.0);
        // advance is monotone: an older stamp cannot resurrect anything
        engine.advance(Stamp::new(0, 0));
        assert_eq!(engine.f0_estimate(), 0.0);
    }
}
