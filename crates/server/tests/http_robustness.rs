//! Request-robustness regression suite over a real loopback socket:
//! every malformed-input class the ISSUE names must come back as a
//! 4xx **envelope** (`{"error":{"code","message"}}`) — never a hung
//! connection, never a 5xx, never a dead worker thread.

use rds_server::api_types::ErrorEnvelope;
use rds_server::client;
use rds_server::{bind, BackendConfig, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};

fn start() -> (rds_server::ServerHandle, SocketAddr) {
    let mut backend = BackendConfig::new(2, 0.5);
    backend.seed = 42;
    backend.publish_every = Some(1);
    let mut cfg = ServerConfig::new(backend);
    cfg.threads = 2;
    cfg.max_body_bytes = 4096; // small cap so 413 is easy to hit
    cfg.read_timeout_ms = 2_000;
    let handle = bind(cfg).expect("bind on an ephemeral port");
    let addr = handle.addr();
    (handle, addr)
}

/// Sends raw bytes, half-closes the write side, returns (status, body).
fn raw(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(bytes).expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn code_of(body: &str) -> String {
    let parsed: ErrorEnvelope =
        serde_json::from_str(body).unwrap_or_else(|e| panic!("not an envelope: {body:?}: {e}"));
    parsed.error.code
}

#[test]
fn healthz_answers_ok() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\""), "{body}");
    handle.shutdown_and_join();
}

#[test]
fn unknown_route_is_a_404_envelope() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/nope", None).expect("request");
    assert_eq!(status, 404);
    assert_eq!(code_of(&body), "not_found");
    handle.shutdown_and_join();
}

#[test]
fn wrong_method_is_a_405_envelope() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/ingest", None).expect("request");
    assert_eq!(status, 405);
    assert_eq!(code_of(&body), "method_not_allowed");
    assert!(body.contains("POST"), "{body}");
    handle.shutdown_and_join();
}

#[test]
fn malformed_json_is_a_400_with_the_parse_error() {
    let (handle, addr) = start();
    let (status, body) =
        client::request_once(addr, "POST", "/ingest", Some("{\"points\": [[1.0,")).expect("req");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "bad_json");
    assert!(
        body.contains("malformed JSON body"),
        "parse error must be in the envelope: {body}"
    );
    handle.shutdown_and_join();
}

#[test]
fn missing_content_length_on_a_body_endpoint_is_a_400() {
    let (handle, addr) = start();
    let (status, body) = raw(addr, b"POST /ingest HTTP/1.1\r\n\r\n{\"points\": [[0.0, 0.0]]}");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "missing_body");
    handle.shutdown_and_join();
}

#[test]
fn oversized_content_length_is_a_413() {
    let (handle, addr) = start();
    let (status, body) = raw(addr, b"POST /ingest HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
    assert_eq!(status, 413);
    assert_eq!(code_of(&body), "payload_too_large");
    handle.shutdown_and_join();
}

#[test]
fn overflowing_and_garbage_content_length_are_400s() {
    let (handle, addr) = start();
    let (status, body) = raw(
        addr,
        b"POST /ingest HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_content_length");
    let (status, body) = raw(addr, b"POST /ingest HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_content_length");
    handle.shutdown_and_join();
}

#[test]
fn truncated_body_is_a_400() {
    let (handle, addr) = start();
    let (status, body) = raw(addr, b"POST /ingest HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "truncated_body");
    handle.shutdown_and_join();
}

#[test]
fn invalid_utf8_body_is_a_400() {
    let (handle, addr) = start();
    let (status, body) = raw(
        addr,
        b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xff\xfe",
    );
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_utf8");
    handle.shutdown_and_join();
}

#[test]
fn garbage_request_line_is_a_400() {
    let (handle, addr) = start();
    let (status, body) = raw(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "malformed_request");
    handle.shutdown_and_join();
}

#[test]
fn wrong_dimension_and_mismatched_times_are_400s() {
    let (handle, addr) = start();
    let (status, body) =
        client::request_once(addr, "POST", "/ingest", Some("{\"points\": [[1.0]]}")).expect("req");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_point");
    let (status, body) = client::request_once(
        addr,
        "POST",
        "/ingest",
        Some("{\"points\": [[1.0, 2.0]], \"times\": [1, 2]}"),
    )
    .expect("req");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "times_mismatch");
    handle.shutdown_and_join();
}

#[test]
fn bad_and_unknown_query_params_are_400s() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/query_k?k=abc", None).expect("req");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_param");
    let (status, body) = client::request_once(addr, "GET", "/query?frobnicate=1", None).expect("r");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "unknown_param");
    let (status, body) = client::request_once(addr, "GET", "/query_k?k=100000", None).expect("req");
    assert_eq!(status, 400, "k beyond the cap: {body}");
    handle.shutdown_and_join();
}

#[test]
fn bad_checkpoint_path_is_a_conflict_not_a_crash() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(
        addr,
        "POST",
        "/checkpoint/restore",
        Some("{\"path\": \"/nonexistent/nowhere.chk\"}"),
    )
    .expect("req");
    assert_eq!(status, 409, "{body}");
    assert_eq!(code_of(&body), "checkpoint_rejected");
    // the server is still fully alive afterwards
    let (status, _) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    handle.shutdown_and_join();
}

#[test]
fn a_malformed_request_does_not_kill_the_worker_for_the_next_client() {
    let (handle, addr) = start();
    for _ in 0..8 {
        let (status, _) = raw(addr, b"POST /ingest HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
        assert_eq!(status, 400);
    }
    let (status, _) = client::request_once(addr, "GET", "/healthz", None).expect("alive");
    assert_eq!(status, 200);
    handle.shutdown_and_join();
}

fn start_with_tenants(tag: &str) -> (rds_server::ServerHandle, SocketAddr) {
    let mut backend = BackendConfig::new(2, 0.5);
    backend.seed = 42;
    backend.publish_every = Some(1);
    let mut cfg = ServerConfig::new(backend);
    cfg.threads = 2;
    cfg.read_timeout_ms = 2_000;
    let dir = std::env::temp_dir().join(format!("rds-http-tenants-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    cfg.tenants = Some(rds_server::TenancyConfig {
        budget_words: 1 << 24,
        spill_dir: dir.to_string_lossy().into_owned(),
    });
    let handle = bind(cfg).expect("bind with tenancy");
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn healthz_omits_registry_fields_without_tenancy() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    assert!(
        !body.contains("budget_words") && !body.contains("tenants"),
        "single-tenant probe must not carry registry fields: {body}"
    );
    handle.shutdown_and_join();
}

#[test]
fn healthz_reports_the_registry_gauge_with_tenancy() {
    let (handle, addr) = start_with_tenants("healthz");
    let (status, body) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    for field in [
        "\"tenants\":0",
        "\"resident\":0",
        "\"resident_words\":0",
        "\"budget_words\":16777216",
        "\"spills\":0",
        "\"restores\":0",
    ] {
        assert!(body.contains(field), "missing {field} in {body}");
    }
    let (status, _) = client::request_once(
        addr,
        "POST",
        "/t/acme/ingest",
        Some("{\"points\": [[1.0, 2.0]]}"),
    )
    .expect("tenant ingest");
    assert_eq!(status, 200);
    let (_, body) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert!(body.contains("\"tenants\":1"), "{body}");
    assert!(body.contains("\"resident\":1"), "{body}");
    handle.shutdown_and_join();
}

#[test]
fn tenant_routes_404_when_tenancy_is_disabled() {
    let (handle, addr) = start();
    let (status, body) = client::request_once(addr, "GET", "/t/acme/f0", None).expect("req");
    assert_eq!(status, 404);
    assert_eq!(code_of(&body), "tenancy_disabled");
    handle.shutdown_and_join();
}

#[test]
fn tenant_routes_serve_ingest_and_reads_end_to_end() {
    let (handle, addr) = start_with_tenants("serve");
    let (status, body) = client::request_once(
        addr,
        "POST",
        "/t/acme/ingest",
        Some("{\"points\": [[1.0, 2.0], [5.0, 6.0]]}"),
    )
    .expect("ingest");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ingested\":2"), "{body}");
    let (status, body) = client::request_once(addr, "GET", "/t/acme/f0", None).expect("f0");
    assert_eq!(status, 200);
    assert!(body.contains("\"seen\":2"), "{body}");
    let (status, body) =
        client::request_once(addr, "GET", "/t/acme/query_k?k=2&seed=7", None).expect("query_k");
    assert_eq!(status, 200);
    assert!(body.contains("records"), "{body}");
    // a different tenant is a different (empty) stream
    let (status, body) = client::request_once(addr, "GET", "/t/other/f0", None).expect("f0");
    assert_eq!(status, 200);
    assert!(body.contains("\"seen\":0"), "{body}");
    handle.shutdown_and_join();
}

#[test]
fn tenant_request_validation_maps_to_envelopes() {
    let (handle, addr) = start_with_tenants("validate");
    // bad tenant id: router extracts it, the registry rejects it
    let (status, body) = client::request_once(addr, "GET", "/t/bad%20id/f0", None).expect("req");
    assert_eq!(status, 400, "{body}");
    assert_eq!(code_of(&body), "invalid_tenant");
    // wrong dimension inside a tenant batch
    let (status, body) = client::request_once(
        addr,
        "POST",
        "/t/acme/ingest",
        Some("{\"points\": [[1.0]]}"),
    )
    .expect("req");
    assert_eq!(status, 400);
    assert_eq!(code_of(&body), "invalid_point");
    // wrong method on a tenant route
    let (status, body) = client::request_once(addr, "GET", "/t/acme/ingest", None).expect("req");
    assert_eq!(status, 405);
    assert_eq!(code_of(&body), "method_not_allowed");
    // unknown tenant verb
    let (status, body) = client::request_once(addr, "GET", "/t/acme/nope", None).expect("req");
    assert_eq!(status, 404);
    assert_eq!(code_of(&body), "not_found");
    // the server survives all of the above
    let (status, _) = client::request_once(addr, "GET", "/healthz", None).expect("alive");
    assert_eq!(status, 200);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_over_http_drains_cleanly() {
    let (handle, addr) = start();
    let (status, body) =
        client::request_once(addr, "POST", "/ingest", Some("{\"points\": [[1.0, 2.0]]}"))
            .expect("ingest");
    assert_eq!(status, 200, "{body}");
    let (status, body) =
        client::request_once(addr, "POST", "/admin/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"), "{body}");
    // every thread exits; a hang here is the regression
    handle.join();
}
