//! Route table: exact-match paths to handler identities, one
//! parameterized family (`/t/{tenant}/...`), and typed 404/405
//! rejections.
//!
//! The exact-match table is tried first and is byte-identical to the
//! pre-tenancy router — adding the parameterized family could not
//! change how any existing path resolves. A parameterized match
//! extracts exactly one `{tenant}` segment; the segment is returned
//! verbatim (the registry, not the router, owns id validation, so a
//! bad id is a 400 with a precise message instead of a blind 404).

use crate::http::HttpError;

/// Every endpoint the server exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /ingest` — batched points into the writer.
    Ingest,
    /// `GET|POST /query` — one sampled group.
    Query,
    /// `GET|POST /query_k` — k sampled groups.
    QueryK,
    /// `GET|POST /f0` — distinct-group estimate.
    F0,
    /// `POST /advance` — move the stream clock.
    Advance,
    /// `POST /checkpoint/save` — durable container to a path.
    CheckpointSave,
    /// `POST /checkpoint/restore` — swap in a container's state.
    CheckpointRestore,
    /// `GET /healthz` — readiness probe.
    Healthz,
    /// `POST /admin/shutdown` — final publish, optional checkpoint,
    /// drain.
    Shutdown,
    /// `POST /t/{tenant}/ingest` — batched points into one tenant.
    TenantIngest(String),
    /// `GET|POST /t/{tenant}/query` — one sampled group of one tenant.
    TenantQuery(String),
    /// `GET|POST /t/{tenant}/query_k` — k sampled groups of one tenant.
    TenantQueryK(String),
    /// `GET|POST /t/{tenant}/f0` — one tenant's distinct-group
    /// estimate.
    TenantF0(String),
}

/// Resolves `method path`; unknown paths are `404 not_found`, known
/// paths with the wrong method are `405 method_not_allowed` naming the
/// methods that would work.
pub fn route(method: &str, path: &str) -> Result<Route, HttpError> {
    let (route, allowed): (Route, &[&str]) = match path {
        "/ingest" => (Route::Ingest, &["POST"]),
        "/query" => (Route::Query, &["GET", "POST"]),
        "/query_k" => (Route::QueryK, &["GET", "POST"]),
        "/f0" => (Route::F0, &["GET", "POST"]),
        "/advance" => (Route::Advance, &["POST"]),
        "/checkpoint/save" => (Route::CheckpointSave, &["POST"]),
        "/checkpoint/restore" => (Route::CheckpointRestore, &["POST"]),
        "/healthz" => (Route::Healthz, &["GET"]),
        "/admin/shutdown" => (Route::Shutdown, &["POST"]),
        _ => return route_tenant(method, path),
    };
    if allowed.contains(&method) {
        Ok(route)
    } else {
        Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("`{path}` allows {}", allowed.join(", ")),
        ))
    }
}

/// The parameterized family: `/t/{tenant}/{verb}` with exactly one
/// tenant segment (a tenant id containing `/` can never route, so the
/// namespace stays flat by construction).
fn route_tenant(method: &str, path: &str) -> Result<Route, HttpError> {
    let not_found = || HttpError::new(404, "not_found", format!("no route for `{path}`"));
    let Some(rest) = path.strip_prefix("/t/") else {
        return Err(not_found());
    };
    let Some((tenant, verb)) = rest.split_once('/') else {
        return Err(not_found());
    };
    if tenant.is_empty() || verb.is_empty() || verb.contains('/') {
        return Err(not_found());
    }
    let (mk, allowed): (fn(String) -> Route, &[&str]) = match verb {
        "ingest" => (Route::TenantIngest, &["POST"]),
        "query" => (Route::TenantQuery, &["GET", "POST"]),
        "query_k" => (Route::TenantQueryK, &["GET", "POST"]),
        "f0" => (Route::TenantF0, &["GET", "POST"]),
        _ => return Err(not_found()),
    };
    if allowed.contains(&method) {
        Ok(mk(tenant.to_owned()))
    } else {
        Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("`{path}` allows {}", allowed.join(", ")),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_endpoint() {
        assert_eq!(route("POST", "/ingest"), Ok(Route::Ingest));
        assert_eq!(route("GET", "/query"), Ok(Route::Query));
        assert_eq!(route("POST", "/query_k"), Ok(Route::QueryK));
        assert_eq!(route("GET", "/f0"), Ok(Route::F0));
        assert_eq!(route("POST", "/advance"), Ok(Route::Advance));
        assert_eq!(route("POST", "/checkpoint/save"), Ok(Route::CheckpointSave));
        assert_eq!(
            route("POST", "/checkpoint/restore"),
            Ok(Route::CheckpointRestore)
        );
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("POST", "/admin/shutdown"), Ok(Route::Shutdown));
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let e = route("GET", "/nope").expect_err("404");
        assert_eq!((e.status, e.code), (404, "not_found"));
        let e = route("GET", "/ingest").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
        assert!(e.message.contains("POST"), "{}", e.message);
        let e = route("POST", "/healthz").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
    }

    #[test]
    fn resolves_tenant_endpoints_with_the_id_extracted() {
        assert_eq!(
            route("POST", "/t/acme/ingest"),
            Ok(Route::TenantIngest("acme".to_owned()))
        );
        assert_eq!(
            route("GET", "/t/acme/query"),
            Ok(Route::TenantQuery("acme".to_owned()))
        );
        assert_eq!(
            route("POST", "/t/a.b-c_d/query_k"),
            Ok(Route::TenantQueryK("a.b-c_d".to_owned()))
        );
        assert_eq!(
            route("GET", "/t/x/f0"),
            Ok(Route::TenantF0("x".to_owned()))
        );
        // the router extracts verbatim; validation is the registry's job
        assert_eq!(
            route("GET", "/t/bad id!/f0"),
            Ok(Route::TenantF0("bad id!".to_owned()))
        );
    }

    #[test]
    fn tenant_routes_reject_bad_shapes_with_404_and_bad_methods_with_405() {
        for path in [
            "/t",              // no tenant, no verb
            "/t/",             // empty tenant and verb
            "/t/acme",         // no verb
            "/t/acme/",        // empty verb
            "/t//f0",          // empty tenant
            "/t/acme/nope",    // unknown verb
            "/t/a/b/f0",       // nested tenant segment
            "/t/acme/f0/more", // trailing segment
            "/tenant/acme/f0", // wrong prefix
        ] {
            let e = route("GET", path).expect_err(path);
            assert_eq!((e.status, e.code), (404, "not_found"), "{path}");
        }
        let e = route("GET", "/t/acme/ingest").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
        assert!(e.message.contains("POST"), "{}", e.message);
        let e = route("DELETE", "/t/acme/query").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
        assert!(e.message.contains("GET, POST"), "{}", e.message);
    }

    /// The exact-match table wins: a tenant literally named like an
    /// exact path cannot shadow or be shadowed.
    #[test]
    fn exact_paths_stay_byte_identical_under_the_tenant_family() {
        assert_eq!(route("GET", "/query"), Ok(Route::Query));
        assert_eq!(
            route("GET", "/t/query/query"),
            Ok(Route::TenantQuery("query".to_owned()))
        );
        // "/t" as a whole is not an exact route
        let e = route("GET", "/t").expect_err("404");
        assert_eq!(e.status, 404);
    }
}
