//! Route table: exact-match paths to handler identities, with typed
//! 404/405 rejections.

use crate::http::HttpError;

/// Every endpoint the server exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /ingest` — batched points into the writer.
    Ingest,
    /// `GET|POST /query` — one sampled group.
    Query,
    /// `GET|POST /query_k` — k sampled groups.
    QueryK,
    /// `GET|POST /f0` — distinct-group estimate.
    F0,
    /// `POST /advance` — move the stream clock.
    Advance,
    /// `POST /checkpoint/save` — durable container to a path.
    CheckpointSave,
    /// `POST /checkpoint/restore` — swap in a container's state.
    CheckpointRestore,
    /// `GET /healthz` — readiness probe.
    Healthz,
    /// `POST /admin/shutdown` — final publish, optional checkpoint,
    /// drain.
    Shutdown,
}

/// Resolves `method path`; unknown paths are `404 not_found`, known
/// paths with the wrong method are `405 method_not_allowed` naming the
/// methods that would work.
pub fn route(method: &str, path: &str) -> Result<Route, HttpError> {
    let (route, allowed): (Route, &[&str]) = match path {
        "/ingest" => (Route::Ingest, &["POST"]),
        "/query" => (Route::Query, &["GET", "POST"]),
        "/query_k" => (Route::QueryK, &["GET", "POST"]),
        "/f0" => (Route::F0, &["GET", "POST"]),
        "/advance" => (Route::Advance, &["POST"]),
        "/checkpoint/save" => (Route::CheckpointSave, &["POST"]),
        "/checkpoint/restore" => (Route::CheckpointRestore, &["POST"]),
        "/healthz" => (Route::Healthz, &["GET"]),
        "/admin/shutdown" => (Route::Shutdown, &["POST"]),
        _ => {
            return Err(HttpError::new(
                404,
                "not_found",
                format!("no route for `{path}`"),
            ))
        }
    };
    if allowed.contains(&method) {
        Ok(route)
    } else {
        Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("`{path}` allows {}", allowed.join(", ")),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_every_endpoint() {
        assert_eq!(route("POST", "/ingest"), Ok(Route::Ingest));
        assert_eq!(route("GET", "/query"), Ok(Route::Query));
        assert_eq!(route("POST", "/query_k"), Ok(Route::QueryK));
        assert_eq!(route("GET", "/f0"), Ok(Route::F0));
        assert_eq!(route("POST", "/advance"), Ok(Route::Advance));
        assert_eq!(route("POST", "/checkpoint/save"), Ok(Route::CheckpointSave));
        assert_eq!(
            route("POST", "/checkpoint/restore"),
            Ok(Route::CheckpointRestore)
        );
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("POST", "/admin/shutdown"), Ok(Route::Shutdown));
    }

    #[test]
    fn unknown_path_is_404_and_wrong_method_is_405() {
        let e = route("GET", "/nope").expect_err("404");
        assert_eq!((e.status, e.code), (404, "not_found"));
        let e = route("GET", "/ingest").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
        assert!(e.message.contains("POST"), "{}", e.message);
        let e = route("POST", "/healthz").expect_err("405");
        assert_eq!((e.status, e.code), (405, "method_not_allowed"));
    }
}
