//! `POST /ingest`: validate a batch of points, hand it to the writer
//! thread, ack with the post-batch `seen`/`epoch`.

use super::{parse_body, submit, Outcome};
use crate::api_types::{self, IngestRequest, IngestResponse};
use crate::http::{HttpError, Request};
use crate::{Cmd, Shared};
use rds_geometry::Point;

/// Points per request cap: bounds the writer-queue latency one request
/// can induce (and the allocation a hostile batch can demand).
pub(crate) const MAX_BATCH_POINTS: usize = 65_536;

/// Validates a batch against the caps and the server dimension,
/// yielding constructed `Point`s. Shared by the global `/ingest` and
/// the per-tenant `/t/{tenant}/ingest` handlers.
///
/// Every coordinate is validated *before* constructing `Point`s:
/// `Point::new` treats empty/non-finite input as a caller bug and
/// panics, and a panic is exactly what this path must never do.
pub(crate) fn validate_batch(body: &IngestRequest, dim: usize) -> Result<Vec<Point>, HttpError> {
    if body.points.len() > MAX_BATCH_POINTS {
        return Err(HttpError::new(
            400,
            "batch_too_large",
            format!(
                "{} points in one request; the cap is {MAX_BATCH_POINTS}",
                body.points.len()
            ),
        ));
    }
    if let Some(times) = &body.times {
        if times.len() != body.points.len() {
            return Err(HttpError::new(
                400,
                "times_mismatch",
                format!(
                    "{} times for {} points; lengths must match",
                    times.len(),
                    body.points.len()
                ),
            ));
        }
    }
    let mut points = Vec::with_capacity(body.points.len());
    for (i, coords) in body.points.iter().enumerate() {
        if coords.len() != dim {
            return Err(HttpError::new(
                400,
                "invalid_point",
                format!(
                    "point {i} has {} coordinates; server dimension is {dim}",
                    coords.len()
                ),
            ));
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(HttpError::new(
                400,
                "invalid_point",
                format!("point {i} has a non-finite coordinate"),
            ));
        }
        points.push(Point::new(coords.clone()));
    }
    Ok(points)
}

pub(crate) fn ingest(req: &Request, shared: &Shared) -> Result<Outcome, HttpError> {
    let body: IngestRequest = parse_body(req)?;
    let points = validate_batch(&body, shared.dim)?;
    let ingested = points.len() as u64;
    let times = body.times;
    let ack = submit(shared, |reply| Cmd::Ingest {
        points,
        times,
        reply,
    })?;
    Ok(Outcome::ok(api_types::to_json(&IngestResponse {
        ingested,
        seen: ack.seen,
        epoch: ack.epoch,
    })))
}
