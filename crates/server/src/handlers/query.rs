//! Read endpoints: `/query`, `/query_k`, `/f0`. Answered entirely from
//! the worker's lock-free snapshot pointer — the writer is never
//! touched, so reads stay fast during sustained ingest.

use super::{parse_body_or_default, Outcome};
use crate::api_types::{self, F0Response, QueryParams, QueryResponse, RecordDto};
use crate::http::{HttpError, Request};
use crate::Shared;

/// Cap on `k`: a query samples `k` draws from the snapshot, so an
/// unbounded `k` would be a one-request CPU sink.
pub(crate) const MAX_K: u64 = 4_096;

/// GET takes `?k=&seed=`; POST takes the same fields as JSON. Shared
/// with the per-tenant query handlers.
pub(crate) fn params(req: &Request) -> Result<QueryParams, HttpError> {
    if req.method == "POST" {
        return parse_body_or_default(req);
    }
    let mut p = QueryParams::default();
    for (name, value) in &req.query {
        let parsed = value.parse::<u64>().map_err(|_| {
            HttpError::new(
                400,
                "invalid_param",
                format!("parameter `{name}` must be an unsigned integer (got `{value}`)"),
            )
        });
        match name.as_str() {
            "k" => p.k = Some(parsed?),
            "seed" => p.seed = Some(parsed?),
            other => {
                return Err(HttpError::new(
                    400,
                    "unknown_param",
                    format!("unknown query parameter `{other}`"),
                ))
            }
        }
    }
    Ok(p)
}

/// `/query` (`default_k` 1) and `/query_k` (`default_k` 10). An
/// explicit `seed` makes the response a pure function of the snapshot,
/// which is what lets the e2e suite demand bit-identical results
/// against the in-process facade.
pub(crate) fn query(req: &Request, shared: &Shared, default_k: u64) -> Result<Outcome, HttpError> {
    let p = params(req)?;
    let k = p.k.unwrap_or(default_k);
    if k > MAX_K {
        return Err(HttpError::new(
            400,
            "invalid_param",
            format!("k={k} exceeds the cap of {MAX_K}"),
        ));
    }
    let snap = shared.reader.load().snapshot();
    let draw = match p.seed {
        Some(s) => s,
        None => shared.next_draw(),
    };
    let records: Vec<RecordDto> = snap
        .query_k_at(k as usize, draw)
        .iter()
        .map(RecordDto::from_record)
        .collect();
    Ok(Outcome::ok(api_types::to_json(&QueryResponse {
        epoch: snap.epoch(),
        seen: snap.seen(),
        k,
        records,
    })))
}

/// `/f0`: the distinct-group estimate of the latest snapshot.
pub(crate) fn f0(shared: &Shared) -> Result<Outcome, HttpError> {
    let snap = shared.reader.load().snapshot();
    Ok(Outcome::ok(api_types::to_json(&F0Response {
        epoch: snap.epoch(),
        seen: snap.seen(),
        f0: snap.f0_estimate(),
    })))
}
