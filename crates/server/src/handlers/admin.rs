//! Write-side and lifecycle endpoints: `/advance`, `/checkpoint/*`,
//! `/healthz`, `/admin/shutdown`.

use super::{parse_body, parse_body_or_default, submit, Outcome};
use crate::api_types::{
    self, AdvanceRequest, AdvanceResponse, CheckpointRequest, CheckpointResponse, HealthResponse,
    ShutdownRequest, ShutdownResponse,
};
use crate::http::{HttpError, Request};
use crate::{Cmd, Shared};

pub(crate) fn advance(req: &Request, shared: &Shared) -> Result<Outcome, HttpError> {
    let body: AdvanceRequest = parse_body_or_default(req)?;
    let ack = submit(shared, |reply| Cmd::Advance {
        seq: body.seq,
        time: body.time,
        reply,
    })?;
    Ok(Outcome::ok(api_types::to_json(&AdvanceResponse {
        epoch: ack.epoch,
        seen: ack.seen,
    })))
}

fn checkpoint_path(req: &Request) -> Result<String, HttpError> {
    let body: CheckpointRequest = parse_body(req)?;
    if body.path.trim().is_empty() {
        return Err(HttpError::new(
            400,
            "invalid_param",
            "`path` must not be empty",
        ));
    }
    Ok(body.path)
}

pub(crate) fn checkpoint_save(req: &Request, shared: &Shared) -> Result<Outcome, HttpError> {
    let path = checkpoint_path(req)?;
    let ack = submit(shared, |reply| Cmd::Checkpoint {
        path: path.clone(),
        reply,
    })?;
    Ok(Outcome::ok(api_types::to_json(&CheckpointResponse {
        path,
        epoch: ack.epoch,
        seen: ack.seen,
    })))
}

pub(crate) fn checkpoint_restore(req: &Request, shared: &Shared) -> Result<Outcome, HttpError> {
    let path = checkpoint_path(req)?;
    let ack = submit(shared, |reply| Cmd::Restore {
        path: path.clone(),
        reply,
    })?;
    Ok(Outcome::ok(api_types::to_json(&CheckpointResponse {
        path,
        epoch: ack.epoch,
        seen: ack.seen,
    })))
}

pub(crate) fn healthz(shared: &Shared) -> Result<Outcome, HttpError> {
    let snap = shared.reader.load().snapshot();
    // With tenancy enabled the probe carries the registry gauge; without
    // it the response is byte-identical to the pre-tenancy server (the
    // registry fields are absent, not null).
    if let Some(reg) = &shared.tenants {
        let stats = reg.stats();
        return Ok(Outcome::ok(api_types::to_json(
            &api_types::TenantHealthResponse {
                status: "ok".to_string(),
                epoch: snap.epoch(),
                seen: snap.seen(),
                dim: shared.dim as u64,
                tenants: stats.tenants,
                resident: stats.resident,
                resident_words: stats.resident_words,
                budget_words: stats.budget_words,
                spills: stats.spills,
                restores: stats.restores,
            },
        )));
    }
    Ok(Outcome::ok(api_types::to_json(&HealthResponse {
        status: "ok".to_string(),
        epoch: snap.epoch(),
        seen: snap.seen(),
        dim: shared.dim as u64,
    })))
}

/// Graceful stop: the writer does a final publish (and optional
/// checkpoint), replies, and exits; the 200 goes out before the
/// listener stops accepting.
pub(crate) fn shutdown(req: &Request, shared: &Shared) -> Result<Outcome, HttpError> {
    let body: ShutdownRequest = parse_body_or_default(req)?;
    let ack = submit(shared, |reply| Cmd::Shutdown {
        checkpoint_path: body.checkpoint_path,
        reply,
    })?;
    Ok(Outcome {
        status: 200,
        body: api_types::to_json(&ShutdownResponse {
            status: "shutting_down".to_string(),
            epoch: ack.epoch,
            seen: ack.seen,
        }),
        shutdown: true,
    })
}
