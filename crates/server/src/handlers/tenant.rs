//! Per-tenant endpoints: `/t/{tenant}/ingest|query|query_k|f0`.
//!
//! Unlike the global write path (funneled through the single writer
//! thread), tenant operations run directly on the worker thread that
//! received the request: the registry serializes writes per tenant with
//! its slot lock, and queries against resident tenants answer from a
//! lock-free snapshot pointer — so a million tenants do not share one
//! write queue. Budget pressure, eviction and restore are entirely the
//! registry's business; a request that touches a spilled tenant simply
//! takes the restore latency once.

use super::{parse_body, Outcome};
use crate::api_types::{
    self, error_code, error_status, F0Response, IngestRequest, QueryResponse, RecordDto,
};
use crate::handlers::{ingest::validate_batch, query::params};
use crate::http::{HttpError, Request};
use crate::Shared;
use rds_core::RdsError;
use rds_tenant::TenantRegistry;
use std::sync::Arc;

/// The registry, or the typed 404 for servers booted without tenancy.
fn registry(shared: &Shared) -> Result<&Arc<TenantRegistry>, HttpError> {
    shared.tenants.as_ref().ok_or_else(|| {
        HttpError::new(
            404,
            "tenancy_disabled",
            "this server was started without tenancy; /t/... routes are unavailable",
        )
    })
}

/// Maps a registry error onto the wire envelope (`invalid_tenant` is a
/// 400, checkpoint/restore failures are 409, exactly like the global
/// endpoints).
fn backend(e: RdsError) -> HttpError {
    HttpError::new(error_status(&e), error_code(&e), e.to_string())
}

pub(crate) fn ingest(req: &Request, shared: &Shared, tenant: &str) -> Result<Outcome, HttpError> {
    let reg = registry(shared)?;
    let body: IngestRequest = parse_body(req)?;
    let points = validate_batch(&body, shared.dim)?;
    let ack = reg
        .ingest(tenant, &points, body.times.as_deref())
        .map_err(backend)?;
    Ok(Outcome::ok(api_types::to_json(&api_types::IngestResponse {
        ingested: points.len() as u64,
        seen: ack.seen,
        epoch: ack.epoch,
    })))
}

/// `/t/{tenant}/query` (`default_k` 1) and `/t/{tenant}/query_k`
/// (`default_k` 10) — same parameters and response shape as the global
/// endpoints, answered from the tenant's snapshot.
pub(crate) fn query(
    req: &Request,
    shared: &Shared,
    tenant: &str,
    default_k: u64,
) -> Result<Outcome, HttpError> {
    let reg = registry(shared)?;
    let p = params(req)?;
    let k = p.k.unwrap_or(default_k);
    if k > super::query::MAX_K {
        return Err(HttpError::new(
            400,
            "invalid_param",
            format!("k={k} exceeds the cap of {}", super::query::MAX_K),
        ));
    }
    let snap = reg.snapshot(tenant).map_err(backend)?;
    let draw = match p.seed {
        Some(s) => s,
        None => shared.next_draw(),
    };
    let records: Vec<RecordDto> = snap
        .query_k_at(k as usize, draw)
        .iter()
        .map(RecordDto::from_record)
        .collect();
    Ok(Outcome::ok(api_types::to_json(&QueryResponse {
        epoch: snap.epoch(),
        seen: snap.seen(),
        k,
        records,
    })))
}

pub(crate) fn f0(shared: &Shared, tenant: &str) -> Result<Outcome, HttpError> {
    let reg = registry(shared)?;
    let snap = reg.snapshot(tenant).map_err(backend)?;
    Ok(Outcome::ok(api_types::to_json(&F0Response {
        epoch: snap.epoch(),
        seen: snap.seen(),
        f0: snap.f0_estimate(),
    })))
}
