//! Request dispatch and the per-connection serve loop.
//!
//! Handlers are pure functions `(&Request, &Shared) -> Result<Outcome,
//! HttpError>`: reads answer from the worker's lock-free snapshot
//! pointer, writes submit a command to the single writer thread and
//! block on its reply. Nothing on this path may panic — a malformed
//! request is a 4xx envelope, never a dead worker (lint rule L8
//! machine-checks this).

pub(crate) mod admin;
pub(crate) mod ingest;
pub(crate) mod query;
pub(crate) mod tenant;

use crate::api_types::{self, error_code, error_status};
use crate::http::{self, HttpError, ReadOutcome, Request};
use crate::router::{self, Route};
use crate::{Cmd, Shared, WriterAck};
use rds_core::RdsError;
use serde::Deserialize;
use std::io::BufReader;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, SyncSender};
use std::time::Duration;

/// What a handler produced: status + JSON body, plus whether the
/// server should stop accepting connections once this is written.
pub(crate) struct Outcome {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) shutdown: bool,
}

impl Outcome {
    /// A 200 with the given JSON body.
    pub(crate) fn ok(body: String) -> Self {
        Self {
            status: 200,
            body,
            shutdown: false,
        }
    }

    /// The envelope for an HTTP-level or handler-level rejection.
    pub(crate) fn from_http_error(e: &HttpError) -> Self {
        Self {
            status: e.status,
            body: api_types::envelope(e.code, &e.message),
            shutdown: false,
        }
    }
}

/// Routes and runs one request.
pub(crate) fn dispatch(req: &Request, shared: &Shared) -> Outcome {
    let route = match router::route(&req.method, &req.path) {
        Ok(r) => r,
        Err(e) => return Outcome::from_http_error(&e),
    };
    let result = match route {
        Route::Ingest => ingest::ingest(req, shared),
        Route::Query => query::query(req, shared, 1),
        Route::QueryK => query::query(req, shared, 10),
        Route::F0 => query::f0(shared),
        Route::Advance => admin::advance(req, shared),
        Route::CheckpointSave => admin::checkpoint_save(req, shared),
        Route::CheckpointRestore => admin::checkpoint_restore(req, shared),
        Route::Healthz => admin::healthz(shared),
        Route::Shutdown => admin::shutdown(req, shared),
        Route::TenantIngest(ref id) => tenant::ingest(req, shared, id),
        Route::TenantQuery(ref id) => tenant::query(req, shared, id, 1),
        Route::TenantQueryK(ref id) => tenant::query(req, shared, id, 10),
        Route::TenantF0(ref id) => tenant::f0(shared, id),
    };
    match result {
        Ok(outcome) => outcome,
        Err(e) => Outcome::from_http_error(&e),
    }
}

/// Parses a required JSON body into `T`.
pub(crate) fn parse_body<T: Deserialize>(req: &Request) -> Result<T, HttpError> {
    if req.body.trim().is_empty() {
        return Err(HttpError::new(
            400,
            "missing_body",
            "request body required (is Content-Length set?)",
        ));
    }
    serde_json::from_str(&req.body)
        .map_err(|e| HttpError::new(400, "bad_json", format!("malformed JSON body: {e}")))
}

/// Parses an optional JSON body: an absent/empty body is `T::default()`.
pub(crate) fn parse_body_or_default<T: Deserialize + Default>(
    req: &Request,
) -> Result<T, HttpError> {
    if req.body.trim().is_empty() {
        Ok(T::default())
    } else {
        serde_json::from_str(&req.body)
            .map_err(|e| HttpError::new(400, "bad_json", format!("malformed JSON body: {e}")))
    }
}

/// Submits one command to the writer thread and waits for its ack.
/// A writer that is already gone (post-shutdown race) answers `503`.
pub(crate) fn submit<F>(shared: &Shared, make: F) -> Result<WriterAck, HttpError>
where
    F: FnOnce(SyncSender<Result<WriterAck, RdsError>>) -> Cmd,
{
    let (reply, rx) = mpsc::sync_channel(1);
    if shared.cmd_tx.send(make(reply)).is_err() {
        return Err(HttpError::new(
            503,
            "shutting_down",
            "the writer has stopped; no further writes are accepted",
        ));
    }
    match rx.recv() {
        Ok(Ok(ack)) => Ok(ack),
        Ok(Err(e)) => Err(HttpError::new(
            error_status(&e),
            error_code(&e),
            e.to_string(),
        )),
        Err(_) => Err(HttpError::new(
            503,
            "shutting_down",
            "the writer exited before replying",
        )),
    }
}

/// Serves one connection until it closes: keep-alive loop, per-request
/// `catch_unwind` (belt and braces under L8 — a handler bug answers
/// 500 instead of killing the worker thread).
pub(crate) fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.read_timeout_ms.max(1))));
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, shared.max_body_bytes) {
            ReadOutcome::Closed => break,
            ReadOutcome::Error(e) => {
                let out = Outcome::from_http_error(&e);
                let _ = http::write_response(&mut writer, out.status, &out.body, false);
                break;
            }
            ReadOutcome::Request(req) => {
                let out = match catch_unwind(AssertUnwindSafe(|| dispatch(&req, shared))) {
                    Ok(o) => o,
                    Err(_) => Outcome {
                        status: 500,
                        body: api_types::envelope("internal_error", "handler panicked"),
                        shutdown: false,
                    },
                };
                // close after any error response: a rejected request may
                // have left unread body bytes on the wire, and parsing
                // those as the next request would desynchronize framing
                let keep = req.keep_alive
                    && out.status < 400
                    && !out.shutdown
                    && !shared.stopping.load(Ordering::SeqCst);
                let write_ok =
                    http::write_response(&mut writer, out.status, &out.body, keep).is_ok();
                if out.shutdown {
                    // Best-effort tenant durability on a client-initiated
                    // shutdown, mirroring ServerHandle::shutdown: park
                    // every resident sampler on disk so a restart on the
                    // same spill directory resumes them. A spill failure
                    // must not block the stop.
                    if let Some(reg) = &shared.tenants {
                        let _ = reg.spill_all();
                    }
                    shared.begin_stop();
                }
                if !keep || !write_ok {
                    break;
                }
            }
        }
    }
}
