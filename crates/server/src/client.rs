//! A tiny blocking HTTP/1.1 client: just enough to talk to an
//! rds-server. Shared by the e2e test suite and the rds-bench load
//! generator, so both exercise the exact wire format the server
//! speaks (keep-alive, `Content-Length` framing, JSON bodies).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// A persistent (keep-alive) connection to an rds-server.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    /// Connects.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Bounds how long a single response may take.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends `method path` with an optional JSON body and returns
    /// `(status, body)`. Error statuses are returned, not mapped to
    /// `Err` — an `Err` means the conversation itself broke.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: rds\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// Reads one `(status, body)` response off a buffered stream.
fn read_response<R: BufRead>(r: &mut R) -> std::io::Result<(u16, String)> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(bad("connection closed before the status line".to_string()));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line: {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside response headers".to_string()));
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad response Content-Length: {value:?}")))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| bad("response body is not UTF-8".to_string()))
}

/// One request on a fresh connection (closed afterwards).
pub fn request_once(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut conn = Conn::connect(addr)?;
    conn.request(method, path, body)
}
