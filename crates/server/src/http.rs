//! Minimal HTTP/1.1 on top of [`std::io`]: request parsing with hard
//! limits, and response writing. No external deps, no panics — every
//! malformed input maps to a typed [`HttpError`] that the connection
//! loop turns into a 4xx envelope.
//!
//! Limits: request/header lines are capped at [`MAX_LINE_BYTES`], a
//! request may carry at most [`MAX_HEADERS`] headers, and the body is
//! bounded by the server's configured `max_body_bytes` (checked against
//! `Content-Length` *before* any body byte is read). Percent-encoding
//! in query strings is not decoded — every parameter this API takes is
//! numeric.

use std::io::{BufRead, Write};

/// Cap on the request line and on each header line.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Cap on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed request: method, path split from its query string, and the
/// fully-read UTF-8 body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/query_k`.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// An HTTP-level rejection: status, stable machine-readable code, and
/// human-readable detail. Becomes an error envelope on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable snake_case code for the envelope.
    pub code: &'static str,
    /// Human-readable detail for the envelope.
    pub message: String,
}

impl HttpError {
    /// Builds an error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            message: message.into(),
        }
    }
}

/// Outcome of trying to read one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed (or went idle past the timeout) between
    /// requests; nothing to answer.
    Closed,
    /// The bytes were not a valid request; answer this and hang up.
    Error(HttpError),
}

/// Reads one line (terminated by `\n`, trailing `\r` stripped) with a
/// hard byte cap. `Ok(None)` means clean EOF / idle timeout before any
/// byte of the line arrived.
fn read_line_capped<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(_) if line.is_empty() => return Ok(None),
            Err(_) => {
                return Err(HttpError::new(
                    400,
                    "truncated_request",
                    "connection failed mid-line",
                ))
            }
        };
        if buf.is_empty() {
            // EOF
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::new(
                    400,
                    "truncated_request",
                    "connection closed mid-line",
                ))
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                line.extend_from_slice(&buf[..i]);
                r.consume(i + 1);
                break;
            }
            None => {
                line.extend_from_slice(buf);
                let n = buf.len();
                r.consume(n);
            }
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::new(
                431,
                "line_too_long",
                format!("request/header line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
    }
    // the newline can arrive in the same buffered chunk as the overlong
    // line, so the cap must hold on the completed line too
    if line.len() > MAX_LINE_BYTES {
        return Err(HttpError::new(
            431,
            "line_too_long",
            format!("request/header line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(HttpError::new(
            400,
            "invalid_utf8",
            "request line or header is not valid UTF-8",
        )),
    }
}

/// Splits `target` into path + query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let pairs = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Reads and parses one request. `max_body` bounds the body *before*
/// it is read; the declared `Content-Length` is the only framing
/// supported (no chunked encoding — a `Transfer-Encoding` header is
/// rejected outright rather than misparsed).
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> ReadOutcome {
    let line = match read_line_capped(r) {
        Ok(Some(l)) => l,
        Ok(None) => return ReadOutcome::Closed,
        Err(e) => return ReadOutcome::Error(e),
    };
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) if !m.is_empty() => (m.to_string(), t.to_string()),
        _ => {
            return ReadOutcome::Error(HttpError::new(
                400,
                "malformed_request",
                format!("malformed request line: `{line}`"),
            ))
        }
    };
    let http10 = parts.next() == Some("HTTP/1.0");

    let mut content_length: Option<u64> = None;
    let mut connection: Option<String> = None;
    let mut n_headers = 0usize;
    loop {
        let header = match read_line_capped(r) {
            Ok(Some(h)) => h,
            Ok(None) => {
                return ReadOutcome::Error(HttpError::new(
                    400,
                    "truncated_request",
                    "connection closed inside the header block",
                ))
            }
            Err(e) => return ReadOutcome::Error(e),
        };
        if header.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return ReadOutcome::Error(HttpError::new(
                431,
                "too_many_headers",
                format!("more than {MAX_HEADERS} headers"),
            ));
        }
        let Some((name, value)) = header.split_once(':') else {
            return ReadOutcome::Error(HttpError::new(
                400,
                "malformed_header",
                format!("header without `:`: `{header}`"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                if content_length.is_some() {
                    return ReadOutcome::Error(HttpError::new(
                        400,
                        "invalid_content_length",
                        "duplicate Content-Length header",
                    ));
                }
                // an overflowing decimal (> u64::MAX) fails this parse
                // too, which is exactly the rejection we want
                match value.parse::<u64>() {
                    Ok(n) => content_length = Some(n),
                    Err(_) => {
                        return ReadOutcome::Error(HttpError::new(
                            400,
                            "invalid_content_length",
                            format!("Content-Length `{value}` is not an unsigned integer"),
                        ))
                    }
                }
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "transfer-encoding" => {
                return ReadOutcome::Error(HttpError::new(
                    400,
                    "unsupported_transfer_encoding",
                    "chunked bodies are not supported; send Content-Length",
                ))
            }
            _ => {}
        }
    }

    let body = match content_length {
        None => String::new(),
        Some(len) => {
            if len > max_body as u64 {
                return ReadOutcome::Error(HttpError::new(
                    413,
                    "payload_too_large",
                    format!("Content-Length {len} exceeds the {max_body}-byte cap"),
                ));
            }
            // max_body is a usize, so len fits after the check above
            let mut buf = vec![0u8; len as usize];
            if r.read_exact(&mut buf).is_err() {
                return ReadOutcome::Error(HttpError::new(
                    400,
                    "truncated_body",
                    format!("connection ended before the declared {len} body bytes"),
                ));
            }
            match String::from_utf8(buf) {
                Ok(s) => s,
                Err(_) => {
                    return ReadOutcome::Error(HttpError::new(
                        400,
                        "invalid_utf8",
                        "request body is not valid UTF-8",
                    ))
                }
            }
        }
    };

    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => !http10,
    };
    let (path, query) = split_target(&target);
    ReadOutcome::Request(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    })
}

/// Reason phrase for the statuses this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one JSON response and flushes it.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> ReadOutcome {
        read_request(&mut Cursor::new(raw), 1024)
    }

    fn expect_req(raw: &[u8]) -> Request {
        match parse(raw) {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    fn expect_err(raw: &[u8]) -> HttpError {
        match parse(raw) {
            ReadOutcome::Error(e) => e,
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_request_with_query_and_body() {
        let req = expect_req(b"POST /query_k?k=5&seed=7 HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query_k");
        assert_eq!(
            req.query,
            vec![("k".into(), "5".into()), ("seed".into(), "7".into())]
        );
        assert_eq!(req.body, "{}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        assert!(!expect_req(b"GET /f0 HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!expect_req(b"GET /f0 HTTP/1.0\r\n\r\n").keep_alive);
        assert!(expect_req(b"GET /f0 HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let req = expect_req(b"POST /ingest HTTP/1.1\r\n\r\n{\"points\": []}");
        assert_eq!(req.body, "", "bytes after the header block are not read blind");
    }

    #[test]
    fn eof_before_any_request_is_a_clean_close() {
        assert!(matches!(parse(b""), ReadOutcome::Closed));
    }

    #[test]
    fn truncated_header_block_is_an_error() {
        let e = expect_err(b"GET /f0 HTTP/1.1\r\nHost: x\r\n");
        assert_eq!((e.status, e.code), (400, "truncated_request"));
    }

    #[test]
    fn bad_duplicate_and_overflowing_content_length() {
        let e = expect_err(b"POST /ingest HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
        assert_eq!((e.status, e.code), (400, "invalid_content_length"));
        let e = expect_err(b"POST /i HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx");
        assert_eq!((e.status, e.code), (400, "invalid_content_length"));
        // 2^64 overflows u64 and must be rejected, not wrapped
        let e = expect_err(b"POST /i HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n");
        assert_eq!((e.status, e.code), (400, "invalid_content_length"));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let e = expect_err(b"POST /ingest HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        assert_eq!((e.status, e.code), (413, "payload_too_large"));
    }

    #[test]
    fn truncated_body_is_an_error() {
        let e = expect_err(b"POST /ingest HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
        assert_eq!((e.status, e.code), (400, "truncated_body"));
    }

    #[test]
    fn invalid_utf8_body_is_an_error() {
        let e = expect_err(b"POST /ingest HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe");
        assert_eq!((e.status, e.code), (400, "invalid_utf8"));
    }

    #[test]
    fn header_line_cap_and_header_count_cap_hold() {
        let mut raw = b"GET /f0 HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 2));
        raw.extend_from_slice(b"\r\n\r\n");
        let e = expect_err(&raw);
        assert_eq!((e.status, e.code), (431, "line_too_long"));

        let mut raw = b"GET /f0 HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let e = expect_err(&raw);
        assert_eq!((e.status, e.code), (431, "too_many_headers"));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        let e = expect_err(b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!((e.status, e.code), (400, "unsupported_transfer_encoding"));
    }

    #[test]
    fn malformed_request_line_and_header() {
        let e = expect_err(b"NONSENSE\r\n\r\n");
        assert_eq!((e.status, e.code), (400, "malformed_request"));
        let e = expect_err(b"GET /f0 HTTP/1.1\r\nno-colon-here\r\n\r\n");
        assert_eq!((e.status, e.code), (400, "malformed_header"));
    }

    #[test]
    fn response_writer_frames_the_body() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
