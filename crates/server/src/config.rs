//! Server configuration: bind address, threadpool sizing, request
//! limits, and the backend knobs forwarded to [`Rds::builder()`].

use rds_stream::Window;
use rds_core::RdsError;
use robust_distinct_sampling::{Rds, RdsReader, RdsWriter};

/// Backend selection: every knob [`Rds::builder()`] exposes, in plain
/// data form so a server can be configured from flags or tests without
/// threading a builder through.
///
/// When [`restore_from`](Self::restore_from) is set the server boots
/// from a PR-5 checkpoint container and **every other field except
/// [`publish_every`](Self::publish_every) is ignored** — the container's
/// config echo is authoritative, exactly as `rds checkpoint restore`
/// behaves on the CLI.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Point dimensionality (ignored on restore).
    pub dim: usize,
    /// Near-duplicate radius `alpha` (ignored on restore).
    pub alpha: f64,
    /// Stream window model (ignored on restore).
    pub window: Window,
    /// Engine shards; 1 = in-process sampler (ignored on restore).
    pub shards: usize,
    /// PRNG seed (ignored on restore).
    pub seed: u64,
    /// Expected stream length hint (ignored on restore).
    pub expected_len: u64,
    /// Samples per query, if the k-sampler backend is wanted.
    pub k: Option<usize>,
    /// Count accuracy `eps`, if the F0 regime threshold is wanted.
    pub eps: Option<f64>,
    /// Publish a snapshot every N processed points (default: the
    /// facade's `DEFAULT_PUBLISH_EVERY`). Honored on restore too.
    pub publish_every: Option<u64>,
    /// Boot from this checkpoint container instead of an empty stream.
    pub restore_from: Option<String>,
}

impl BackendConfig {
    /// A fresh backend with the facade's defaults: infinite window,
    /// one shard, seed 0.
    pub fn new(dim: usize, alpha: f64) -> Self {
        Self {
            dim,
            alpha,
            window: Window::Infinite,
            shards: 1,
            seed: 0,
            expected_len: 1 << 20,
            k: None,
            eps: None,
            publish_every: None,
            restore_from: None,
        }
    }

    /// Builds the split pair this configuration describes.
    pub(crate) fn build_split(&self) -> Result<(RdsWriter, RdsReader), RdsError> {
        let mut b = Rds::builder();
        if let Some(n) = self.publish_every {
            b = b.publish_every(n);
        }
        if let Some(path) = &self.restore_from {
            return b.restore_from(path);
        }
        b = b
            .dim(self.dim)
            .alpha(self.alpha)
            .window(self.window)
            .shards(self.shards)
            .seed(self.seed)
            .expected_len(self.expected_len);
        if let Some(k) = self.k {
            b = b.k(k);
        }
        if let Some(eps) = self.eps {
            b = b.count_accuracy(eps);
        }
        b.build_split()
    }
}

/// Multi-tenant serving: when set, the server additionally exposes
/// `/t/{tenant}/...` routes backed by a [`rds_tenant::TenantRegistry`]
/// built from the same [`BackendConfig`] knobs (each tenant is its own
/// single-shard stream; `shards` and `restore_from` apply only to the
/// global backend, not to tenants).
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// Global cap on resident tenant footprint, in machine words
    /// (`words()`, the paper's space unit). Idle tenants are spilled to
    /// `spill_dir` when traffic would exceed it.
    pub budget_words: usize,
    /// Directory receiving eviction containers; tenants spilled there
    /// by a previous process restore transparently.
    pub spill_dir: String,
}

/// Everything [`crate::bind`] needs: where to listen, how many worker
/// threads answer requests, per-request limits, and the backend.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads answering requests (each holds a cloned
    /// [`RdsReader`]); writes are funneled to the single writer thread.
    pub threads: usize,
    /// Hard cap on `Content-Length`; larger bodies get `413`.
    pub max_body_bytes: usize,
    /// Depth of the bounded writer command queue: ingest bursts beyond
    /// this apply backpressure to the submitting connections.
    pub queue_depth: usize,
    /// Per-connection read timeout: an idle keep-alive connection is
    /// dropped after this long, so shutdown can always drain.
    pub read_timeout_ms: u64,
    /// The sampler backend served by this process.
    pub backend: BackendConfig,
    /// Multi-tenant serving, off by default (the `/t/...` routes answer
    /// 404 when unset and `/healthz` omits registry fields).
    pub tenants: Option<TenancyConfig>,
}

impl ServerConfig {
    /// Defaults: ephemeral loopback port, 4 workers, 1 MiB body cap,
    /// a 128-command writer queue and a 5 s read timeout.
    pub fn new(backend: BackendConfig) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_body_bytes: 1 << 20,
            queue_depth: 128,
            read_timeout_ms: 5_000,
            backend,
            tenants: None,
        }
    }
}
