//! Wire types: request/response bodies for every endpoint plus the
//! typed error envelope with machine-readable codes mapped from
//! [`RdsError`].
//!
//! Every error response — HTTP-level or backend-level — has the shape
//!
//! ```json
//! {"error": {"code": "invalid_point", "message": "point 3 has 1 coordinates; server dimension is 2"}}
//! ```
//!
//! where `code` is a stable snake_case identifier clients can switch
//! on and `message` is human-readable detail.

use rds_core::{GroupRecord, RdsError};
use serde::{Deserialize, Serialize};

/// `POST /ingest`: a batch of points, optionally with per-point event
/// times (required only for time-windowed backends; same length as
/// `points` when present).
#[derive(Debug, Clone, Deserialize)]
pub struct IngestRequest {
    /// Row-major points; every row must have the server's dimension.
    pub points: Vec<Vec<f64>>,
    /// Optional event timestamps, one per point.
    pub times: Option<Vec<u64>>,
}

/// `POST /ingest` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestResponse {
    /// Points accepted by this request.
    pub ingested: u64,
    /// Writer's total points seen after the batch.
    pub seen: u64,
    /// Writer's epoch after the batch (publication cadence applies).
    pub epoch: u64,
}

/// Parameters for `/query` and `/query_k`: query string on GET
/// (`?k=8&seed=42`), JSON body on POST. Both fields optional.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct QueryParams {
    /// Samples to draw (default 1 on `/query`, 10 on `/query_k`).
    pub k: Option<u64>,
    /// Explicit draw token: queries with the same `seed` against the
    /// same snapshot return bit-identical records (replayable reads).
    /// Omitted → the server draws from its own counter.
    pub seed: Option<u64>,
}

/// One sampled group on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordDto {
    /// The group's representative point (its first stream member).
    pub rep: Vec<f64>,
    /// A uniformly random member of the group (reservoir sample).
    pub reservoir: Vec<f64>,
    /// Stream points that landed in this group.
    pub count: u64,
}

impl RecordDto {
    /// Flattens a [`GroupRecord`] for serialization.
    pub fn from_record(r: &GroupRecord) -> Self {
        Self {
            rep: r.rep.coords().to_vec(),
            reservoir: r.reservoir.coords().to_vec(),
            count: r.count,
        }
    }
}

/// `/query` and `/query_k` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Points the snapshot had seen.
    pub seen: u64,
    /// Samples requested.
    pub k: u64,
    /// Sampled groups; empty when nothing is live in the window.
    pub records: Vec<RecordDto>,
}

/// `/f0` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct F0Response {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Points the snapshot had seen.
    pub seen: u64,
    /// Estimated number of distinct groups.
    pub f0: f64,
}

/// `POST /advance`: move the stream clock without ingesting (expires
/// windowed state). Both fields optional: `seq` defaults to the points
/// seen so far, `time` defaults to `seq`.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct AdvanceRequest {
    /// New sequence position.
    pub seq: Option<u64>,
    /// New event time.
    pub time: Option<u64>,
}

/// `POST /advance` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvanceResponse {
    /// Writer epoch after the advance.
    pub epoch: u64,
    /// Writer's total points seen.
    pub seen: u64,
}

/// `POST /checkpoint/save` and `/checkpoint/restore`: the container
/// path on the **server's** filesystem.
#[derive(Debug, Clone, Deserialize)]
pub struct CheckpointRequest {
    /// Path of the checkpoint container.
    pub path: String,
}

/// Checkpoint save/restore response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointResponse {
    /// The container path acted on.
    pub path: String,
    /// Writer epoch afterwards.
    pub epoch: u64,
    /// Writer's total points seen afterwards.
    pub seen: u64,
}

/// `POST /admin/shutdown`: optionally checkpoint before draining.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct ShutdownRequest {
    /// Save a final checkpoint container here before stopping.
    pub checkpoint_path: Option<String>,
}

/// `POST /admin/shutdown` response (sent before the listener closes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownResponse {
    /// Always `"shutting_down"`.
    pub status: String,
    /// Final writer epoch (after the forced last publish).
    pub epoch: u64,
    /// Final points seen.
    pub seen: u64,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Latest published epoch.
    pub epoch: u64,
    /// Points seen by the latest snapshot.
    pub seen: u64,
    /// Point dimensionality this server ingests.
    pub dim: u64,
}

/// `GET /healthz` response when multi-tenant serving is enabled: the
/// plain [`HealthResponse`] fields plus the registry gauge. A separate
/// type (rather than optional fields) keeps the single-tenant response
/// byte-identical to the pre-tenancy server — the registry fields are
/// absent, not null, when tenancy is off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantHealthResponse {
    /// Always `"ok"` when the server can answer at all.
    pub status: String,
    /// Latest published epoch of the global backend.
    pub epoch: u64,
    /// Points seen by the global backend's latest snapshot.
    pub seen: u64,
    /// Point dimensionality this server ingests.
    pub dim: u64,
    /// Tenants known to the registry.
    pub tenants: u64,
    /// Tenants currently resident in memory.
    pub resident: u64,
    /// Machine words the resident tenants occupy.
    pub resident_words: u64,
    /// The global tenant space budget in machine words.
    pub budget_words: u64,
    /// Lifetime eviction spills.
    pub spills: u64,
    /// Lifetime restores from spill containers.
    pub restores: u64,
}

/// The machine-readable half of an error response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiError {
    /// Stable snake_case error identifier.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// The error envelope: every non-2xx body is exactly this shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// The error.
    pub error: ApiError,
}

/// Serializes any wire type; the vendored serializer is total, so the
/// fallback is unreachable in practice but keeps this path panic-free.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_default()
}

/// Builds an error-envelope body.
pub fn envelope(code: &str, message: &str) -> String {
    to_json(&ErrorEnvelope {
        error: ApiError {
            code: code.to_string(),
            message: message.to_string(),
        },
    })
}

/// Maps every [`RdsError`] variant to its stable wire code.
pub fn error_code(err: &RdsError) -> &'static str {
    match err {
        RdsError::InvalidDimension { .. } => "invalid_dimension",
        RdsError::InvalidAlpha { .. } => "invalid_alpha",
        RdsError::InvalidKappa0 { .. } => "invalid_kappa0",
        RdsError::InvalidK => "invalid_k",
        RdsError::InvalidSideFactor { .. } => "invalid_side_factor",
        RdsError::InvalidThreshold => "invalid_threshold",
        RdsError::InvalidEps { .. } => "invalid_eps",
        RdsError::InvalidCopies => "invalid_copies",
        RdsError::InvalidKappaB { .. } => "invalid_kappa_b",
        RdsError::InvalidPhi { .. } => "invalid_phi",
        RdsError::InvalidTheta { .. } => "invalid_theta",
        RdsError::InvalidBits { .. } => "invalid_bits",
        RdsError::InvalidDistortion { .. } => "invalid_distortion",
        RdsError::UnboundedWindow => "unbounded_window",
        RdsError::EmptyWindow => "empty_window",
        RdsError::InvalidShards => "invalid_shards",
        RdsError::InvalidBatchSize => "invalid_batch_size",
        RdsError::Checkpoint { .. } => "checkpoint_rejected",
        RdsError::InvalidTenant { .. } => "invalid_tenant",
        RdsError::ConfigMismatch { .. } => "config_mismatch",
        _ => "backend_error",
    }
}

/// HTTP status for a backend error: checkpoint/merge conflicts are
/// `409` (the request was well-formed but the state refused it),
/// everything else is a `400` validation failure.
pub fn error_status(err: &RdsError) -> u16 {
    match err {
        RdsError::Checkpoint { .. } | RdsError::ConfigMismatch { .. } => 409,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape_is_stable() {
        let body = envelope("bad_json", "oops");
        let parsed: ErrorEnvelope = serde_json::from_str(&body).expect("round trip");
        assert_eq!(parsed.error.code, "bad_json");
        assert_eq!(parsed.error.message, "oops");
    }

    #[test]
    fn every_builder_error_maps_to_a_code_and_status() {
        let errs = vec![
            RdsError::InvalidK,
            RdsError::InvalidThreshold,
            RdsError::UnboundedWindow,
            RdsError::EmptyWindow,
            RdsError::InvalidShards,
            RdsError::InvalidBatchSize,
            RdsError::checkpoint("bad magic"),
        ];
        for e in errs {
            assert!(!error_code(&e).is_empty());
            let s = error_status(&e);
            assert!((400..500).contains(&s), "backend errors are 4xx, got {s}");
        }
        assert_eq!(error_code(&RdsError::checkpoint("x")), "checkpoint_rejected");
        assert_eq!(error_status(&RdsError::checkpoint("x")), 409);
    }

    #[test]
    fn optional_params_tolerate_missing_fields() {
        let p: QueryParams = serde_json::from_str("{}").expect("empty object");
        assert!(p.k.is_none() && p.seed.is_none());
        let p: QueryParams = serde_json::from_str("{\"k\": 3}").expect("partial");
        assert_eq!(p.k, Some(3));
    }
}
