//! # rds-server
//!
//! A network serving layer over the split facade: hand-rolled HTTP/1.1
//! on [`std::net::TcpListener`], zero dependencies beyond the
//! workspace's vendored shims.
//!
//! ## Threading model
//!
//! Exactly the facade's contract, extended over the wire:
//!
//! * **one writer thread** owns the [`RdsWriter`] and drains a bounded
//!   command queue of ingest/advance/checkpoint/shutdown commands in
//!   FIFO order — writes are strictly serialized;
//! * **an accept thread** pushes connections into a bounded queue;
//! * **`threads` worker threads** each serve connections with
//!   keep-alive, answering reads from the current [`RdsReader`]'s
//!   lock-free snapshot pointer — queries never block ingest, end to
//!   end.
//!
//! `/checkpoint/restore` swaps in a whole new `(writer, reader)` pair;
//! workers pick up the new reader on their next request via an
//! [`AtomicArc`] — in-flight queries keep the old snapshot, exactly
//! like an epoch bump.
//!
//! ## Errors
//!
//! Every failure is an envelope `{"error":{"code","message"}}` — see
//! [`api_types`]. Malformed requests are 4xx, never a dead thread:
//! lint rule L8 bans `unwrap`/`expect`/panics from this whole crate's
//! serving path, and the connection loop adds `catch_unwind` as belt
//! and braces.

pub mod api_types;
pub mod client;
pub mod config;
mod handlers;
pub mod http;
pub mod router;

pub use config::{BackendConfig, ServerConfig, TenancyConfig};

use parking_lot::AtomicArc;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem};
use rds_core::RdsError;
use robust_distinct_sampling::{PublishCadence, Rds, RdsReader, RdsWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::{fmt, io};

/// Errors surfaced while standing a server up.
#[derive(Debug)]
pub enum ServerError {
    /// The backend configuration was rejected by [`Rds::builder()`].
    Config(RdsError),
    /// Socket or thread setup failed.
    Io(io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "backend configuration rejected: {e}"),
            ServerError::Io(e) => write!(f, "server setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Config(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

/// The writer thread's reply to a completed command.
pub(crate) struct WriterAck {
    pub(crate) epoch: u64,
    pub(crate) seen: u64,
}

type Reply = SyncSender<Result<WriterAck, RdsError>>;

/// Commands the single writer thread drains in FIFO order.
pub(crate) enum Cmd {
    /// Pre-validated points (dimension and finiteness already checked
    /// by the handler, so `Point` construction cannot panic here).
    Ingest {
        points: Vec<Point>,
        times: Option<Vec<u64>>,
        reply: Reply,
    },
    Advance {
        seq: Option<u64>,
        time: Option<u64>,
        reply: Reply,
    },
    Checkpoint {
        path: String,
        reply: Reply,
    },
    Restore {
        path: String,
        reply: Reply,
    },
    Shutdown {
        checkpoint_path: Option<String>,
        reply: Reply,
    },
}

/// State every worker and the writer loop share.
pub(crate) struct Shared {
    /// Swapped wholesale on `/checkpoint/restore`.
    pub(crate) reader: AtomicArc<RdsReader>,
    pub(crate) cmd_tx: SyncSender<Cmd>,
    pub(crate) dim: usize,
    pub(crate) max_body_bytes: usize,
    pub(crate) read_timeout_ms: u64,
    /// Server-side draw counter for queries without an explicit seed.
    draws: AtomicU64,
    pub(crate) stopping: AtomicBool,
    addr: SocketAddr,
    /// The multi-tenant registry, when tenancy is enabled. Tenant
    /// requests run on worker threads against it directly — per-tenant
    /// serialization is the registry's slot lock, not the global writer
    /// queue.
    pub(crate) tenants: Option<Arc<rds_tenant::TenantRegistry>>,
}

impl Shared {
    pub(crate) fn next_draw(&self) -> u64 {
        self.draws.fetch_add(1, Ordering::Relaxed)
    }

    /// Stops the accept loop: sets the flag, then opens (and drops) a
    /// connection to our own listener so the blocking `accept` wakes
    /// up and observes it.
    pub(crate) fn begin_stop(&self) {
        if !self.stopping.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

fn ack(w: &RdsWriter) -> WriterAck {
    WriterAck {
        epoch: w.epoch(),
        seen: w.seen(),
    }
}

/// The single writer thread: owns the [`RdsWriter`], applies commands
/// in arrival order, exits on `Shutdown` (after a final publish) or
/// when every handle to the command queue is gone.
fn writer_loop(mut writer: RdsWriter, rx: Receiver<Cmd>, shared: Arc<Shared>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Ingest {
                points,
                times,
                reply,
            } => {
                let before = writer.seen();
                match times {
                    None => {
                        for p in points {
                            let seq = writer.seen();
                            writer.process_item(StreamItem::new(p, Stamp::at(seq)));
                        }
                    }
                    Some(times) => {
                        for (p, t) in points.into_iter().zip(times) {
                            let seq = writer.seen();
                            writer.process_item(StreamItem::new(p, Stamp::new(seq, t)));
                        }
                    }
                }
                // `process_item` honors Manual/EveryN; EveryBatch means
                // "publish at the end of each ingest request" here.
                if writer.cadence() == PublishCadence::EveryBatch && writer.seen() > before {
                    writer.publish();
                }
                let _ = reply.send(Ok(ack(&writer)));
            }
            Cmd::Advance { seq, time, reply } => {
                let seq = seq.unwrap_or_else(|| writer.seen());
                let time = time.unwrap_or(seq);
                writer.advance(Stamp::new(seq, time));
                let _ = reply.send(Ok(ack(&writer)));
            }
            Cmd::Checkpoint { path, reply } => {
                let result = writer.checkpoint_to(&path).map(|()| ack(&writer));
                let _ = reply.send(result);
            }
            Cmd::Restore { path, reply } => {
                let cadence = writer.cadence();
                match Rds::builder().restore_from(&path) {
                    Ok((mut w, r)) => {
                        if w.dim() != shared.dim {
                            let _ = reply.send(Err(RdsError::checkpoint(format!(
                                "restore would change the point dimension from {} to {}; \
                                 boot a fresh server for that container",
                                shared.dim,
                                w.dim()
                            ))));
                        } else {
                            w.set_cadence(cadence);
                            writer = w;
                            shared.reader.store(Arc::new(r));
                            let _ = reply.send(Ok(ack(&writer)));
                        }
                    }
                    Err(e) => {
                        let _ = reply.send(Err(e));
                    }
                }
            }
            Cmd::Shutdown {
                checkpoint_path,
                reply,
            } => {
                writer.publish();
                let result = match checkpoint_path {
                    Some(path) => writer.checkpoint_to(&path).map(|()| ack(&writer)),
                    None => Ok(ack(&writer)),
                };
                let _ = reply.send(result);
                break;
            }
        }
    }
}

/// A running server: its bound address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// In-process graceful stop: final publish on the writer, stop
    /// accepting. Equivalent to `POST /admin/shutdown` (idempotent —
    /// safe to call after a client already shut the server down).
    pub fn shutdown(&self) {
        let (reply, rx) = mpsc::sync_channel(1);
        if self
            .shared
            .cmd_tx
            .send(Cmd::Shutdown {
                checkpoint_path: None,
                reply,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
        // Best-effort durability for tenants: park every resident
        // sampler on disk so a restart resumes them. A spill failure
        // must not block shutdown.
        if let Some(reg) = &self.shared.tenants {
            let _ = reg.spill_all();
        }
        self.shared.begin_stop();
    }

    /// Waits for every server thread to exit. Blocks until a shutdown
    /// is triggered (by [`Self::shutdown`] or `POST /admin/shutdown`)
    /// and every open connection drains or times out.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }

    /// [`Self::shutdown`] then [`Self::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Builds the backend, binds the listener, and spawns the writer,
/// accept, and worker threads. Returns as soon as the socket is live —
/// `GET /healthz` answers from that moment.
///
/// # Errors
///
/// [`ServerError::Config`] when `cfg.backend` is rejected by the
/// facade builder; [`ServerError::Io`] when the bind or a thread spawn
/// fails.
pub fn bind(cfg: ServerConfig) -> Result<ServerHandle, ServerError> {
    let (writer, reader) = cfg.backend.build_split().map_err(ServerError::Config)?;
    let dim = writer.dim();
    let tenants = match &cfg.tenants {
        None => None,
        Some(tc) => {
            // Tenants share the backend's sampler knobs; each tenant is
            // its own single-shard stream (`shards`/`restore_from` are
            // global-backend concerns).
            let mut template = rds_tenant::TenantTemplate::new(cfg.backend.dim, cfg.backend.alpha);
            template.window = cfg.backend.window;
            template.seed = cfg.backend.seed;
            template.expected_len = cfg.backend.expected_len;
            template.k = cfg.backend.k;
            template.eps = cfg.backend.eps;
            let registry =
                rds_tenant::TenantRegistry::new(template, tc.budget_words, tc.spill_dir.as_str())
                    .map_err(ServerError::Config)?;
            Some(Arc::new(registry))
        }
    };
    let listener = TcpListener::bind(cfg.addr.as_str()).map_err(ServerError::Io)?;
    let addr = listener.local_addr().map_err(ServerError::Io)?;

    let (cmd_tx, cmd_rx) = mpsc::sync_channel(cfg.queue_depth.max(1));
    let shared = Arc::new(Shared {
        reader: AtomicArc::new(Arc::new(reader)),
        cmd_tx,
        dim,
        max_body_bytes: cfg.max_body_bytes,
        read_timeout_ms: cfg.read_timeout_ms,
        draws: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
        addr,
        tenants,
    });

    let writer_shared = Arc::clone(&shared);
    let writer_thread = std::thread::Builder::new()
        .name("rds-writer".to_string())
        .spawn(move || writer_loop(writer, cmd_rx, writer_shared))
        .map_err(ServerError::Io)?;

    let n_workers = cfg.threads.max(1);
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(n_workers * 2);
    let conn_rx = Arc::new(parking_lot::Mutex::new(conn_rx));
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        let rx = Arc::clone(&conn_rx);
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("rds-worker-{i}"))
            .spawn(move || loop {
                // take the lock only to dequeue; serve with it released
                let next = rx.lock().recv();
                match next {
                    Ok(stream) => handlers::handle_connection(stream, &worker_shared),
                    Err(_) => break,
                }
            })
            .map_err(ServerError::Io)?;
        workers.push(handle);
    }

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("rds-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // conn_tx drops here: workers drain the queue and exit
        })
        .map_err(ServerError::Io)?;

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        writer: Some(writer_thread),
    })
}
