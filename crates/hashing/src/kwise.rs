//! k-wise independent hashing via polynomials over `GF(2^61 - 1)`.
//!
//! The paper's analysis assumes fully random hash functions and notes
//! (Section 1, "Preliminaries") that `Θ(log m)`-wise independent hash
//! functions suffice by Chernoff–Hoeffding bounds for limited independence
//! [Schmidt–Siegel–Srinivasan]. A degree-`(k-1)` polynomial with uniformly
//! random coefficients evaluated over a prime field is the textbook k-wise
//! independent family; we use the Mersenne prime `2^61 - 1` so that
//! reduction is two shifts and an add.

use rand::{Rng, RngExt};

/// The Mersenne prime `2^61 - 1` used as the hash field modulus.
pub const M61: u64 = (1u64 << 61) - 1;

/// Reduces a 122-bit product modulo `2^61 - 1`.
#[inline]
fn reduce128(x: u128) -> u64 {
    // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61 - 1)
    let lo = (x as u64) & M61;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= M61 {
        s -= M61;
    }
    s
}

/// Multiplies two field elements modulo `2^61 - 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// Adds two field elements modulo `2^61 - 1`.
#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let mut s = a + b; // both < 2^61, no overflow in u64
    if s >= M61 {
        s -= M61;
    }
    s
}

/// A k-wise independent hash function `u64 -> [0, 2^61 - 1)`.
///
/// Evaluates a random polynomial of degree `k - 1` by Horner's rule:
/// `h(x) = c_{k-1} x^{k-1} + ... + c_1 x + c_0 (mod 2^61 - 1)`.
///
/// # Examples
///
/// ```
/// use rds_hashing::KWiseHash;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let h = KWiseHash::new(8, &mut rng);
/// assert_eq!(h.hash(12345), h.hash(12345)); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct KWiseHash {
    coeffs: Box<[u64]>,
}

impl KWiseHash {
    /// Samples a hash function from the k-wise independent family.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        assert!(k >= 1, "independence parameter must be at least 1");
        let coeffs = (0..k).map(|_| rng.random_range(0..M61)).collect();
        Self { coeffs }
    }

    /// The independence parameter `k`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Suggested independence for a stream of length `m`:
    /// `max(8, 2 * ceil(log2 m))`, the `Θ(log m)` the paper requires.
    pub fn suggested_independence(stream_len: u64) -> usize {
        let log = 64 - stream_len.max(2).leading_zeros() as usize;
        (2 * log).max(8)
    }

    /// Evaluates the hash at `x`; the result is uniform in `[0, 2^61 - 1)`
    /// over the choice of the function.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % M61;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// Evaluates the hash over a whole slice of keys in one pass per
    /// coefficient, appending the results to `out` (cleared first).
    ///
    /// Per element this performs exactly the modular arithmetic of
    /// [`KWiseHash::hash`], so `out[i] == self.hash(keys[i])` bit for bit;
    /// only the loop order changes. Walking coefficient-major over small
    /// chunks breaks the serial Horner dependency chain of the per-point
    /// path — each of the `LANES` accumulators advances independently, so
    /// the `Θ(log m)` 64×64→128 multiplies per key overlap instead of
    /// serializing, which is where the batch amortization comes from.
    pub fn hash_slice(&self, keys: &[u64], out: &mut Vec<u64>) {
        const LANES: usize = 8;
        out.clear();
        out.reserve(keys.len());
        for chunk in keys.chunks(LANES) {
            let mut x = [0u64; LANES];
            let mut acc = [0u64; LANES];
            for (lane, &k) in x.iter_mut().zip(chunk.iter()) {
                *lane = k % M61;
            }
            for &c in self.coeffs.iter().rev() {
                for i in 0..chunk.len() {
                    acc[i] = add_mod(mul_mod(acc[i], x[i]), c);
                }
            }
            out.extend_from_slice(&acc[..chunk.len()]);
        }
    }

    /// Number of machine words used by the function description (`k`
    /// coefficients); part of the `pSpace` accounting.
    pub fn words(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduce_handles_extremes() {
        assert_eq!(reduce128(0), 0);
        assert_eq!(reduce128(M61 as u128), 0);
        assert_eq!(reduce128((M61 as u128) + 5), 5);
        // (2^61 - 2)^2 reduced must be < M61 and match naive computation
        let a = M61 - 1;
        let naive = ((a as u128 * a as u128) % M61 as u128) as u64;
        assert_eq!(mul_mod(a, a), naive);
    }

    #[test]
    fn mul_matches_naive_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let a = rng.random_range(0..M61);
            let b = rng.random_range(0..M61);
            let naive = ((a as u128 * b as u128) % M61 as u128) as u64;
            assert_eq!(mul_mod(a, b), naive);
        }
    }

    #[test]
    fn degree_one_is_affine() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = KWiseHash::new(2, &mut rng);
        // h(x) = c1*x + c0: check additivity of differences
        let d1 = (h.hash(11) + M61 - h.hash(10)) % M61;
        let d2 = (h.hash(21) + M61 - h.hash(20)) % M61;
        assert_eq!(d1, d2);
    }

    #[test]
    fn outputs_are_in_field_range() {
        let mut rng = StdRng::seed_from_u64(23);
        let h = KWiseHash::new(16, &mut rng);
        for x in 0..5000u64 {
            assert!(h.hash(x.wrapping_mul(0x9E3779B97F4A7C15)) < M61);
        }
    }

    #[test]
    fn empirical_uniformity_of_low_bits() {
        // The sampling procedure of the paper uses h(x) mod R; verify the
        // low bits look uniform across inputs for a fixed random function.
        let mut rng = StdRng::seed_from_u64(31);
        let h = KWiseHash::new(16, &mut rng);
        let n = 1u64 << 14;
        let mut count = 0u64;
        for x in 0..n {
            if h.hash(x) & 0b111 == 0 {
                count += 1;
            }
        }
        let expect = n / 8;
        let slack = 4 * ((expect as f64).sqrt() as u64);
        assert!(
            count.abs_diff(expect) < slack,
            "count={count}, expect={expect}"
        );
    }

    #[test]
    fn pairwise_independence_statistics() {
        // For many random functions of independence >= 2, the pair
        // (h(0) mod 2, h(1) mod 2) should be roughly uniform on 4 outcomes.
        let mut rng = StdRng::seed_from_u64(41);
        let mut cells = [0u64; 4];
        let trials = 8000;
        for _ in 0..trials {
            let h = KWiseHash::new(2, &mut rng);
            let a = (h.hash(0) & 1) as usize;
            let b = (h.hash(1) & 1) as usize;
            cells[2 * a + b] += 1;
        }
        for (i, &c) in cells.iter().enumerate() {
            let expect = trials / 4;
            assert!(
                c.abs_diff(expect) < 200,
                "outcome {i}: {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn hash_slice_is_bit_identical_to_per_key_hash() {
        let mut rng = StdRng::seed_from_u64(53);
        for k in [1usize, 2, 8, 24, 42] {
            let h = KWiseHash::new(k, &mut rng);
            // lengths straddling the lane width, including empty
            for len in [0usize, 1, 7, 8, 9, 16, 100] {
                let keys: Vec<u64> = (0..len as u64)
                    .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ rng.random_range(0..u64::MAX))
                    .collect();
                let mut out = Vec::new();
                h.hash_slice(&keys, &mut out);
                let per_key: Vec<u64> = keys.iter().map(|&x| h.hash(x)).collect();
                assert_eq!(out, per_key, "k={k} len={len}");
            }
        }
    }

    #[test]
    fn hash_slice_clears_stale_output() {
        let mut rng = StdRng::seed_from_u64(59);
        let h = KWiseHash::new(8, &mut rng);
        let mut out = vec![1, 2, 3];
        h.hash_slice(&[10, 20], &mut out);
        assert_eq!(out, vec![h.hash(10), h.hash(20)]);
    }

    #[test]
    fn suggested_independence_grows_with_stream() {
        assert!(
            KWiseHash::suggested_independence(1 << 30) > KWiseHash::suggested_independence(1 << 10)
        );
        assert!(KWiseHash::suggested_independence(2) >= 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_independence_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = KWiseHash::new(0, &mut rng);
    }
}
