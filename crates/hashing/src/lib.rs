//! Hashing substrate for robust distinct sampling.
//!
//! Provides the `Θ(log m)`-wise independent hash family over
//! `GF(2^61 - 1)` that the paper's analysis requires ([`KWiseHash`]), the
//! cell-ID folding ([`CellKeyMixer`]), and the nested power-of-two cell
//! sampler `h_R` ([`CellHasher`], Fact 1b of the paper).

#![warn(missing_docs)]

mod cell;
mod kwise;
mod mix;
mod point_id;

pub use cell::{level_sampled, level_sampled_slice, max_sampled_level, CellHasher};
pub use kwise::{KWiseHash, M61};
pub use mix::{splitmix64, CellKeyMixer};
pub use point_id::point_identity;
