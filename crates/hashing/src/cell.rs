//! The cell sampler `h_R`: hashing grid cells at power-of-two sample rates.
//!
//! Section 2.1 of the paper samples cells with `h_R(x) = h(x) mod R` for
//! `R = 2^k` and calls a cell *sampled* when `h_R(cell) = 0`. Because the
//! ranges are nested (Fact 1b),
//! `{x : h_{2R}(x) = 0} ⊆ {x : h_R(x) = 0}`,
//! halving the sample rate only ever *removes* sampled cells — the property
//! that makes rate doubling (Algorithm 1) and `Split` (Algorithm 4) sound.

use crate::{CellKeyMixer, KWiseHash};
use rand::Rng;

/// Returns whether a hash value is sampled at `rate 2^-level`, i.e. whether
/// its low `level` bits are all zero.
///
/// `level = 0` samples everything (rate 1), matching `R = 1` in the paper.
#[inline]
pub fn level_sampled(hash_value: u64, level: u32) -> bool {
    debug_assert!(level < 64, "level out of range");
    hash_value & ((1u64 << level) - 1) == 0
}

/// The largest level at which `hash_value` is sampled, capped at `max_level`
/// (the number of trailing zero bits).
#[inline]
pub fn max_sampled_level(hash_value: u64, max_level: u32) -> u32 {
    (hash_value.trailing_zeros()).min(max_level)
}

/// Slice-in/slice-out batch variant of [`level_sampled`]: appends one bit
/// per hash to `out` (cleared first), all evaluated at the same `level`.
///
/// `out[i] == level_sampled(hashes[i], level)` — one pass over the batch
/// where the per-point path would branch per arrival.
pub fn level_sampled_slice(hashes: &[u64], level: u32, out: &mut Vec<bool>) {
    debug_assert!(level < 64, "level out of range");
    let mask = (1u64 << level) - 1;
    out.clear();
    out.extend(hashes.iter().map(|&h| h & mask == 0));
}

/// Hashes grid cells (integer coordinate vectors) and answers sampling
/// queries at any power-of-two rate.
///
/// Combines the [`CellKeyMixer`] (cell → `u64` ID) with a k-wise
/// independent [`KWiseHash`] (ID → field element); the low bits of the
/// result drive the nested sampling.
///
/// # Examples
///
/// ```
/// use rds_hashing::CellHasher;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let hasher = CellHasher::new(8, &mut rng);
/// let cell = [3i64, -1, 4];
/// // rate 1 samples every cell
/// assert!(hasher.sampled(&cell, 0));
/// // nesting: sampled at level 5 implies sampled at level 3
/// if hasher.sampled(&cell, 5) {
///     assert!(hasher.sampled(&cell, 3));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct CellHasher {
    mixer: CellKeyMixer,
    hash: KWiseHash,
}

impl CellHasher {
    /// Samples a cell hasher with independence `k` from `rng` (which also
    /// seeds the key mixer).
    pub fn new<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let mut seed = [0u8; 8];
        rng.fill_bytes(&mut seed);
        Self {
            mixer: CellKeyMixer::new(u64::from_le_bytes(seed)),
            hash: KWiseHash::new(k, rng),
        }
    }

    /// The 64-bit key of a cell (stable across calls).
    #[inline]
    pub fn cell_key(&self, cell: &[i64]) -> u64 {
        self.mixer.key(cell)
    }

    /// The hash of a cell key.
    #[inline]
    pub fn hash_key(&self, key: u64) -> u64 {
        self.hash.hash(key)
    }

    /// The hash of a cell (key + hash in one step).
    #[inline]
    pub fn hash_cell(&self, cell: &[i64]) -> u64 {
        self.hash_key(self.cell_key(cell))
    }

    /// Whether the cell is sampled at rate `2^-level`
    /// (`h_R(cell) = 0` with `R = 2^level`).
    #[inline]
    pub fn sampled(&self, cell: &[i64], level: u32) -> bool {
        level_sampled(self.hash_cell(cell), level)
    }

    /// Whether a *key* (previously obtained from [`CellHasher::cell_key`])
    /// is sampled at rate `2^-level`.
    #[inline]
    pub fn key_sampled(&self, key: u64, level: u32) -> bool {
        level_sampled(self.hash_key(key), level)
    }

    /// Batch variant of [`CellHasher::hash_key`]: hashes a whole slice of
    /// cell keys in one coefficient-major pass (see
    /// [`KWiseHash::hash_slice`]), appending to `out` (cleared first).
    /// Bit-identical to hashing each key individually.
    pub fn hash_keys_slice(&self, keys: &[u64], out: &mut Vec<u64>) {
        self.hash.hash_slice(keys, out);
    }

    /// The key mixer, exposed so hot paths can fold cell keys
    /// incrementally along the adjacency DFS
    /// (see [`CellKeyMixer::fold_init`]).
    #[inline]
    pub fn mixer(&self) -> &CellKeyMixer {
        &self.mixer
    }

    /// Words of memory used by the function description.
    pub fn words(&self) -> usize {
        1 + self.hash.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn level_zero_samples_everything() {
        for v in [0u64, 1, 2, u64::MAX] {
            assert!(level_sampled(v, 0));
        }
    }

    #[test]
    fn level_sampled_checks_low_bits() {
        assert!(level_sampled(0b1000, 3));
        assert!(!level_sampled(0b0100, 3));
        assert!(level_sampled(0, 40));
    }

    #[test]
    fn sampling_is_nested_across_levels() {
        // Fact 1(b) of the paper.
        let mut rng = StdRng::seed_from_u64(2);
        let hasher = CellHasher::new(8, &mut rng);
        for x in -50i64..50 {
            for y in -50i64..50 {
                let cell = [x, y];
                for level in 1..8 {
                    if hasher.sampled(&cell, level) {
                        assert!(hasher.sampled(&cell, level - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn max_sampled_level_matches_definition() {
        assert_eq!(max_sampled_level(0b10100, 63), 2);
        assert_eq!(max_sampled_level(0, 10), 10);
        assert_eq!(max_sampled_level(1, 10), 0);
        for v in [3u64, 8, 24, 160] {
            let lvl = max_sampled_level(v, 63);
            assert!(level_sampled(v, lvl));
            assert!(!level_sampled(v, lvl + 1));
        }
    }

    #[test]
    fn sample_rate_is_about_two_to_minus_level() {
        let mut rng = StdRng::seed_from_u64(4);
        let hasher = CellHasher::new(16, &mut rng);
        let level = 4u32;
        let mut count = 0u32;
        let n = 20_000;
        for x in 0..n {
            if hasher.sampled(&[x, -x + 1], level) {
                count += 1;
            }
        }
        let expect = n >> level;
        assert!(
            (i64::from(count) - expect).unsigned_abs() < 4 * (expect as f64).sqrt() as u64 + 10,
            "count={count}, expect={expect}"
        );
    }

    #[test]
    fn key_and_cell_paths_agree() {
        let mut rng = StdRng::seed_from_u64(6);
        let hasher = CellHasher::new(8, &mut rng);
        let cell = [7i64, 8, -9];
        let key = hasher.cell_key(&cell);
        assert_eq!(hasher.hash_cell(&cell), hasher.hash_key(key));
        assert_eq!(hasher.sampled(&cell, 3), hasher.key_sampled(key, 3));
    }

    #[test]
    fn batch_paths_agree_with_scalar_paths() {
        let mut rng = StdRng::seed_from_u64(8);
        let hasher = CellHasher::new(16, &mut rng);
        let keys: Vec<u64> = (0..37i64).map(|i| hasher.cell_key(&[i, -i, 3])).collect();
        let mut hashes = Vec::new();
        hasher.hash_keys_slice(&keys, &mut hashes);
        assert_eq!(
            hashes,
            keys.iter().map(|&k| hasher.hash_key(k)).collect::<Vec<_>>()
        );
        for level in [0u32, 1, 3, 7] {
            let mut bits = Vec::new();
            level_sampled_slice(&hashes, level, &mut bits);
            assert_eq!(
                bits,
                hashes.iter().map(|&h| level_sampled(h, level)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn mixer_accessor_folds_to_cell_key() {
        let mut rng = StdRng::seed_from_u64(10);
        let hasher = CellHasher::new(8, &mut rng);
        let cell = [4i64, -5, 6];
        let folded = cell
            .iter()
            .fold(hasher.mixer().fold_init(cell.len()), |a, &c| {
                crate::CellKeyMixer::fold_step(a, c)
            });
        assert_eq!(folded, hasher.cell_key(&cell));
    }
}
