//! Folding integer cell coordinates into a single 64-bit key.
//!
//! The paper assigns each grid cell a numerical ID (`(i-1)·Δ + j` in 2-D)
//! and hashes that ID. In `d` dimensions with unbounded coordinates we
//! instead fold the coordinate vector into a `u64` with a seeded
//! SplitMix64-style avalanche, and feed the result to the k-wise
//! independent hash. The fold is a fixed (seeded) injective-in-practice
//! encoding, playing the role of the paper's cell ID assignment.

/// The 64-bit finalizer of SplitMix64 (Stafford variant 13).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded mixer that folds an integer vector into a `u64` key.
///
/// Two mixers with the same seed produce identical keys; distinct seeds
/// give (with overwhelming probability) unrelated keyings. The mixer is
/// deterministic so that the *same* cell always maps to the *same* key —
/// the property all of the paper's bookkeeping relies on.
///
/// # Examples
///
/// ```
/// use rds_hashing::CellKeyMixer;
///
/// let mixer = CellKeyMixer::new(7);
/// assert_eq!(mixer.key(&[1, -2, 3]), mixer.key(&[1, -2, 3]));
/// assert_ne!(mixer.key(&[1, -2, 3]), mixer.key(&[1, -2, 4]));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CellKeyMixer {
    seed: u64,
}

impl CellKeyMixer {
    /// Creates a mixer with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Folds `coords` into a 64-bit key.
    #[inline]
    pub fn key(&self, coords: &[i64]) -> u64 {
        let mut acc = self.fold_init(coords.len());
        for &c in coords {
            acc = Self::fold_step(acc, c);
        }
        acc
    }

    /// The fold carry before any coordinate is absorbed, for a cell of
    /// `dim` coordinates. Together with [`CellKeyMixer::fold_step`] this
    /// exposes the key computation incrementally:
    /// `key(c) == c.iter().fold(fold_init(c.len()), |a, &x| fold_step(a, x))`.
    ///
    /// Callers enumerating many cells that share coordinate prefixes (the
    /// adjacency DFS) reuse partial carries instead of re-folding every
    /// cell from its first coordinate.
    #[inline]
    pub fn fold_init(&self, dim: usize) -> u64 {
        splitmix64(self.seed ^ (dim as u64))
    }

    /// Absorbs one coordinate into a fold carry (see
    /// [`CellKeyMixer::fold_init`]).
    #[inline]
    pub fn fold_step(acc: u64, coord: i64) -> u64 {
        splitmix64(acc ^ (coord as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let a = CellKeyMixer::new(42);
        let b = CellKeyMixer::new(42);
        assert_eq!(a.key(&[5, 6, 7]), b.key(&[5, 6, 7]));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CellKeyMixer::new(1);
        let b = CellKeyMixer::new(2);
        assert_ne!(a.key(&[0, 0]), b.key(&[0, 0]));
    }

    #[test]
    fn order_sensitive() {
        let m = CellKeyMixer::new(3);
        assert_ne!(m.key(&[1, 2]), m.key(&[2, 1]));
    }

    #[test]
    fn length_sensitive() {
        let m = CellKeyMixer::new(3);
        // [1] and [1, 0] must not collide just because 0 is "neutral".
        assert_ne!(m.key(&[1]), m.key(&[1, 0]));
    }

    #[test]
    fn no_collisions_on_a_small_lattice() {
        let m = CellKeyMixer::new(99);
        let mut seen = HashSet::new();
        for x in -20i64..20 {
            for y in -20i64..20 {
                assert!(seen.insert(m.key(&[x, y])), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn incremental_fold_matches_one_shot_key() {
        let m = CellKeyMixer::new(0xFEED);
        for coords in [vec![], vec![3], vec![1, -2, 3], vec![i64::MIN, i64::MAX, 0, 7]] {
            let folded = coords
                .iter()
                .fold(m.fold_init(coords.len()), |a, &c| CellKeyMixer::fold_step(a, c));
            assert_eq!(folded, m.key(&coords));
        }
    }

    #[test]
    fn splitmix_known_value() {
        // Reference value from the SplitMix64 specification: the first
        // output of the generator seeded with 0 is produced by finalizing
        // seed + gamma.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
