//! Hashing exact points to 64-bit identities.
//!
//! The *noiseless* baselines (min-rank ℓ0 sampling, BJKST, HyperLogLog)
//! identify stream items by their exact bit pattern. On data with
//! near-duplicates this is precisely what goes wrong — two near-duplicate
//! points receive unrelated identities — and reproducing that failure mode
//! is the point of the comparison experiments.

use crate::mix::splitmix64;

/// Folds the exact coordinates of a point into a 64-bit identity.
///
/// Two points have equal identities iff their coordinate bit patterns are
/// equal (up to the astronomically unlikely mixer collision); near-duplicate
/// points get unrelated identities, which is the failure mode of noiseless
/// algorithms that the paper's robust algorithms repair.
pub fn point_identity(coords: &[f64], seed: u64) -> u64 {
    let mut acc = splitmix64(seed ^ coords.len() as u64);
    for &c in coords {
        acc = splitmix64(acc ^ c.to_bits());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_points_have_equal_identity() {
        let p = [1.5, -2.25, 0.0];
        assert_eq!(point_identity(&p, 9), point_identity(&p, 9));
    }

    #[test]
    fn near_duplicates_have_unrelated_identity() {
        let p = [1.5, -2.25];
        let q = [1.5 + 1e-12, -2.25];
        assert_ne!(point_identity(&p, 9), point_identity(&q, 9));
    }

    #[test]
    fn seed_changes_identity() {
        let p = [0.25];
        assert_ne!(point_identity(&p, 1), point_identity(&p, 2));
    }

    #[test]
    fn negative_zero_and_zero_differ() {
        // bit-pattern identity, documented behaviour
        assert_ne!(point_identity(&[0.0], 3), point_identity(&[-0.0], 3));
    }
}
