//! `rds` — robust distinct sampling over CSV point streams.
//!
//! See `rds_cli::usage` (printed on `--help` / bad arguments) for the
//! interface; the logic lives in the `rds_cli` library so it is
//! unit-tested.
//!
//! Exit codes: 0 success, 1 I/O or data failure, 2 usage or configuration
//! error (typed `RdsError`s print as one line on stderr — no panic
//! backtraces on bad `--alpha`/`--eps`/`--shards`/`--window`
//! combinations).

use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", rds_cli::usage());
        return ExitCode::SUCCESS;
    }
    // `serve` takes no stream input: bind, announce, run until
    // `POST /admin/shutdown` drains the threads.
    if args.first().map(String::as_str) == Some("serve") {
        let cfg = match rds_cli::parse_serve(&args[1..]) {
            Ok(cfg) => cfg,
            Err(e) => {
                let err = rds_cli::CliError::Usage(e);
                eprintln!("{err}");
                return ExitCode::from(err.exit_code());
            }
        };
        let mut stdout = std::io::stdout().lock();
        return match rds_cli::run_serve(cfg, &mut stdout) {
            Ok(handle) => {
                handle.join();
                eprintln!("rds-server stopped");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(e.exit_code())
            }
        };
    }
    let cli = match rds_cli::parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            let err = rds_cli::CliError::Usage(e);
            eprintln!("{err}");
            return ExitCode::from(err.exit_code());
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    match rds_cli::run(&cli, BufReader::new(stdin.lock()), &mut stdout) {
        Ok(n) => {
            eprintln!("processed {n} points");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
