//! Library half of the `rds` command-line tool: argument parsing, CSV
//! point decoding and the command runners, separated from `main` so they
//! are unit-testable.
//!
//! `sample` and `count` run on the [`Rds`] facade of the umbrella crate,
//! so every (window, shards) combination — including sharded sliding
//! windows — goes through one code path; `heavy` keeps its dedicated
//! structure (heavy hitters are not a sampling problem). Configuration
//! errors surface as typed [`RdsError`]s and exit with code 2; I/O and
//! data errors exit with code 1.

#![warn(missing_docs)]

use rds_core::{RdsError, RobustHeavyHitters};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use robust_distinct_sampling::{Rds, Snapshot};
use std::io::BufRead;

/// Which command to run.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Draw one (or `k`) uniform samples over entities.
    Sample {
        /// Number of distinct samples.
        k: usize,
    },
    /// Estimate the number of distinct entities.
    Count {
        /// Target relative error.
        eps: f64,
    },
    /// Report entities owning more than a `phi` fraction of the stream.
    Heavy {
        /// Frequency threshold.
        phi: f64,
    },
    /// Ingest the stream and persist the published [`Snapshot`] as JSON.
    SnapshotSave {
        /// Where to write the snapshot file.
        path: String,
    },
    /// Answer `query_k` and `f0` offline from a saved snapshot file (no
    /// stream input).
    SnapshotQuery {
        /// The snapshot file to load.
        path: String,
        /// Number of distinct samples to print.
        k: usize,
    },
    /// Ingest the stream and persist a durable full-state checkpoint
    /// (versioned, checksummed container; resumable with
    /// `checkpoint restore`).
    CheckpointSave {
        /// Where to write the checkpoint file.
        path: String,
    },
    /// Restore a checkpoint, resume ingesting from stdin (possibly
    /// empty), then print the estimate and `--k` samples. The sampler
    /// configuration comes from the file's config echo.
    CheckpointRestore {
        /// The checkpoint file to load.
        path: String,
        /// Number of distinct samples to print.
        k: usize,
    },
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The selected command.
    pub command: Command,
    /// Near-duplicate distance threshold.
    pub alpha: f64,
    /// Optional sliding window (`--window N`, sequence-based; `--time`
    /// switches to timestamp expiry with the last column as timestamp).
    pub window: Option<Window>,
    /// PRNG seed.
    pub seed: u64,
    /// Expected stream length (tunes thresholds; an estimate is fine).
    pub expected_len: u64,
    /// Worker shards for the `sample`/`count` pipeline (`--shards N`;
    /// works with and without `--window`; 1 = in-process sampler).
    pub shards: usize,
}

/// How a run failed, split by exit code: usage and configuration errors
/// exit 2, I/O and data errors exit 1.
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// Malformed command line (unknown flag, missing value, out-of-range
    /// parameter caught at parse time).
    Usage(String),
    /// The sampler configuration was rejected by the library's typed
    /// validation ([`RdsError`]) — one line on stderr, never a panic
    /// backtrace.
    Config(RdsError),
    /// I/O failure or malformed stream data.
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Runtime(msg) => write!(f, "{msg}"),
            CliError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl CliError {
    /// The process exit code this error class maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) | CliError::Config(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }
}

/// Parses the command line. `args` excludes the program name.
///
/// # Errors
///
/// Returns a human-readable message on malformed input. Parameter
/// combinations the parser cannot judge (e.g. a NaN `--alpha`) are left
/// to the facade's [`RdsError`] validation at run time.
pub fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(usage)?;
    // `snapshot <save|query> <path>` and `checkpoint <save|restore>
    // <path>` carry two positional operands.
    let mut file_action: Option<(String, String)> = None;
    if cmd == "snapshot" || cmd == "checkpoint" {
        let expects = if cmd == "snapshot" {
            "<save|query>"
        } else {
            "<save|restore>"
        };
        let action = it
            .next()
            .ok_or(format!("{cmd} expects {expects} <path>"))?;
        let path = it
            .next()
            .ok_or(format!("{cmd} {action} expects a file path"))?;
        file_action = Some((action.clone(), path.clone()));
    }
    let mut k = 1usize;
    let mut eps = 0.3f64;
    let mut eps_set = false;
    let mut phi = 0.1f64;
    let mut phi_set = false;
    let mut alpha = None;
    let mut window_len: Option<u64> = None;
    let mut time_based = false;
    let mut seed = 1u64;
    let mut seed_set = false;
    let mut expected_len = 1 << 20;
    let mut expected_len_set = false;
    let mut shards = 1usize;
    let mut shards_set = false;

    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match a.as_str() {
            "--alpha" => alpha = Some(parse_num(val("--alpha")?, "--alpha")?),
            "--k" => k = parse_num::<usize>(val("--k")?, "--k")?,
            "--eps" => {
                eps = parse_num(val("--eps")?, "--eps")?;
                eps_set = true;
            }
            "--phi" => {
                phi = parse_num(val("--phi")?, "--phi")?;
                phi_set = true;
            }
            "--window" => window_len = Some(parse_num(val("--window")?, "--window")?),
            "--time" => time_based = true,
            "--seed" => {
                seed = parse_num(val("--seed")?, "--seed")?;
                seed_set = true;
            }
            "--expected-len" => {
                expected_len = parse_num(val("--expected-len")?, "--expected-len")?;
                expected_len_set = true;
            }
            "--shards" => {
                shards = parse_num(val("--shards")?, "--shards")?;
                shards_set = true;
            }
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let command = match cmd.as_str() {
        "sample" => Command::Sample { k },
        "count" => {
            if !(eps > 0.0 && eps <= 1.0) {
                return Err("--eps must be in (0, 1]".into());
            }
            Command::Count { eps }
        }
        "heavy" => Command::Heavy { phi },
        "snapshot" => match file_action.expect("set above for snapshot") {
            (action, path) if action == "save" => Command::SnapshotSave { path },
            (action, path) if action == "query" => Command::SnapshotQuery { path, k },
            (action, _) => {
                return Err(format!("unknown snapshot action {action}\n{}", usage()))
            }
        },
        "checkpoint" => match file_action.expect("set above for checkpoint") {
            (action, path) if action == "save" => Command::CheckpointSave { path },
            (action, path) if action == "restore" => Command::CheckpointRestore { path, k },
            (action, _) => {
                return Err(format!("unknown checkpoint action {action}\n{}", usage()))
            }
        },
        other => return Err(format!("unknown command {other}\n{}", usage())),
    };
    // File-reading commands take their configuration from the file, not
    // the command line. The restore check runs before alpha is resolved
    // so an explicit `--alpha 0.0` is caught too, and inert flags
    // (`--eps`, `--phi`) are rejected rather than silently ignored.
    if matches!(command, Command::CheckpointRestore { .. })
        && (alpha.is_some()
            || window_len.is_some()
            || time_based
            || seed_set
            || expected_len_set
            || shards_set
            || eps_set
            || phi_set)
    {
        return Err(
            "checkpoint restore reads the sampler configuration from the \
             file's config echo; --alpha/--window/--time/--seed/\
             --expected-len/--shards/--eps/--phi do not apply"
                .into(),
        );
    }
    let reads_config_from_file = matches!(
        command,
        Command::SnapshotQuery { .. } | Command::CheckpointRestore { .. }
    );
    let alpha = if reads_config_from_file {
        alpha.unwrap_or(0.0)
    } else {
        let alpha = alpha.ok_or("--alpha is required".to_string())?;
        if alpha <= 0.0 {
            return Err("--alpha must be positive".into());
        }
        alpha
    };
    let window = window_len.map(|w| {
        if time_based {
            Window::Time(w)
        } else {
            Window::Sequence(w)
        }
    });
    if matches!(command, Command::Heavy { .. }) && window.is_some() {
        return Err("heavy does not support --window".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > 1 && matches!(command, Command::Heavy { .. }) {
        return Err("heavy does not support --shards".into());
    }
    if matches!(command, Command::SnapshotQuery { .. })
        && (window.is_some() || shards > 1)
    {
        return Err("snapshot query reads a file; --window/--shards do not apply".into());
    }
    Ok(Cli {
        command,
        alpha,
        window,
        seed,
        expected_len,
        shards,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{name}: invalid number {s}"))
}

/// Parses `serve` arguments (everything after the `serve` word) into a
/// [`rds_server::ServerConfig`].
///
/// `--dim` and `--alpha` are required unless `--restore PATH` is given,
/// in which case the checkpoint's config echo is authoritative and the
/// stream-configuration flags are rejected (mirroring `checkpoint
/// restore`); `--publish-every` stays honored either way.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_serve(args: &[String]) -> Result<rds_server::ServerConfig, String> {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut threads: Option<usize> = None;
    let mut max_body: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut read_timeout: Option<u64> = None;
    let mut dim: Option<usize> = None;
    let mut alpha: Option<f64> = None;
    let mut window_len: Option<u64> = None;
    let mut time_based = false;
    let mut shards: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut expected_len: Option<u64> = None;
    let mut k: Option<usize> = None;
    let mut eps: Option<f64> = None;
    let mut publish_every: Option<u64> = None;
    let mut restore: Option<String> = None;
    let mut tenants = false;
    let mut budget_words: Option<usize> = None;
    let mut spill_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match a.as_str() {
            "--addr" => addr = val("--addr")?.clone(),
            "--threads" => threads = Some(parse_num(val("--threads")?, "--threads")?),
            "--max-body-bytes" => {
                max_body = Some(parse_num(val("--max-body-bytes")?, "--max-body-bytes")?);
            }
            "--queue-depth" => {
                queue_depth = Some(parse_num(val("--queue-depth")?, "--queue-depth")?);
            }
            "--read-timeout-ms" => {
                read_timeout = Some(parse_num(val("--read-timeout-ms")?, "--read-timeout-ms")?);
            }
            "--dim" => dim = Some(parse_num(val("--dim")?, "--dim")?),
            "--alpha" => alpha = Some(parse_num(val("--alpha")?, "--alpha")?),
            "--window" => window_len = Some(parse_num(val("--window")?, "--window")?),
            "--time" => time_based = true,
            "--shards" => shards = Some(parse_num(val("--shards")?, "--shards")?),
            "--seed" => seed = Some(parse_num(val("--seed")?, "--seed")?),
            "--expected-len" => {
                expected_len = Some(parse_num(val("--expected-len")?, "--expected-len")?);
            }
            "--k" => k = Some(parse_num(val("--k")?, "--k")?),
            "--eps" => eps = Some(parse_num(val("--eps")?, "--eps")?),
            "--publish-every" => {
                publish_every = Some(parse_num(val("--publish-every")?, "--publish-every")?);
            }
            "--restore" => restore = Some(val("--restore")?.clone()),
            "--tenants" => tenants = true,
            "--budget-words" => {
                budget_words = Some(parse_num(val("--budget-words")?, "--budget-words")?);
            }
            "--spill-dir" => spill_dir = Some(val("--spill-dir")?.clone()),
            other => return Err(format!("unknown serve option {other}\n{}", usage())),
        }
    }

    let backend = if let Some(path) = restore {
        if dim.is_some()
            || alpha.is_some()
            || window_len.is_some()
            || time_based
            || shards.is_some()
            || seed.is_some()
            || expected_len.is_some()
            || k.is_some()
            || eps.is_some()
        {
            return Err(
                "serve --restore reads the sampler configuration from the \
                 file's config echo; --dim/--alpha/--window/--time/--shards/\
                 --seed/--expected-len/--k/--eps do not apply \
                 (--publish-every still does)"
                    .into(),
            );
        }
        let mut b = rds_server::BackendConfig::new(0, 0.0);
        b.restore_from = Some(path);
        b
    } else {
        let dim = dim.ok_or("serve needs --dim (or --restore)".to_string())?;
        let alpha = alpha.ok_or("serve needs --alpha (or --restore)".to_string())?;
        if alpha <= 0.0 {
            return Err("--alpha must be positive".into());
        }
        let mut b = rds_server::BackendConfig::new(dim, alpha);
        if let Some(w) = window_len {
            b.window = if time_based {
                Window::Time(w)
            } else {
                Window::Sequence(w)
            };
        } else if time_based {
            return Err("--time needs --window".into());
        }
        if let Some(s) = shards {
            if s == 0 {
                return Err("--shards must be at least 1".into());
            }
            b.shards = s;
        }
        if let Some(s) = seed {
            b.seed = s;
        }
        if let Some(m) = expected_len {
            b.expected_len = m;
        }
        b.k = k;
        b.eps = eps;
        b
    };
    let mut backend = backend;
    backend.publish_every = publish_every;
    let mut cfg = rds_server::ServerConfig::new(backend);
    cfg.addr = addr;
    if let Some(t) = threads {
        if t == 0 {
            return Err("--threads must be at least 1".into());
        }
        cfg.threads = t;
    }
    if let Some(m) = max_body {
        cfg.max_body_bytes = m;
    }
    if let Some(q) = queue_depth {
        cfg.queue_depth = q;
    }
    if let Some(r) = read_timeout {
        cfg.read_timeout_ms = r;
    }
    if tenants {
        let budget_words =
            budget_words.ok_or("--tenants needs --budget-words N (global space budget)")?;
        if budget_words == 0 {
            return Err("--budget-words must be at least 1".into());
        }
        let spill_dir =
            spill_dir.ok_or("--tenants needs --spill-dir PATH (eviction spill directory)")?;
        cfg.tenants = Some(rds_server::TenancyConfig {
            budget_words,
            spill_dir,
        });
    } else if budget_words.is_some() || spill_dir.is_some() {
        return Err("--budget-words/--spill-dir only apply with --tenants".into());
    }
    Ok(cfg)
}

/// Binds the HTTP server and announces the resolved address on `out`
/// (flushed before returning, so scripts can poll the line even when
/// stdout is a pipe). The caller joins the returned handle; the process
/// then runs until `POST /admin/shutdown`.
///
/// # Errors
///
/// [`CliError::Config`] when the backend configuration is rejected,
/// [`CliError::Runtime`] when the address cannot be bound.
pub fn run_serve<W: std::io::Write>(
    cfg: rds_server::ServerConfig,
    out: &mut W,
) -> Result<rds_server::ServerHandle, CliError> {
    let handle = rds_server::bind(cfg).map_err(|e| match e {
        rds_server::ServerError::Config(e) => CliError::Config(e),
        rds_server::ServerError::Io(e) => CliError::Runtime(format!("bind: {e}")),
    })?;
    writeln!(out, "rds-server listening on {}", handle.addr())
        .and_then(|()| out.flush())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    Ok(handle)
}

/// The usage string.
pub fn usage() -> String {
    "usage: rds <sample|count|heavy|snapshot|checkpoint|serve> --alpha A [options] < points.csv\n\
     \n\
     Points arrive on stdin, one per line, comma- or whitespace-separated\n\
     coordinates. With --time, the LAST column is the item's timestamp.\n\
     Invalid flags or parameter combinations exit with code 2.\n\
     \n\
     commands:\n\
     \x20 sample                print a uniform random entity\n\
     \x20 count                 print the estimated number of entities\n\
     \x20 heavy                 print entities above a frequency threshold\n\
     \x20 snapshot save <path>  ingest stdin, persist the snapshot as JSON\n\
     \x20 snapshot query <path> answer --k samples + f0 offline from a\n\
     \x20                       saved snapshot (no stream input; --seed\n\
     \x20                       varies or replays the draw)\n\
     \x20 checkpoint save <path>     ingest stdin, persist the sampler's\n\
     \x20                       full state (versioned, checksummed; any\n\
     \x20                       window/shard combination)\n\
     \x20 checkpoint restore <path>  restore the state, resume ingesting\n\
     \x20                       stdin (may be empty), print f0 + --k\n\
     \x20                       samples; config comes from the file\n\
     \x20 serve                 serve the sampler over HTTP (no stdin);\n\
     \x20                       needs --dim D --alpha A, or --restore\n\
     \x20                       <path> to boot from a checkpoint. Extra\n\
     \x20                       flags: --addr H:P (default 127.0.0.1:8080;\n\
     \x20                       port 0 = ephemeral), --threads N,\n\
     \x20                       --publish-every N, --max-body-bytes B,\n\
     \x20                       --queue-depth Q, --read-timeout-ms T.\n\
     \x20                       Multi-tenant mode: --tenants with\n\
     \x20                       --budget-words N (global space budget)\n\
     \x20                       and --spill-dir PATH (eviction spill\n\
     \x20                       directory) serves keyed streams under\n\
     \x20                       /t/{tenant}/ingest|query|query_k|f0.\n\
     \x20                       Runs until POST /admin/shutdown.\n\
     options:\n\
     \x20 --alpha A          near-duplicate distance threshold (required)\n\
     \x20 --k N              number of distinct samples (sample; default 1)\n\
     \x20 --eps E            accuracy target (count; default 0.3; one\n\
     \x20                    threshold-tuned estimate, sharded or not)\n\
     \x20 --phi P            frequency threshold (heavy; default 0.1)\n\
     \x20 --window W         restrict to the last W items\n\
     \x20 --time             window is time-based (last column = timestamp)\n\
     \x20 --seed S           PRNG seed (default 1)\n\
     \x20 --expected-len M   expected stream length (default 2^20)\n\
     \x20 --shards N         shard ingestion across N workers\n\
     \x20                    (sample/count, any window model; default 1)\n"
        .to_string()
}

/// Parses one CSV/whitespace line into coordinates (and, with
/// `with_time`, splits off the trailing timestamp).
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_line(line: &str, with_time: bool) -> Result<Option<(Point, u64)>, String> {
    let tokens: Vec<&str> = line
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.is_empty() || tokens[0].starts_with('#') {
        return Ok(None);
    }
    let (coord_tokens, time) = if with_time {
        let (last, rest) = tokens.split_last().ok_or("empty line")?;
        let t: u64 = last
            .parse()
            .map_err(|_| format!("invalid timestamp {last}"))?;
        (rest, t)
    } else {
        (&tokens[..], 0)
    };
    if coord_tokens.is_empty() {
        return Err("line has a timestamp but no coordinates".into());
    }
    let coords: Result<Vec<f64>, String> = coord_tokens
        .iter()
        .map(|t| t.parse().map_err(|_| format!("invalid coordinate {t}")))
        .collect();
    Ok(Some((Point::new(coords?), time)))
}

/// Builds the facade handle for `sample`/`count` once the stream
/// dimension is known.
fn build_rds(cli: &Cli, dim: usize) -> Result<Rds, RdsError> {
    let mut b = Rds::builder()
        .dim(dim)
        .alpha(cli.alpha)
        .seed(cli.seed)
        .expected_len(cli.expected_len)
        .window(cli.window.unwrap_or(Window::Infinite))
        .shards(cli.shards);
    match &cli.command {
        Command::Sample { k } => b = b.k((*k).max(1)),
        Command::Count { eps } => b = b.count_accuracy(*eps),
        Command::SnapshotSave { .. } | Command::CheckpointSave { .. } => {}
        Command::Heavy { .. }
        | Command::SnapshotQuery { .. }
        | Command::CheckpointRestore { .. } => {
            unreachable!("command does not build a streaming handle")
        }
    }
    b.build()
}

/// Runs the tool against a reader, writing human-readable results to a
/// writer. Returns the number of points processed.
///
/// # Errors
///
/// [`CliError::Config`] for rejected sampler parameters (exit 2),
/// [`CliError::Runtime`] for I/O and data failures (exit 1).
pub fn run<R: BufRead, W: std::io::Write>(
    cli: &Cli,
    input: R,
    out: &mut W,
) -> Result<u64, CliError> {
    if let Command::SnapshotQuery { path, k } = &cli.command {
        return run_snapshot_query(path, *k, cli.seed, out);
    }
    if let Command::CheckpointRestore { path, k } = &cli.command {
        return run_checkpoint_restore(path, *k, input, out);
    }
    let with_time = matches!(cli.window, Some(Window::Time(_)));
    let mut dim: Option<usize> = None;
    let mut n = 0u64;

    // lazily constructed once the dimension is known
    let mut rds: Option<Rds> = None;
    let mut heavy: Option<RobustHeavyHitters> = None;

    for line in input.lines() {
        let line = line.map_err(|e| CliError::Runtime(e.to_string()))?;
        let Some((point, time)) = parse_line(&line, with_time).map_err(CliError::Runtime)?
        else {
            continue;
        };
        let d = *dim.get_or_insert(point.dim());
        if point.dim() != d {
            return Err(CliError::Runtime(format!(
                "dimension changed from {d} to {} at line {n}",
                point.dim()
            )));
        }
        if rds.is_none() && heavy.is_none() {
            if let Command::Heavy { phi } = &cli.command {
                heavy = Some(
                    RobustHeavyHitters::try_new(*phi, cli.alpha).map_err(CliError::Config)?,
                );
            } else {
                rds = Some(build_rds(cli, d).map_err(CliError::Config)?);
            }
        }
        if let Some(r) = rds.as_mut() {
            let stamp = if with_time {
                Stamp::new(n, time)
            } else {
                Stamp::at(n)
            };
            r.process_item(StreamItem::new(point, stamp));
        } else if let Some(h) = heavy.as_mut() {
            h.process(&point);
        }
        n += 1;
    }

    let w = |out: &mut W, s: String| {
        writeln!(out, "{s}").map_err(|e| CliError::Runtime(e.to_string()))
    };
    match &cli.command {
        Command::Sample { k } => {
            if let Some(mut r) = rds {
                for rec in r.query_k(*k) {
                    w(out, format!("{:?} (seen {} times)", rec.rep.coords(), rec.count))?;
                }
            }
        }
        Command::Count { .. } => {
            if let Some(mut r) = rds {
                w(out, format!("{:.1}", r.f0_estimate()))?;
            }
        }
        Command::Heavy { .. } => {
            if let Some(h) = heavy {
                for g in h.heavy_hitters() {
                    w(
                        out,
                        format!(
                            "{:?} count>={} (+/-{})",
                            g.rep.coords(),
                            g.count.saturating_sub(g.error),
                            g.error
                        ),
                    )?;
                }
            }
        }
        Command::SnapshotSave { path } => {
            let Some(mut r) = rds else {
                return Err(CliError::Runtime(
                    "snapshot save needs at least one input point".into(),
                ));
            };
            let snap = r.snapshot();
            let json = serde_json::to_string(&*snap)
                .map_err(|e| CliError::Runtime(format!("serialize snapshot: {e}")))?;
            rds_core::persist::write_atomic(path, json)
                .map_err(|e| CliError::Runtime(format!("write {path}: {e}")))?;
            w(
                out,
                format!(
                    "snapshot epoch {} covering {} items -> {path}",
                    snap.epoch(),
                    snap.seen()
                ),
            )?;
        }
        Command::CheckpointSave { path } => {
            let Some(mut r) = rds else {
                return Err(CliError::Runtime(
                    "checkpoint save needs at least one input point".into(),
                ));
            };
            let f0 = r.f0_estimate();
            r.checkpoint_to(path)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            w(
                out,
                format!("checkpoint covering {n} items f0 {f0:.1} -> {path}"),
            )?;
        }
        Command::SnapshotQuery { .. } | Command::CheckpointRestore { .. } => {
            unreachable!("handled before the input loop")
        }
    }
    Ok(n)
}

/// Restores a checkpoint, resumes ingesting the reader's stream (which
/// may be empty), then prints `f0 <estimate> seen <total>` and `k`
/// samples. Stamps continue from the checkpointed arrival counter; for a
/// time-based window the last input column is the item's timestamp, as
/// with `--time`.
fn run_checkpoint_restore<R: BufRead, W: std::io::Write>(
    path: &str,
    k: usize,
    input: R,
    out: &mut W,
) -> Result<u64, CliError> {
    let (mut writer, reader) = Rds::builder()
        .restore_from(path)
        .map_err(CliError::Config)?;
    let with_time = matches!(writer.window(), Window::Time(_));
    let dim = writer.dim();
    let base = writer.seen();
    let mut n = 0u64;
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Runtime(e.to_string()))?;
        let Some((point, time)) = parse_line(&line, with_time).map_err(CliError::Runtime)?
        else {
            continue;
        };
        if point.dim() != dim {
            return Err(CliError::Runtime(format!(
                "resumed stream has dimension {} but the checkpoint was \
                 built for dimension {dim}",
                point.dim()
            )));
        }
        let stamp = if with_time {
            Stamp::new(base + n, time)
        } else {
            Stamp::at(base + n)
        };
        writer.process_item(StreamItem::new(point, stamp));
        n += 1;
    }
    writer.publish();
    let w = |out: &mut W, s: String| {
        writeln!(out, "{s}").map_err(|e| CliError::Runtime(e.to_string()))
    };
    w(
        out,
        format!("f0 {:.1} seen {}", reader.f0_estimate(), reader.seen()),
    )?;
    for rec in reader.query_k(k.max(1)) {
        w(out, format!("{:?} (seen {} times)", rec.rep.coords(), rec.count))?;
    }
    Ok(n)
}

/// Answers `query_k` and `f0` offline from a snapshot file. The `seed`
/// picks the draw token, so repeated invocations can replay or vary the
/// sample.
fn run_snapshot_query<W: std::io::Write>(
    path: &str,
    k: usize,
    seed: u64,
    out: &mut W,
) -> Result<u64, CliError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("read {path}: {e}")))?;
    let snap: Snapshot = serde_json::from_str(&json)
        .map_err(|e| CliError::Runtime(format!("parse {path}: {e}")))?;
    let w = |out: &mut W, s: String| {
        writeln!(out, "{s}").map_err(|e| CliError::Runtime(e.to_string()))
    };
    w(
        out,
        format!(
            "epoch {} seen {} f0 {:.1}",
            snap.epoch(),
            snap.seen(),
            snap.f0_estimate()
        ),
    )?;
    for rec in snap.query_k_at(k.max(1), seed) {
        w(out, format!("{:?} (seen {} times)", rec.rep.coords(), rec.count))?;
    }
    Ok(snap.seen())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_sample_command() {
        let cli = parse_cli(&args("sample --alpha 0.5 --k 3 --seed 9")).expect("valid");
        assert_eq!(cli.command, Command::Sample { k: 3 });
        assert_eq!(cli.alpha, 0.5);
        assert_eq!(cli.seed, 9);
        assert!(cli.window.is_none());
    }

    #[test]
    fn parses_windowed_time_command() {
        let cli = parse_cli(&args("count --alpha 1.0 --eps 0.2 --window 100 --time"))
            .expect("valid");
        assert_eq!(cli.command, Command::Count { eps: 0.2 });
        assert_eq!(cli.window, Some(Window::Time(100)));
    }

    #[test]
    fn rejects_missing_alpha() {
        assert!(parse_cli(&args("sample --k 2")).is_err());
    }

    #[test]
    fn rejects_unknown_command() {
        assert!(parse_cli(&args("frobnicate --alpha 1")).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(parse_cli(&args("sample --alpha banana")).is_err());
        assert!(parse_cli(&args("sample --alpha 1 --k -3")).is_err());
    }

    #[test]
    fn rejects_out_of_range_eps_at_parse_time() {
        // Regression: --eps 0 on the sharded path used to saturate the
        // kappa_B/eps^2 threshold instead of erroring.
        for bad in ["0", "-0.5", "1.5", "nan"] {
            let err = parse_cli(&args(&format!("count --alpha 0.5 --eps {bad}")))
                .expect_err("invalid eps");
            assert!(err.contains("--eps"), "error: {err}");
        }
        assert!(parse_cli(&args("count --alpha 0.5 --eps 1.0")).is_ok());
    }

    #[test]
    fn nan_alpha_is_a_typed_config_error_not_a_panic() {
        // "nan" parses as f64 and slips past the sign check; the facade's
        // typed validation must catch it — one line, exit code 2.
        let cli = parse_cli(&args("sample --alpha nan")).expect("parses");
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new("1,2\n"), &mut out).expect_err("invalid alpha");
        assert!(matches!(err, CliError::Config(RdsError::InvalidAlpha { .. })));
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("alpha"), "message: {err}");
    }

    #[test]
    fn parses_csv_and_whitespace_lines() {
        let (p, _) = parse_line("1.5, 2.5, -3", false).expect("valid").expect("point");
        assert_eq!(p, Point::new(vec![1.5, 2.5, -3.0]));
        let (p2, _) = parse_line("  4 5 6 ", false).expect("valid").expect("point");
        assert_eq!(p2.dim(), 3);
    }

    #[test]
    fn parses_trailing_timestamp() {
        let (p, t) = parse_line("1,2,77", true).expect("valid").expect("point");
        assert_eq!(p, Point::new(vec![1.0, 2.0]));
        assert_eq!(t, 77);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        assert!(parse_line("", false).expect("ok").is_none());
        assert!(parse_line("# header", false).expect("ok").is_none());
    }

    #[test]
    fn rejects_garbage_coordinates() {
        assert!(parse_line("1,two,3", false).is_err());
        assert!(parse_line("1,2,notatime", true).is_err());
    }

    #[test]
    fn end_to_end_sample() {
        let cli = parse_cli(&args("sample --alpha 0.5 --seed 3")).expect("valid");
        let mut input = String::new();
        for i in 0..50 {
            input.push_str(&format!("{}.0, 0.0\n", (i % 5) * 10));
        }
        let mut out = Vec::new();
        let n = run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert_eq!(n, 50);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("seen"), "output: {text}");
    }

    #[test]
    fn end_to_end_count() {
        let cli = parse_cli(&args("count --alpha 0.5 --eps 1.0")).expect("valid");
        let mut input = String::new();
        for i in 0..60 {
            input.push_str(&format!("{}.0\n", (i % 6) * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert_eq!(est, 6.0);
    }

    #[test]
    fn end_to_end_heavy() {
        let cli = parse_cli(&args("heavy --alpha 0.5 --phi 0.4")).expect("valid");
        let mut input = String::new();
        for i in 0..100 {
            let g = if i % 2 == 0 { 0 } else { 1 + i % 7 };
            input.push_str(&format!("{}.0\n", g * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.lines().count() == 1, "only group 0 is heavy: {text}");
    }

    #[test]
    fn end_to_end_windowed_count_sees_only_live_points() {
        // 25 points cycling 5 far-apart groups, then 10 points all in group
        // 0. With a sequence window of 10 only group 0 is live, so the
        // windowed estimate must be far below the whole-stream 5 groups.
        let cli = parse_cli(&args("count --alpha 0.5 --window 10")).expect("valid");
        let mut input = String::new();
        for i in 0..25 {
            input.push_str(&format!("{}.0\n", (i % 5) * 10));
        }
        for _ in 0..10 {
            input.push_str("0.0\n");
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert!((1.0..2.0).contains(&est), "windowed estimate: {est}");
    }

    #[test]
    fn end_to_end_time_windowed_count_expires_old_timestamps() {
        // Timestamps 1, 2, 9 with a time window of 3: only the last point
        // (time 9) is live at the end of the stream.
        let cli = parse_cli(&args("count --alpha 0.5 --window 3 --time")).expect("valid");
        let input = "0,0,1\n5,5,2\n9,1,9\n";
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert!((1.0..2.0).contains(&est), "time-windowed estimate: {est}");
    }

    #[test]
    fn rejects_heavy_with_window_at_parse_time() {
        let err = parse_cli(&args("heavy --alpha 0.5 --window 5")).expect_err("invalid");
        assert!(err.contains("--window"), "error: {err}");
    }

    #[test]
    fn parses_shards_flag() {
        let cli = parse_cli(&args("count --alpha 0.5 --shards 8")).expect("valid");
        assert_eq!(cli.shards, 8);
        let cli = parse_cli(&args("sample --alpha 0.5")).expect("valid");
        assert_eq!(cli.shards, 1, "default is unsharded");
    }

    #[test]
    fn rejects_invalid_shard_combinations_at_parse_time() {
        let err = parse_cli(&args("count --alpha 0.5 --shards 0")).expect_err("invalid");
        assert!(err.contains("--shards"), "error: {err}");
        let err =
            parse_cli(&args("heavy --alpha 0.5 --shards 4")).expect_err("invalid");
        assert!(err.contains("--shards"), "error: {err}");
    }

    #[test]
    fn end_to_end_sharded_count_matches_unsharded() {
        // 12 well-separated entities, 10 observations each: both pipelines
        // count them exactly.
        let mut input = String::new();
        for i in 0..120 {
            input.push_str(&format!("{}.0\n", (i % 12) * 10));
        }
        let run_with = |extra: &str| -> f64 {
            let cli = parse_cli(&args(&format!("count --alpha 0.5 --eps 1.0{extra}")))
                .expect("valid");
            let mut out = Vec::new();
            run(&cli, Cursor::new(input.clone()), &mut out).expect("runs");
            String::from_utf8(out).expect("utf8").trim().parse().expect("a number")
        };
        assert_eq!(run_with(" --shards 4"), 12.0);
        assert_eq!(run_with(""), run_with(" --shards 4"));
    }

    #[test]
    fn end_to_end_sharded_sample() {
        let cli =
            parse_cli(&args("sample --alpha 0.5 --k 3 --shards 4 --seed 2")).expect("valid");
        let mut input = String::new();
        for i in 0..100 {
            input.push_str(&format!("{}.0, 0.0\n", (i % 10) * 10));
        }
        let mut out = Vec::new();
        let n = run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert_eq!(n, 100);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.lines().count(), 3, "three distinct samples: {text}");
        assert!(text.contains("seen"), "output: {text}");
    }

    #[test]
    fn end_to_end_sharded_windowed_count() {
        // The combination the old CLI rejected: shards + window. 16 groups
        // cycle, then only group 0 streams for a full window — the sharded
        // windowed count must slide down to 1.
        let cli = parse_cli(&args("count --alpha 0.5 --eps 1.0 --window 32 --shards 3"))
            .expect("valid");
        let mut input = String::new();
        for i in 0..256 {
            input.push_str(&format!("{}.0\n", (i % 16) * 10));
        }
        for _ in 0..64 {
            input.push_str("0.0\n");
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert_eq!(est, 1.0, "sharded windowed estimate: {est}");
    }

    #[test]
    fn end_to_end_windowed_sample() {
        let cli = parse_cli(&args("sample --alpha 0.5 --window 10")).expect("valid");
        let mut input = String::new();
        for i in 0..40 {
            input.push_str(&format!("{}.0\n", (i % 20) * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert!(!out.is_empty());
    }

    #[test]
    fn parses_snapshot_commands() {
        let cli = parse_cli(&args("snapshot save /tmp/s.json --alpha 0.5 --seed 4"))
            .expect("valid");
        assert_eq!(
            cli.command,
            Command::SnapshotSave { path: "/tmp/s.json".into() }
        );
        let cli = parse_cli(&args("snapshot query /tmp/s.json --k 2")).expect("valid");
        assert_eq!(
            cli.command,
            Command::SnapshotQuery { path: "/tmp/s.json".into(), k: 2 }
        );
    }

    #[test]
    fn snapshot_usage_errors_at_parse_time() {
        assert!(parse_cli(&args("snapshot")).is_err());
        assert!(parse_cli(&args("snapshot save")).is_err());
        assert!(parse_cli(&args("snapshot frobnicate /tmp/x --alpha 1")).is_err());
        // save ingests a stream, so alpha is required
        assert!(parse_cli(&args("snapshot save /tmp/x.json")).is_err());
        // query reads a file; stream flags are rejected
        assert!(parse_cli(&args("snapshot query /tmp/x.json --shards 4")).is_err());
        assert!(parse_cli(&args("snapshot query /tmp/x.json --window 5")).is_err());
    }

    #[test]
    fn snapshot_save_then_query_round_trips_offline() {
        let dir = std::env::temp_dir().join(format!("rds-cli-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("snapshot.json");
        let path_str = path.to_str().expect("utf8 path").to_string();

        // 8 well-separated entities, 10 observations each
        let mut input = String::new();
        for i in 0..80 {
            input.push_str(&format!("{}.0, 1.0\n", (i % 8) * 10));
        }
        let cli = parse_cli(&args(&format!(
            "snapshot save {path_str} --alpha 0.5 --seed 9"
        )))
        .expect("valid");
        let mut out = Vec::new();
        let n = run(&cli, Cursor::new(input), &mut out).expect("saves");
        assert_eq!(n, 80);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains(&path_str), "save output: {text}");

        // offline: no stream input at all
        let cli = parse_cli(&args(&format!("snapshot query {path_str} --k 3")))
            .expect("valid");
        let mut out = Vec::new();
        run(&cli, Cursor::new(""), &mut out).expect("queries");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("f0 8.0"), "query output: {text}");
        assert_eq!(text.lines().count(), 4, "header + 3 samples: {text}");

        // the draw token replays: same --seed, same samples
        let run_with_seed = |seed: u64| -> String {
            let cli = parse_cli(&args(&format!(
                "snapshot query {path_str} --k 2 --seed {seed}"
            )))
            .expect("valid");
            let mut out = Vec::new();
            run(&cli, Cursor::new(""), &mut out).expect("queries");
            String::from_utf8(out).expect("utf8")
        };
        assert_eq!(run_with_seed(7), run_with_seed(7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_save_of_empty_stream_is_a_runtime_error() {
        let cli = parse_cli(&args("snapshot save /tmp/never-written.json --alpha 0.5"))
            .expect("valid");
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new(""), &mut out).expect_err("no points");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn snapshot_query_of_missing_file_is_a_runtime_error() {
        let cli = parse_cli(&args("snapshot query /tmp/does-not-exist-rds.json"))
            .expect("valid");
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new(""), &mut out).expect_err("missing file");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn parses_checkpoint_commands() {
        let cli = parse_cli(&args("checkpoint save /tmp/c.json --alpha 0.5 --seed 4"))
            .expect("valid");
        assert_eq!(
            cli.command,
            Command::CheckpointSave { path: "/tmp/c.json".into() }
        );
        let cli = parse_cli(&args("checkpoint restore /tmp/c.json --k 2")).expect("valid");
        assert_eq!(
            cli.command,
            Command::CheckpointRestore { path: "/tmp/c.json".into(), k: 2 }
        );
    }

    #[test]
    fn checkpoint_usage_errors_at_parse_time() {
        assert!(parse_cli(&args("checkpoint")).is_err());
        assert!(parse_cli(&args("checkpoint save")).is_err());
        assert!(parse_cli(&args("checkpoint frobnicate /tmp/x --alpha 1")).is_err());
        // save ingests a stream, so alpha is required
        assert!(parse_cli(&args("checkpoint save /tmp/x.json")).is_err());
        // restore reads the config from the file; stream flags are rejected
        for bad in [
            "checkpoint restore /tmp/x.json --alpha 0.5",
            "checkpoint restore /tmp/x.json --alpha 0.0", // 0.0 must not slip through
            "checkpoint restore /tmp/x.json --window 5",
            "checkpoint restore /tmp/x.json --shards 4",
            "checkpoint restore /tmp/x.json --seed 7",
            "checkpoint restore /tmp/x.json --expected-len 100",
            "checkpoint restore /tmp/x.json --eps 0.1", // inert flags rejected too
            "checkpoint restore /tmp/x.json --phi 0.2",
        ] {
            let err = parse_cli(&args(bad)).expect_err("invalid");
            assert!(err.contains("config echo"), "error for `{bad}`: {err}");
        }
    }

    #[test]
    fn checkpoint_save_restore_resumes_the_stream() {
        let dir = std::env::temp_dir().join(format!("rds-cli-chk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("writer.chk");
        let path_str = path.to_str().expect("utf8 path").to_string();

        // 12 well-separated entities; first half of the stream, then crash
        let line = |i: u64| format!("{}.0, 2.0\n", (i % 12) * 10);
        let first: String = (0..60).map(line).collect();
        let second: String = (60..120).map(line).collect();
        let full: String = (0..120).map(line).collect();

        let save = parse_cli(&args(&format!(
            "checkpoint save {path_str} --alpha 0.5 --seed 11 --shards 2"
        )))
        .expect("valid");
        let mut out = Vec::new();
        let n = run(&save, Cursor::new(first), &mut out).expect("saves");
        assert_eq!(n, 60);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("f0 12.0"), "save output: {text}");

        // restore + resume the second half: same estimate as one
        // uninterrupted count over the full stream
        let restore = parse_cli(&args(&format!("checkpoint restore {path_str} --k 3")))
            .expect("valid");
        let mut out = Vec::new();
        let n = run(&restore, Cursor::new(second), &mut out).expect("restores");
        assert_eq!(n, 60, "only the resumed items are counted");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("f0 12.0 seen 120"), "restore output: {text}");
        assert_eq!(text.lines().count(), 4, "header + 3 samples: {text}");

        // restore with empty stdin serves the pre-crash state
        let mut out = Vec::new();
        run(&restore, Cursor::new(""), &mut out).expect("restores empty");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("f0 12.0 seen 60"), "empty-restore output: {text}");

        // reference: one uninterrupted save over the full stream reports
        // the same estimate the crash-recovered pipeline reached
        let full_path = dir.join("full.chk");
        let save_full = parse_cli(&args(&format!(
            "checkpoint save {} --alpha 0.5 --seed 11 --shards 2",
            full_path.to_str().expect("utf8")
        )))
        .expect("valid");
        let mut out = Vec::new();
        run(&save_full, Cursor::new(full), &mut out).expect("saves full");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("f0 12.0"), "uninterrupted output: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_restore_of_corrupt_file_is_a_config_error() {
        let dir = std::env::temp_dir().join(format!("rds-cli-chk-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.chk");
        std::fs::write(&path, "{\"magic\":\"nope\"}").expect("writes");
        let cli = parse_cli(&args(&format!(
            "checkpoint restore {}",
            path.to_str().expect("utf8")
        )))
        .expect("valid");
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new(""), &mut out).expect_err("corrupt");
        assert!(
            matches!(&err, CliError::Config(RdsError::Checkpoint { .. })),
            "got {err:?}"
        );
        assert_eq!(err.exit_code(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_save_of_empty_stream_is_a_runtime_error() {
        let cli = parse_cli(&args("checkpoint save /tmp/never-written.chk --alpha 0.5"))
            .expect("valid");
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new(""), &mut out).expect_err("no points");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn parses_serve_flags() {
        let cfg = parse_serve(&args(
            "--addr 127.0.0.1:0 --dim 3 --alpha 0.5 --threads 2 --seed 7 \
             --publish-every 50 --window 100 --time --max-body-bytes 2048",
        ))
        .expect("valid");
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.max_body_bytes, 2048);
        assert_eq!(cfg.backend.dim, 3);
        assert_eq!(cfg.backend.seed, 7);
        assert_eq!(cfg.backend.window, Window::Time(100));
        assert_eq!(cfg.backend.publish_every, Some(50));
        assert!(cfg.backend.restore_from.is_none());
    }

    #[test]
    fn parses_serve_tenancy_flags() {
        let cfg = parse_serve(&args(
            "--dim 2 --alpha 0.5 --tenants --budget-words 1048576 --spill-dir /tmp/spill",
        ))
        .expect("valid");
        let tc = cfg.tenants.expect("tenancy enabled");
        assert_eq!(tc.budget_words, 1_048_576);
        assert_eq!(tc.spill_dir, "/tmp/spill");
        // single-tenant serve stays the default
        let cfg = parse_serve(&args("--dim 2 --alpha 0.5")).expect("valid");
        assert!(cfg.tenants.is_none());
    }

    #[test]
    fn serve_tenancy_flags_are_all_or_nothing() {
        // --tenants needs both the budget and the spill directory
        assert!(parse_serve(&args("--dim 2 --alpha 0.5 --tenants")).is_err());
        assert!(
            parse_serve(&args("--dim 2 --alpha 0.5 --tenants --budget-words 100")).is_err()
        );
        assert!(
            parse_serve(&args("--dim 2 --alpha 0.5 --tenants --spill-dir /tmp/s")).is_err()
        );
        assert!(parse_serve(&args(
            "--dim 2 --alpha 0.5 --tenants --budget-words 0 --spill-dir /tmp/s"
        ))
        .is_err());
        // ...and the tenancy knobs are rejected without --tenants
        for bad in [
            "--dim 2 --alpha 0.5 --budget-words 100",
            "--dim 2 --alpha 0.5 --spill-dir /tmp/s",
        ] {
            let err = parse_serve(&args(bad)).expect_err("invalid");
            assert!(err.contains("--tenants"), "error for `{bad}`: {err}");
        }
    }

    #[test]
    fn serve_usage_errors_at_parse_time() {
        // dim + alpha are required without --restore
        assert!(parse_serve(&args("--alpha 0.5")).is_err());
        assert!(parse_serve(&args("--dim 2")).is_err());
        assert!(parse_serve(&args("--dim 2 --alpha 0.0")).is_err());
        assert!(parse_serve(&args("--dim 2 --alpha 0.5 --threads 0")).is_err());
        assert!(parse_serve(&args("--dim 2 --alpha 0.5 --time")).is_err());
        assert!(parse_serve(&args("--dim 2 --alpha 0.5 --frobnicate 1")).is_err());
        // restore is exclusive with the stream-configuration flags...
        for bad in [
            "--restore /tmp/x.chk --dim 2",
            "--restore /tmp/x.chk --alpha 0.5",
            "--restore /tmp/x.chk --seed 3",
            "--restore /tmp/x.chk --shards 2",
        ] {
            let err = parse_serve(&args(bad)).expect_err("invalid");
            assert!(err.contains("config echo"), "error for `{bad}`: {err}");
        }
        // ...but the serving cadence stays configurable
        let cfg = parse_serve(&args("--restore /tmp/x.chk --publish-every 10"))
            .expect("valid");
        assert_eq!(cfg.backend.restore_from.as_deref(), Some("/tmp/x.chk"));
        assert_eq!(cfg.backend.publish_every, Some(10));
    }

    #[test]
    fn run_serve_announces_the_resolved_address_and_serves() {
        let cfg = parse_serve(&args("--addr 127.0.0.1:0 --dim 2 --alpha 0.5 --threads 1"))
            .expect("valid");
        let mut out = Vec::new();
        let handle = run_serve(cfg, &mut out).expect("binds");
        let text = String::from_utf8(out).expect("utf8");
        let addr = handle.addr();
        assert!(
            text.contains(&format!("rds-server listening on {addr}")),
            "announcement: {text}"
        );
        let (status, _) =
            rds_server::client::request_once(addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        handle.shutdown_and_join();
    }

    #[test]
    fn run_serve_config_errors_are_typed_not_panics() {
        let cfg = parse_serve(&args("--addr 127.0.0.1:0 --dim 0 --alpha 0.5"))
            .expect("parses; the facade validates dim");
        let mut out = Vec::new();
        let Err(err) = run_serve(cfg, &mut out) else {
            panic!("dim 0 must be rejected");
        };
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn dimension_change_is_an_error() {
        let cli = parse_cli(&args("sample --alpha 0.5")).expect("valid");
        let input = "1,2\n1,2,3\n";
        let mut out = Vec::new();
        let err = run(&cli, Cursor::new(input), &mut out).expect_err("invalid");
        assert_eq!(err.exit_code(), 1, "data errors exit 1, not 2");
    }
}
