//! Library half of the `rds` command-line tool: argument parsing, CSV
//! point decoding and the command runners, separated from `main` so they
//! are unit-testable.

#![warn(missing_docs)]

use rds_core::{
    RobustF0Estimator, RobustHeavyHitters, RobustL0Sampler, SamplerConfig, SlidingWindowF0,
    SlidingWindowSampler, DEFAULT_KAPPA_B,
};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use std::io::BufRead;

/// Which command to run.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Draw one (or `k`) uniform samples over entities.
    Sample {
        /// Number of distinct samples.
        k: usize,
    },
    /// Estimate the number of distinct entities.
    Count {
        /// Target relative error.
        eps: f64,
    },
    /// Report entities owning more than a `phi` fraction of the stream.
    Heavy {
        /// Frequency threshold.
        phi: f64,
    },
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The selected command.
    pub command: Command,
    /// Near-duplicate distance threshold.
    pub alpha: f64,
    /// Optional sliding window (`--window N`, sequence-based; `--time`
    /// switches to timestamp expiry with the last column as timestamp).
    pub window: Option<Window>,
    /// PRNG seed.
    pub seed: u64,
    /// Expected stream length (tunes thresholds; an estimate is fine).
    pub expected_len: u64,
    /// Worker shards for the infinite-window `sample`/`count` pipeline
    /// (`--shards N`; 1 = the plain single-threaded samplers).
    pub shards: usize,
}

/// Parses the command line. `args` excludes the program name.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or_else(usage)?;
    let mut k = 1usize;
    let mut eps = 0.3f64;
    let mut phi = 0.1f64;
    let mut alpha = None;
    let mut window_len: Option<u64> = None;
    let mut time_based = false;
    let mut seed = 1u64;
    let mut expected_len = 1 << 20;
    let mut shards = 1usize;

    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match a.as_str() {
            "--alpha" => alpha = Some(parse_num(val("--alpha")?, "--alpha")?),
            "--k" => k = parse_num::<usize>(val("--k")?, "--k")?,
            "--eps" => eps = parse_num(val("--eps")?, "--eps")?,
            "--phi" => phi = parse_num(val("--phi")?, "--phi")?,
            "--window" => window_len = Some(parse_num(val("--window")?, "--window")?),
            "--time" => time_based = true,
            "--seed" => seed = parse_num(val("--seed")?, "--seed")?,
            "--expected-len" => {
                expected_len = parse_num(val("--expected-len")?, "--expected-len")?
            }
            "--shards" => shards = parse_num(val("--shards")?, "--shards")?,
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    let alpha = alpha.ok_or("--alpha is required".to_string())?;
    if alpha <= 0.0 {
        return Err("--alpha must be positive".into());
    }
    let command = match cmd.as_str() {
        "sample" => Command::Sample { k },
        "count" => {
            if !(eps > 0.0 && eps <= 1.0) {
                return Err("--eps must be in (0, 1]".into());
            }
            Command::Count { eps }
        }
        "heavy" => Command::Heavy { phi },
        other => return Err(format!("unknown command {other}\n{}", usage())),
    };
    let window = window_len.map(|w| {
        if time_based {
            Window::Time(w)
        } else {
            Window::Sequence(w)
        }
    });
    if matches!(command, Command::Heavy { .. }) && window.is_some() {
        return Err("heavy does not support --window".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > 1 {
        if matches!(command, Command::Heavy { .. }) {
            return Err("heavy does not support --shards".into());
        }
        if window.is_some() {
            return Err(
                "--shards applies to the infinite window only (drop --window)".into(),
            );
        }
    }
    Ok(Cli {
        command,
        alpha,
        window,
        seed,
        expected_len,
        shards,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{name}: invalid number {s}"))
}

/// The usage string.
pub fn usage() -> String {
    "usage: rds <sample|count|heavy> --alpha A [options] < points.csv\n\
     \n\
     Points arrive on stdin, one per line, comma- or whitespace-separated\n\
     coordinates. With --time, the LAST column is the item's timestamp.\n\
     \n\
     commands:\n\
     \x20 sample   print a uniform random entity (representative point)\n\
     \x20 count    print the estimated number of distinct entities\n\
     \x20 heavy    print entities above a frequency threshold\n\
     options:\n\
     \x20 --alpha A          near-duplicate distance threshold (required)\n\
     \x20 --k N              number of distinct samples (sample; default 1)\n\
     \x20 --eps E            accuracy target (count; default 0.3)\n\
     \x20 --phi P            frequency threshold (heavy; default 0.1)\n\
     \x20 --window W         restrict to the last W items\n\
     \x20 --time             window is time-based (last column = timestamp)\n\
     \x20 --seed S           PRNG seed (default 1)\n\
     \x20 --expected-len M   expected stream length (default 2^20)\n\
     \x20 --shards N         shard ingestion across N workers\n\
     \x20                    (sample/count, infinite window; default 1;\n\
     \x20                    sharded count trades the median-of-copies\n\
     \x20                    boost for throughput: one merged estimate)\n"
        .to_string()
}

/// Parses one CSV/whitespace line into coordinates (and, with
/// `with_time`, splits off the trailing timestamp).
///
/// # Errors
///
/// Returns a message naming the offending token.
pub fn parse_line(line: &str, with_time: bool) -> Result<Option<(Point, u64)>, String> {
    let tokens: Vec<&str> = line
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.is_empty() || tokens[0].starts_with('#') {
        return Ok(None);
    }
    let (coord_tokens, time) = if with_time {
        let (last, rest) = tokens.split_last().ok_or("empty line")?;
        let t: u64 = last
            .parse()
            .map_err(|_| format!("invalid timestamp {last}"))?;
        (rest, t)
    } else {
        (&tokens[..], 0)
    };
    if coord_tokens.is_empty() {
        return Err("line has a timestamp but no coordinates".into());
    }
    let coords: Result<Vec<f64>, String> = coord_tokens
        .iter()
        .map(|t| t.parse().map_err(|_| format!("invalid coordinate {t}")))
        .collect();
    Ok(Some((Point::new(coords?), time)))
}

/// Runs the tool against a reader, writing human-readable results to a
/// writer. Returns the number of points processed.
///
/// # Errors
///
/// Propagates I/O and parse failures as strings.
pub fn run<R: BufRead, W: std::io::Write>(
    cli: &Cli,
    input: R,
    out: &mut W,
) -> Result<u64, String> {
    let with_time = matches!(cli.window, Some(Window::Time(_)));
    let mut dim: Option<usize> = None;
    let mut n = 0u64;

    // lazily constructed once the dimension is known
    let mut sampler: Option<RobustL0Sampler> = None;
    let mut window_sampler: Option<SlidingWindowSampler> = None;
    let mut counter: Option<RobustF0Estimator> = None;
    let mut window_counter: Option<SlidingWindowF0> = None;
    let mut heavy: Option<RobustHeavyHitters> = None;
    let mut engine: Option<ShardedEngine> = None;

    for line in input.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let Some((point, time)) = parse_line(&line, with_time)? else {
            continue;
        };
        let d = *dim.get_or_insert(point.dim());
        if point.dim() != d {
            return Err(format!(
                "dimension changed from {d} to {} at line {n}",
                point.dim()
            ));
        }
        if sampler.is_none()
            && window_sampler.is_none()
            && counter.is_none()
            && window_counter.is_none()
            && heavy.is_none()
            && engine.is_none()
        {
            let cfg = SamplerConfig::new(d, cli.alpha)
                .with_seed(cli.seed)
                .with_expected_len(cli.expected_len);
            match (&cli.command, cli.window) {
                // parse_cli guarantees shards > 1 only for infinite-window
                // sample/count.
                (Command::Sample { k }, None) if cli.shards > 1 => {
                    engine = Some(ShardedEngine::new(cfg.with_k(*k), cli.shards));
                }
                (Command::Count { eps }, None) if cli.shards > 1 => {
                    let threshold = (DEFAULT_KAPPA_B / (eps * eps)).ceil() as usize;
                    engine = Some(ShardedEngine::with_threshold(
                        cfg,
                        cli.shards,
                        threshold.max(1),
                    ));
                }
                (Command::Sample { k }, None) => {
                    sampler = Some(RobustL0Sampler::new(cfg.with_k(*k)));
                }
                (Command::Sample { k }, Some(w)) => {
                    window_sampler = Some(SlidingWindowSampler::new(cfg.with_k(*k), w));
                }
                (Command::Count { eps }, None) => {
                    counter = Some(RobustF0Estimator::new(cfg, *eps, 5));
                }
                // `count --window`: estimate over the live window, not the
                // whole stream (Section 5's sliding-window F0).
                (Command::Count { eps }, Some(w)) => {
                    window_counter = Some(SlidingWindowF0::new(cfg, w, *eps));
                }
                // parse_cli rejects heavy + --window before streaming starts.
                (Command::Heavy { phi }, _) => {
                    heavy = Some(RobustHeavyHitters::new(*phi, cli.alpha));
                }
            }
        }
        let stamp = if with_time {
            Stamp::new(n, time)
        } else {
            Stamp::at(n)
        };
        if let Some(s) = sampler.as_mut() {
            s.process(&point);
        }
        if let Some(s) = window_sampler.as_mut() {
            s.process(&StreamItem::new(point.clone(), stamp));
        }
        if let Some(c) = counter.as_mut() {
            c.process(&point);
        }
        if let Some(c) = window_counter.as_mut() {
            c.process(&StreamItem::new(point.clone(), stamp));
        }
        if let Some(h) = heavy.as_mut() {
            h.process(&point);
        }
        if let Some(e) = engine.as_mut() {
            e.ingest(point);
        }
        n += 1;
    }

    let w = |out: &mut W, s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    let mut merged = engine.map(ShardedEngine::finish);
    match &cli.command {
        Command::Sample { k } => {
            if let Some(m) = merged.as_mut() {
                for rec in m.query_k(*k) {
                    w(out, format!("{:?} (seen {} times)", rec.rep.coords(), rec.count))?;
                }
            } else if let Some(mut s) = sampler {
                for rec in s.query_k(*k) {
                    w(out, format!("{:?} (seen {} times)", rec.rep.coords(), rec.count))?;
                }
            } else if let Some(mut s) = window_sampler {
                for g in s.query_k(*k) {
                    w(
                        out,
                        format!(
                            "{:?} (seen {} times in window)",
                            g.latest.coords(),
                            g.count
                        ),
                    )?;
                }
            }
        }
        Command::Count { .. } => {
            if let Some(m) = merged.as_ref() {
                w(out, format!("{:.1}", m.f0_estimate()))?;
            } else if let Some(c) = counter {
                w(out, format!("{:.1}", c.estimate()))?;
            } else if let Some(c) = window_counter {
                w(out, format!("{:.1}", c.estimate()))?;
            }
        }
        Command::Heavy { .. } => {
            if let Some(h) = heavy {
                for g in h.heavy_hitters() {
                    w(
                        out,
                        format!(
                            "{:?} count>={} (+/-{})",
                            g.rep.coords(),
                            g.count.saturating_sub(g.error),
                            g.error
                        ),
                    )?;
                }
            }
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_sample_command() {
        let cli = parse_cli(&args("sample --alpha 0.5 --k 3 --seed 9")).expect("valid");
        assert_eq!(cli.command, Command::Sample { k: 3 });
        assert_eq!(cli.alpha, 0.5);
        assert_eq!(cli.seed, 9);
        assert!(cli.window.is_none());
    }

    #[test]
    fn parses_windowed_time_command() {
        let cli = parse_cli(&args("count --alpha 1.0 --eps 0.2 --window 100 --time"))
            .expect("valid");
        assert_eq!(cli.command, Command::Count { eps: 0.2 });
        assert_eq!(cli.window, Some(Window::Time(100)));
    }

    #[test]
    fn rejects_missing_alpha() {
        assert!(parse_cli(&args("sample --k 2")).is_err());
    }

    #[test]
    fn rejects_unknown_command() {
        assert!(parse_cli(&args("frobnicate --alpha 1")).is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(parse_cli(&args("sample --alpha banana")).is_err());
        assert!(parse_cli(&args("sample --alpha 1 --k -3")).is_err());
    }

    #[test]
    fn rejects_out_of_range_eps_at_parse_time() {
        // Regression: --eps 0 on the sharded path used to saturate the
        // kappa_B/eps^2 threshold instead of erroring.
        for bad in ["0", "-0.5", "1.5", "nan"] {
            let err = parse_cli(&args(&format!("count --alpha 0.5 --eps {bad}")))
                .expect_err("invalid eps");
            assert!(err.contains("--eps"), "error: {err}");
        }
        assert!(parse_cli(&args("count --alpha 0.5 --eps 1.0")).is_ok());
    }

    #[test]
    fn parses_csv_and_whitespace_lines() {
        let (p, _) = parse_line("1.5, 2.5, -3", false).expect("valid").expect("point");
        assert_eq!(p, Point::new(vec![1.5, 2.5, -3.0]));
        let (p2, _) = parse_line("  4 5 6 ", false).expect("valid").expect("point");
        assert_eq!(p2.dim(), 3);
    }

    #[test]
    fn parses_trailing_timestamp() {
        let (p, t) = parse_line("1,2,77", true).expect("valid").expect("point");
        assert_eq!(p, Point::new(vec![1.0, 2.0]));
        assert_eq!(t, 77);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        assert!(parse_line("", false).expect("ok").is_none());
        assert!(parse_line("# header", false).expect("ok").is_none());
    }

    #[test]
    fn rejects_garbage_coordinates() {
        assert!(parse_line("1,two,3", false).is_err());
        assert!(parse_line("1,2,notatime", true).is_err());
    }

    #[test]
    fn end_to_end_sample() {
        let cli = parse_cli(&args("sample --alpha 0.5 --seed 3")).expect("valid");
        let mut input = String::new();
        for i in 0..50 {
            input.push_str(&format!("{}.0, 0.0\n", (i % 5) * 10));
        }
        let mut out = Vec::new();
        let n = run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert_eq!(n, 50);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("seen"), "output: {text}");
    }

    #[test]
    fn end_to_end_count() {
        let cli = parse_cli(&args("count --alpha 0.5 --eps 1.0")).expect("valid");
        let mut input = String::new();
        for i in 0..60 {
            input.push_str(&format!("{}.0\n", (i % 6) * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert_eq!(est, 6.0);
    }

    #[test]
    fn end_to_end_heavy() {
        let cli = parse_cli(&args("heavy --alpha 0.5 --phi 0.4")).expect("valid");
        let mut input = String::new();
        for i in 0..100 {
            let g = if i % 2 == 0 { 0 } else { 1 + i % 7 };
            input.push_str(&format!("{}.0\n", g * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.lines().count() == 1, "only group 0 is heavy: {text}");
    }

    #[test]
    fn end_to_end_windowed_count_sees_only_live_points() {
        // 25 points cycling 5 far-apart groups, then 10 points all in group
        // 0. With a sequence window of 10 only group 0 is live, so the
        // windowed estimate must be far below the whole-stream 5 groups.
        let cli = parse_cli(&args("count --alpha 0.5 --window 10")).expect("valid");
        let mut input = String::new();
        for i in 0..25 {
            input.push_str(&format!("{}.0\n", (i % 5) * 10));
        }
        for _ in 0..10 {
            input.push_str("0.0\n");
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert!((1.0..2.0).contains(&est), "windowed estimate: {est}");
    }

    #[test]
    fn end_to_end_time_windowed_count_expires_old_timestamps() {
        // Timestamps 1, 2, 9 with a time window of 3: only the last point
        // (time 9) is live at the end of the stream.
        let cli = parse_cli(&args("count --alpha 0.5 --window 3 --time")).expect("valid");
        let input = "0,0,1\n5,5,2\n9,1,9\n";
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        let text = String::from_utf8(out).expect("utf8");
        let est: f64 = text.trim().parse().expect("a number");
        assert!((1.0..2.0).contains(&est), "time-windowed estimate: {est}");
    }

    #[test]
    fn rejects_heavy_with_window_at_parse_time() {
        let err = parse_cli(&args("heavy --alpha 0.5 --window 5")).expect_err("invalid");
        assert!(err.contains("--window"), "error: {err}");
    }

    #[test]
    fn parses_shards_flag() {
        let cli = parse_cli(&args("count --alpha 0.5 --shards 8")).expect("valid");
        assert_eq!(cli.shards, 8);
        let cli = parse_cli(&args("sample --alpha 0.5")).expect("valid");
        assert_eq!(cli.shards, 1, "default is unsharded");
    }

    #[test]
    fn rejects_invalid_shard_combinations_at_parse_time() {
        let err = parse_cli(&args("count --alpha 0.5 --shards 0")).expect_err("invalid");
        assert!(err.contains("--shards"), "error: {err}");
        let err =
            parse_cli(&args("heavy --alpha 0.5 --shards 4")).expect_err("invalid");
        assert!(err.contains("--shards"), "error: {err}");
        let err = parse_cli(&args("count --alpha 0.5 --shards 4 --window 10"))
            .expect_err("invalid");
        assert!(err.contains("--window"), "error: {err}");
    }

    #[test]
    fn end_to_end_sharded_count_matches_unsharded() {
        // 12 well-separated entities, 10 observations each: both pipelines
        // count them exactly.
        let mut input = String::new();
        for i in 0..120 {
            input.push_str(&format!("{}.0\n", (i % 12) * 10));
        }
        let run_with = |extra: &str| -> f64 {
            let cli = parse_cli(&args(&format!("count --alpha 0.5 --eps 1.0{extra}")))
                .expect("valid");
            let mut out = Vec::new();
            run(&cli, Cursor::new(input.clone()), &mut out).expect("runs");
            String::from_utf8(out).expect("utf8").trim().parse().expect("a number")
        };
        assert_eq!(run_with(" --shards 4"), 12.0);
        assert_eq!(run_with(""), run_with(" --shards 4"));
    }

    #[test]
    fn end_to_end_sharded_sample() {
        let cli =
            parse_cli(&args("sample --alpha 0.5 --k 3 --shards 4 --seed 2")).expect("valid");
        let mut input = String::new();
        for i in 0..100 {
            input.push_str(&format!("{}.0, 0.0\n", (i % 10) * 10));
        }
        let mut out = Vec::new();
        let n = run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert_eq!(n, 100);
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.lines().count(), 3, "three distinct samples: {text}");
        assert!(text.contains("seen"), "output: {text}");
    }

    #[test]
    fn end_to_end_windowed_sample() {
        let cli = parse_cli(&args("sample --alpha 0.5 --window 10")).expect("valid");
        let mut input = String::new();
        for i in 0..40 {
            input.push_str(&format!("{}.0\n", (i % 20) * 10));
        }
        let mut out = Vec::new();
        run(&cli, Cursor::new(input), &mut out).expect("runs");
        assert!(!out.is_empty());
    }

    #[test]
    fn dimension_change_is_an_error() {
        let cli = parse_cli(&args("sample --alpha 0.5")).expect("valid");
        let input = "1,2\n1,2,3\n";
        let mut out = Vec::new();
        assert!(run(&cli, Cursor::new(input), &mut out).is_err());
    }
}
