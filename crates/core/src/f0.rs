//! Section 5: estimating the number of robust distinct elements (F0)
//! from the ℓ0-sampling structures.
//!
//! * Infinite window: plug the robust sampler into the Bar-Yossef et al.
//!   framework — replace Algorithm 1's `kappa_0 log m` threshold with
//!   `kappa_B / eps^2` and return `|Sacc| * R`; run several independent
//!   copies and take the median.
//! * Sliding window: run copies of Algorithm 3. The paper sketches an
//!   FM-style estimate `phi * 2^{mean(max non-empty level)}`; because each
//!   level's capacity is `Θ(log m)` (not 1 as in a plain FM sketch), the
//!   raw statistic undercounts by the per-level capacity, so
//!   [`SlidingWindowF0::fm_estimate`] multiplies the calibration in. The
//!   recommended estimator is the Horvitz–Thompson sum
//!   `Σ_ℓ |Sacc_ℓ| 2^ℓ` ([`SlidingWindowF0::estimate`]), the direct
//!   sliding-window analogue of `|Sacc| * R`.

use crate::config::SamplerConfig;
use crate::error::RdsError;
use crate::infinite::RobustL0Sampler;
use crate::sw_hier::SlidingWindowSampler;
use rds_geometry::Point;
use rds_stream::{StreamItem, Window};

/// The Flajolet–Martin bias-correction constant `phi`.
pub const FM_PHI: f64 = 0.77351;

/// Default `kappa_B` of the `kappa_B / eps^2` accept-set threshold.
pub const DEFAULT_KAPPA_B: f64 = 16.0;

fn median(mut xs: Vec<f64>) -> f64 {
    debug_assert!(!xs.is_empty(), "estimators are built with >= 1 copy");
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// `(1 + eps)`-approximate robust F0 over the whole stream
/// (infinite window), Section 5 of the paper.
///
/// # Examples
///
/// ```
/// use rds_core::{RobustF0Estimator, SamplerConfig};
/// use rds_geometry::Point;
///
/// let cfg = SamplerConfig::builder(1, 0.5).seed(2).build().unwrap();
/// let mut est = RobustF0Estimator::try_new(cfg, 0.5, 5).unwrap();
/// for i in 0..300 {
///     // 30 groups, 10 near-duplicates each
///     est.process(&Point::new(vec![(i % 30) as f64 * 10.0 + 0.01 * (i / 30) as f64]));
/// }
/// let f0 = est.estimate();
/// assert!(f0 > 10.0 && f0 < 90.0);
/// ```
#[derive(Debug)]
pub struct RobustF0Estimator {
    copies: Vec<RobustL0Sampler>,
    eps: f64,
}

impl RobustF0Estimator {
    /// Creates the estimator with accuracy target `eps` and `n_copies`
    /// independent copies (median-boosted; use an odd count).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidEps`] unless `eps` is in `(0, 1]`;
    /// [`RdsError::InvalidCopies`] when `n_copies == 0`.
    pub fn try_new(cfg: SamplerConfig, eps: f64, n_copies: usize) -> Result<Self, RdsError> {
        Self::try_with_kappa_b(cfg, eps, n_copies, DEFAULT_KAPPA_B)
    }

    /// Like [`Self::try_new`] with an explicit `kappa_B`.
    ///
    /// # Errors
    ///
    /// The [`Self::try_new`] errors, plus [`RdsError::InvalidKappaB`]
    /// unless `kappa_b` is strictly positive and finite.
    pub fn try_with_kappa_b(
        cfg: SamplerConfig,
        eps: f64,
        n_copies: usize,
        kappa_b: f64,
    ) -> Result<Self, RdsError> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(RdsError::InvalidEps { eps });
        }
        if n_copies == 0 {
            return Err(RdsError::InvalidCopies);
        }
        if !(kappa_b > 0.0 && kappa_b.is_finite()) {
            return Err(RdsError::InvalidKappaB { kappa_b });
        }
        let threshold = (kappa_b / (eps * eps)).ceil() as usize;
        let copies = (0..n_copies)
            .map(|i| {
                let cfg_i = SamplerConfig {
                    seed: cfg.seed.wrapping_add(0x9E37_79B9 * (i as u64 + 1)),
                    ..cfg.clone()
                };
                RobustL0Sampler::try_with_threshold(cfg_i, threshold)
            })
            .collect::<Result<Vec<_>, RdsError>>()?;
        Ok(Self { copies, eps })
    }

    /// Feeds one point to every copy.
    pub fn process(&mut self, p: &Point) {
        for c in &mut self.copies {
            c.process(p);
        }
    }

    /// Feeds a batch of points to every copy (each copy's space metering
    /// is amortized over the batch, see
    /// [`RobustL0Sampler::process_batch`]).
    pub fn process_batch(&mut self, points: &[Point]) {
        for c in &mut self.copies {
            c.process_batch(points);
        }
    }

    /// The median-of-copies estimate `median(|Sacc| * R)`.
    pub fn estimate(&self) -> f64 {
        median(self.copies.iter().map(|c| c.f0_estimate()).collect())
    }

    /// The accuracy target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of independent copies.
    pub fn n_copies(&self) -> usize {
        self.copies.len()
    }

    /// Total footprint in machine words across copies.
    pub fn words(&self) -> usize {
        self.copies.iter().map(|c| c.words()).sum()
    }
}

/// Robust F0 estimation over sliding windows (Section 5), built on copies
/// of Algorithm 3.
#[derive(Debug)]
pub struct SlidingWindowF0 {
    copies: Vec<SlidingWindowSampler>,
    threshold: usize,
    eps: f64,
}

impl SlidingWindowF0 {
    /// Creates the estimator with `n_copies = ceil(kappa / eps^2)` copies
    /// (`kappa = 2`), each an independent Algorithm 3 instance.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidEps`] unless `eps` is in `(0, 1]`;
    /// [`RdsError::UnboundedWindow`] when the window is unbounded.
    pub fn try_new(cfg: SamplerConfig, window: Window, eps: f64) -> Result<Self, RdsError> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(RdsError::InvalidEps { eps });
        }
        let n_copies = ((2.0 / (eps * eps)).ceil() as usize).max(1);
        let threshold = cfg.threshold();
        let copies = (0..n_copies)
            .map(|i| {
                let cfg_i = SamplerConfig {
                    seed: cfg.seed.wrapping_add(0xDEAD_BEEF * (i as u64 + 1)),
                    ..cfg.clone()
                };
                SlidingWindowSampler::try_new(cfg_i, window)
            })
            .collect::<Result<Vec<_>, RdsError>>()?;
        Ok(Self {
            copies,
            threshold,
            eps,
        })
    }

    /// Feeds one stream item to every copy.
    pub fn process(&mut self, item: &StreamItem) {
        for c in &mut self.copies {
            c.process(item);
        }
    }

    /// Recommended estimator: median over copies of the Horvitz–Thompson
    /// sum `Σ_ℓ |Sacc_ℓ| 2^ℓ`.
    pub fn estimate(&self) -> f64 {
        median(self.copies.iter().map(|c| c.f0_estimate()).collect())
    }

    /// The paper's FM-flavoured estimator: `phi * 2^{mean(c_i)}` scaled by
    /// the per-level capacity, where `c_i` is copy `i`'s highest non-empty
    /// level. Windows currently empty contribute level 0.
    pub fn fm_estimate(&self) -> f64 {
        let mean_level = self
            .copies
            .iter()
            .map(|c| c.max_nonempty_level().unwrap_or(0) as f64)
            .sum::<f64>()
            / self.copies.len() as f64;
        FM_PHI * 2f64.powf(mean_level) * self.threshold as f64
    }

    /// The accuracy target.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of copies.
    pub fn n_copies(&self) -> usize {
        self.copies.len()
    }

    /// Total footprint in machine words across copies.
    pub fn words(&self) -> usize {
        self.copies.iter().map(|c| c.words()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_stream::Stamp;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![
            (i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 5) as f64,
        ])
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn infinite_window_estimate_tracks_truth() {
        let n_groups = 200u64;
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(3)
            .expected_len(4000).build().unwrap();
        let mut est = RobustF0Estimator::try_new(cfg, 0.5, 7).unwrap();
        for i in 0..4000u64 {
            est.process(&grouped_point(i, n_groups));
        }
        let f0 = est.estimate();
        assert!(
            f0 >= n_groups as f64 * 0.5 && f0 <= n_groups as f64 * 2.0,
            "estimate {f0} vs truth {n_groups}"
        );
    }

    #[test]
    fn batch_processing_matches_per_point_processing() {
        let cfg = SamplerConfig::builder(1, 0.5).seed(9).expected_len(512).build().unwrap();
        let points: Vec<Point> = (0..512u64).map(|i| grouped_point(i, 64)).collect();
        let mut one = RobustF0Estimator::try_new(cfg.clone(), 0.5, 3).unwrap();
        for p in &points {
            one.process(p);
        }
        let mut batched = RobustF0Estimator::try_new(cfg, 0.5, 3).unwrap();
        for chunk in points.chunks(100) {
            batched.process_batch(chunk);
        }
        assert_eq!(one.estimate(), batched.estimate());
    }

    #[test]
    fn estimate_is_exact_before_any_subsampling() {
        // few groups, large threshold: R stays 1 and |Sacc| counts groups
        let cfg = SamplerConfig::builder(1, 0.5).seed(4).build().unwrap();
        let mut est = RobustF0Estimator::try_new(cfg, 1.0, 3).unwrap();
        for i in 0..60u64 {
            est.process(&grouped_point(i, 12));
        }
        assert_eq!(est.estimate(), 12.0);
    }

    #[test]
    fn eps_controls_threshold_monotonically() {
        let cfg = SamplerConfig::builder(1, 0.5).build().unwrap();
        let coarse = RobustF0Estimator::try_new(cfg.clone(), 1.0, 1).unwrap();
        let fine = RobustF0Estimator::try_new(cfg, 0.25, 1).unwrap();
        assert!(fine.words() >= coarse.words());
        assert_eq!(coarse.n_copies(), 1);
    }

    #[test]
    fn sliding_window_estimate_tracks_truth() {
        let n_groups = 48u64;
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(5)
            .expected_len(2048)
            .kappa0(1.0).build().unwrap();
        let mut est = SlidingWindowF0::try_new(cfg, Window::Sequence(512), 0.8).unwrap();
        for i in 0..2048u64 {
            est.process(&StreamItem::new(grouped_point(i, n_groups), Stamp::at(i)));
        }
        let f0 = est.estimate();
        assert!(
            f0 >= n_groups as f64 / 2.5 && f0 <= n_groups as f64 * 2.5,
            "estimate {f0} vs truth {n_groups}"
        );
    }

    #[test]
    fn sliding_window_estimate_follows_window_shrink() {
        // stream switches from 64 groups to 4 groups; after a full window
        // of the new regime the estimate must drop
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(6)
            .expected_len(4096)
            .kappa0(1.0).build().unwrap();
        let mut est = SlidingWindowF0::try_new(cfg, Window::Sequence(256), 0.8).unwrap();
        for i in 0..1024u64 {
            est.process(&StreamItem::new(grouped_point(i, 64), Stamp::at(i)));
        }
        let many = est.estimate();
        for i in 1024..2048u64 {
            est.process(&StreamItem::new(grouped_point(i, 4), Stamp::at(i)));
        }
        let few = est.estimate();
        assert!(
            few < many / 2.0,
            "estimate failed to shrink: before {many}, after {few}"
        );
        assert!(few <= 16.0, "estimate {few} far above truth 4");
    }

    #[test]
    fn fm_estimate_is_positive_and_ordered() {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(7)
            .expected_len(2048)
            .kappa0(1.0).build().unwrap();
        let mut small = SlidingWindowF0::try_new(cfg.clone(), Window::Sequence(256), 1.0).unwrap();
        let mut large = SlidingWindowF0::try_new(cfg, Window::Sequence(256), 1.0).unwrap();
        for i in 0..1024u64 {
            small.process(&StreamItem::new(grouped_point(i, 8), Stamp::at(i)));
            large.process(&StreamItem::new(grouped_point(i, 200), Stamp::at(i)));
        }
        assert!(small.fm_estimate() > 0.0);
        assert!(large.fm_estimate() >= small.fm_estimate());
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        use crate::error::RdsError;
        let cfg = SamplerConfig::builder(1, 0.5).build().unwrap();
        assert!(matches!(
            RobustF0Estimator::try_new(cfg.clone(), 0.0, 1),
            Err(RdsError::InvalidEps { .. })
        ));
        assert!(matches!(
            RobustF0Estimator::try_new(cfg.clone(), 0.5, 0),
            Err(RdsError::InvalidCopies)
        ));
        assert!(matches!(
            RobustF0Estimator::try_with_kappa_b(cfg.clone(), 0.5, 1, 0.0),
            Err(RdsError::InvalidKappaB { .. })
        ));
        assert!(matches!(
            SlidingWindowF0::try_new(cfg.clone(), rds_stream::Window::Sequence(16), 2.0),
            Err(RdsError::InvalidEps { .. })
        ));
        assert!(matches!(
            SlidingWindowF0::try_new(cfg, rds_stream::Window::Infinite, 1.0),
            Err(RdsError::UnboundedWindow)
        ));
    }
}
