//! Section 2.3: drawing `k` robust ℓ0-samples per query.
//!
//! * **Without replacement** — raise the accept-set threshold to
//!   `kappa_0 * k * log m` (so `|Sacc| >= k` w.h.p.) and draw `k` distinct
//!   groups; this is [`crate::SamplerConfigBuilder::k`] plus
//!   [`RobustL0Sampler::query_k`] / [`SlidingWindowSampler::query_k`]. The
//!   [`KDistinctSampler`] wrapper packages the pattern.
//! * **With replacement** — run `k` independent one-sample instances in
//!   parallel ([`KWithReplacementSampler`]).

use crate::config::SamplerConfig;
use crate::distributed::MergedSummary;
use crate::error::RdsError;
use crate::infinite::{BatchStats, GroupRecord, ProcessOutcome, RobustL0Sampler};
use crate::sampler::DistinctSampler;
use rds_geometry::Point;
use rds_stream::StreamItem;

/// Draws `k` distinct groups per query (sampling without replacement) in
/// the infinite window.
///
/// # Examples
///
/// ```
/// use rds_core::{KDistinctSampler, SamplerConfig};
/// use rds_geometry::Point;
///
/// let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(1).build().unwrap(), 3).unwrap();
/// for i in 0..200 {
///     s.process(&Point::new(vec![(i % 20) as f64 * 10.0]));
/// }
/// assert_eq!(s.sample().len(), 3);
/// ```
#[derive(Debug)]
pub struct KDistinctSampler {
    inner: RobustL0Sampler,
    k: usize,
}

impl KDistinctSampler {
    /// Creates the sampler; the threshold scales with `k` as in
    /// Section 2.3.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidK`] when `k == 0`, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig, k: usize) -> Result<Self, RdsError> {
        if k == 0 {
            return Err(RdsError::InvalidK);
        }
        Ok(Self {
            inner: RobustL0Sampler::try_new(SamplerConfig { k, ..cfg })?,
            k,
        })
    }

    /// Feeds one stream point.
    pub fn process(&mut self, p: &Point) {
        self.inner.process(p);
    }

    /// Draws `min(k, |Sacc|)` distinct groups.
    pub fn sample(&mut self) -> Vec<GroupRecord> {
        let k = self.k;
        DistinctSampler::query_k(&mut self.inner, k)
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped single-sample structure.
    pub fn inner(&self) -> &RobustL0Sampler {
        &self.inner
    }
}

impl DistinctSampler for KDistinctSampler {
    type Summary = MergedSummary;

    /// Feeds the item's point; the stamp is ignored (infinite window).
    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        self.inner.process(&item.point)
    }

    fn process_batch(&mut self, items: &[StreamItem]) -> BatchStats {
        DistinctSampler::process_batch(&mut self.inner, items)
    }

    fn query_record(&mut self) -> Option<GroupRecord> {
        DistinctSampler::query_record(&mut self.inner)
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        DistinctSampler::query_k(&mut self.inner, k)
    }

    fn f0_estimate(&self) -> f64 {
        self.inner.f0_estimate()
    }

    fn seen(&self) -> u64 {
        self.inner.seen()
    }

    fn words(&self) -> usize {
        self.inner.words()
    }

    fn summary(&self) -> MergedSummary {
        DistinctSampler::summary(&self.inner)
    }

    fn into_summary(self) -> MergedSummary {
        DistinctSampler::into_summary(self.inner)
    }
}

/// Draws `k` samples with replacement: `k` independent copies of
/// Algorithm 1, one sample from each (Section 2.3).
#[derive(Debug)]
pub struct KWithReplacementSampler {
    copies: Vec<RobustL0Sampler>,
}

impl KWithReplacementSampler {
    /// Creates `k` independent copies with derived seeds.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidK`] when `k == 0`, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig, k: usize) -> Result<Self, RdsError> {
        if k == 0 {
            return Err(RdsError::InvalidK);
        }
        let copies = (0..k)
            .map(|i| {
                let cfg_i = SamplerConfig {
                    seed: cfg.seed.wrapping_add(0xABCD * (i as u64 + 1)),
                    ..cfg.clone()
                };
                RobustL0Sampler::try_new(cfg_i)
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { copies })
    }

    /// Feeds one stream point to every copy.
    pub fn process(&mut self, p: &Point) {
        for c in &mut self.copies {
            c.process(p);
        }
    }

    /// One independent sample per copy (`k` samples, possibly repeating
    /// groups).
    pub fn sample(&mut self) -> Vec<Point> {
        self.copies
            .iter_mut()
            .filter_map(|c| c.query().cloned())
            .collect()
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_groups(n_points: u64, n_groups: u64, f: &mut impl FnMut(&Point)) {
        for i in 0..n_points {
            f(&Point::new(vec![(i % n_groups) as f64 * 10.0]));
        }
    }

    #[test]
    fn without_replacement_returns_distinct() {
        let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(2).build().unwrap(), 5).unwrap();
        feed_groups(400, 40, &mut |p| s.process(p));
        let picks = s.sample();
        assert_eq!(picks.len(), 5);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].rep.within(&picks[j].rep, 0.5));
            }
        }
    }

    #[test]
    fn without_replacement_saturates_at_group_count() {
        // only 2 groups exist; asking for 5 yields 2
        let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(3).build().unwrap(), 5).unwrap();
        feed_groups(50, 2, &mut |p| s.process(p));
        assert_eq!(s.sample().len(), 2);
    }

    #[test]
    fn threshold_scales_with_k() {
        let one = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 1).unwrap();
        let five = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 5).unwrap();
        assert_eq!(five.inner().threshold(), 5 * one.inner().threshold());
    }

    #[test]
    fn with_replacement_returns_k_samples() {
        let mut s = KWithReplacementSampler::try_new(SamplerConfig::builder(1, 0.5).seed(4).build().unwrap(), 4).unwrap();
        feed_groups(300, 30, &mut |p| s.process(p));
        assert_eq!(s.sample().len(), 4);
        assert_eq!(s.k(), 4);
    }

    #[test]
    fn with_replacement_copies_are_independent() {
        // over several reconstructions the k draws must not always agree
        let mut agreements = 0;
        for seed in 0..20u64 {
            let mut s = KWithReplacementSampler::try_new(
                SamplerConfig::builder(1, 0.5).seed(seed * 31 + 1).build().unwrap(),
                2,
            ).unwrap();
            feed_groups(200, 20, &mut |p| s.process(p));
            let picks = s.sample();
            if picks[0] == picks[1] {
                agreements += 1;
            }
        }
        assert!(agreements < 15, "copies look correlated: {agreements}/20");
    }

    #[test]
    fn zero_k_rejected() {
        let err = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 0)
            .unwrap_err();
        assert!(matches!(err, RdsError::InvalidK));
    }
}
