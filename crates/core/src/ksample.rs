//! Section 2.3: drawing `k` robust ℓ0-samples per query.
//!
//! * **Without replacement** — raise the accept-set threshold to
//!   `kappa_0 * k * log m` (so `|Sacc| >= k` w.h.p.) and draw `k` distinct
//!   groups; this is [`crate::SamplerConfigBuilder::k`] plus
//!   [`RobustL0Sampler::query_k`] / [`SlidingWindowSampler::query_k`]. The
//!   [`KDistinctSampler`] wrapper packages the pattern.
//! * **With replacement** — run `k` independent one-sample instances in
//!   parallel ([`KWithReplacementSampler`]).

use crate::checkpoint::{checkpoint_err, Checkpointable};
use crate::config::SamplerConfig;
use crate::distributed::MergedSummary;
use crate::error::RdsError;
use crate::infinite::{BatchStats, GroupRecord, ProcessOutcome, RobustL0State, RobustL0Sampler};
use crate::sampler::DistinctSampler;
use serde::{Deserialize, Serialize};
use rds_geometry::Point;
use rds_stream::StreamItem;

/// Draws `k` distinct groups per query (sampling without replacement) in
/// the infinite window.
///
/// # Examples
///
/// ```
/// use rds_core::{KDistinctSampler, SamplerConfig};
/// use rds_geometry::Point;
///
/// let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(1).build().unwrap(), 3).unwrap();
/// for i in 0..200 {
///     s.process(&Point::new(vec![(i % 20) as f64 * 10.0]));
/// }
/// assert_eq!(s.sample().len(), 3);
/// ```
#[derive(Debug)]
pub struct KDistinctSampler {
    inner: RobustL0Sampler,
    k: usize,
}

impl KDistinctSampler {
    /// Creates the sampler; the threshold scales with `k` as in
    /// Section 2.3.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidK`] when `k == 0`, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig, k: usize) -> Result<Self, RdsError> {
        if k == 0 {
            return Err(RdsError::InvalidK);
        }
        Ok(Self {
            inner: RobustL0Sampler::try_new(SamplerConfig { k, ..cfg })?,
            k,
        })
    }

    /// Feeds one stream point.
    pub fn process(&mut self, p: &Point) {
        self.inner.process(p);
    }

    /// Draws `min(k, |Sacc|)` distinct groups.
    pub fn sample(&mut self) -> Vec<GroupRecord> {
        let k = self.k;
        DistinctSampler::query_k(&mut self.inner, k)
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped single-sample structure.
    pub fn inner(&self) -> &RobustL0Sampler {
        &self.inner
    }
}

/// The serializable full state of a [`KDistinctSampler`]: the configured
/// `k` plus the wrapped single-structure state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KDistinctState {
    k: usize,
    inner: RobustL0State,
}

impl Checkpointable for KDistinctSampler {
    type State = KDistinctState;

    fn checkpoint_state(&self) -> KDistinctState {
        KDistinctState {
            k: self.k,
            inner: self.inner.checkpoint_state(),
        }
    }

    fn try_from_state(state: KDistinctState) -> Result<Self, RdsError> {
        if state.k == 0 {
            return Err(RdsError::InvalidK);
        }
        if state.inner.cfg().k != state.k {
            return Err(checkpoint_err(format!(
                "k-sampler state draws k = {} but its inner threshold was \
                 scaled for k = {}",
                state.k,
                state.inner.cfg().k
            )));
        }
        Ok(Self {
            inner: RobustL0Sampler::try_from_state(state.inner)?,
            k: state.k,
        })
    }

    fn state_config(state: &KDistinctState) -> Option<&SamplerConfig> {
        Some(state.inner.cfg())
    }
}

impl DistinctSampler for KDistinctSampler {
    type Summary = MergedSummary;

    /// Feeds the item's point; the stamp is ignored (infinite window).
    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        self.inner.process(&item.point)
    }

    fn process_batch(&mut self, items: &[StreamItem]) -> BatchStats {
        DistinctSampler::process_batch(&mut self.inner, items)
    }

    fn query_record(&mut self) -> Option<GroupRecord> {
        DistinctSampler::query_record(&mut self.inner)
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        DistinctSampler::query_k(&mut self.inner, k)
    }

    fn f0_estimate(&self) -> f64 {
        self.inner.f0_estimate()
    }

    fn seen(&self) -> u64 {
        self.inner.seen()
    }

    fn words(&self) -> usize {
        self.inner.words()
    }

    fn summary(&self) -> MergedSummary {
        DistinctSampler::summary(&self.inner)
    }

    fn into_summary(self) -> MergedSummary {
        DistinctSampler::into_summary(self.inner)
    }
}

/// Draws `k` samples with replacement: `k` independent copies of
/// Algorithm 1, one sample from each (Section 2.3).
#[derive(Debug)]
pub struct KWithReplacementSampler {
    copies: Vec<RobustL0Sampler>,
}

impl KWithReplacementSampler {
    /// Creates `k` independent copies with derived seeds.
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidK`] when `k == 0`, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig, k: usize) -> Result<Self, RdsError> {
        if k == 0 {
            return Err(RdsError::InvalidK);
        }
        let copies = (0..k)
            .map(|i| {
                let cfg_i = SamplerConfig {
                    seed: cfg.seed.wrapping_add(0xABCD * (i as u64 + 1)),
                    ..cfg.clone()
                };
                RobustL0Sampler::try_new(cfg_i)
            })
            .collect::<Result<_, _>>()?;
        Ok(Self { copies })
    }

    /// Feeds one stream point to every copy.
    pub fn process(&mut self, p: &Point) {
        for c in &mut self.copies {
            c.process(p);
        }
    }

    /// One independent sample per copy (`k` samples, possibly repeating
    /// groups).
    pub fn sample(&mut self) -> Vec<Point> {
        self.copies
            .iter_mut()
            .filter_map(|c| c.query().cloned())
            .collect()
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.copies.len()
    }
}

/// The serializable full state of a [`KWithReplacementSampler`]: one
/// [`RobustL0State`] per independent copy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KWithReplacementState {
    copies: Vec<RobustL0State>,
}

impl Checkpointable for KWithReplacementSampler {
    type State = KWithReplacementState;

    fn checkpoint_state(&self) -> KWithReplacementState {
        KWithReplacementState {
            copies: self.copies.iter().map(|c| c.checkpoint_state()).collect(),
        }
    }

    fn try_from_state(state: KWithReplacementState) -> Result<Self, RdsError> {
        let Some(first_copy) = state.copies.first() else {
            return Err(RdsError::InvalidK);
        };
        // The copies are independent only in their (derived) seeds; every
        // other parameter must agree, or `process` would feed one point
        // to samplers of conflicting dimensions and panic downstream.
        let reference = SamplerConfig {
            seed: 0,
            ..first_copy.cfg().clone()
        };
        for (i, copy) in state.copies.iter().enumerate() {
            let seedless = SamplerConfig {
                seed: 0,
                ..copy.cfg().clone()
            };
            if seedless != reference {
                return Err(checkpoint_err(format!(
                    "with-replacement copy {i} embeds a configuration differing \
                     (beyond its derived seed) from copy 0"
                )));
            }
        }
        Ok(Self {
            copies: state
                .copies
                .into_iter()
                .map(RobustL0Sampler::try_from_state)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_groups(n_points: u64, n_groups: u64, f: &mut impl FnMut(&Point)) {
        for i in 0..n_points {
            f(&Point::new(vec![(i % n_groups) as f64 * 10.0]));
        }
    }

    #[test]
    fn without_replacement_returns_distinct() {
        let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(2).build().unwrap(), 5).unwrap();
        feed_groups(400, 40, &mut |p| s.process(p));
        let picks = s.sample();
        assert_eq!(picks.len(), 5);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].rep.within(&picks[j].rep, 0.5));
            }
        }
    }

    #[test]
    fn without_replacement_saturates_at_group_count() {
        // only 2 groups exist; asking for 5 yields 2
        let mut s = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).seed(3).build().unwrap(), 5).unwrap();
        feed_groups(50, 2, &mut |p| s.process(p));
        assert_eq!(s.sample().len(), 2);
    }

    #[test]
    fn threshold_scales_with_k() {
        let one = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 1).unwrap();
        let five = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 5).unwrap();
        assert_eq!(five.inner().threshold(), 5 * one.inner().threshold());
    }

    #[test]
    fn with_replacement_returns_k_samples() {
        let mut s = KWithReplacementSampler::try_new(SamplerConfig::builder(1, 0.5).seed(4).build().unwrap(), 4).unwrap();
        feed_groups(300, 30, &mut |p| s.process(p));
        assert_eq!(s.sample().len(), 4);
        assert_eq!(s.k(), 4);
    }

    #[test]
    fn with_replacement_copies_are_independent() {
        // over several reconstructions the k draws must not always agree
        let mut agreements = 0;
        for seed in 0..20u64 {
            let mut s = KWithReplacementSampler::try_new(
                SamplerConfig::builder(1, 0.5).seed(seed * 31 + 1).build().unwrap(),
                2,
            ).unwrap();
            feed_groups(200, 20, &mut |p| s.process(p));
            let picks = s.sample();
            if picks[0] == picks[1] {
                agreements += 1;
            }
        }
        assert!(agreements < 15, "copies look correlated: {agreements}/20");
    }

    #[test]
    fn with_replacement_restore_rejects_mixed_copy_configs() {
        // Regression: copies of conflicting dimensions used to restore Ok
        // and panic on the first processed point.
        let dim1 = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap())
            .unwrap()
            .checkpoint_state();
        let dim2 = RobustL0Sampler::try_new(SamplerConfig::builder(2, 0.5).build().unwrap())
            .unwrap()
            .checkpoint_state();
        let state = KWithReplacementState {
            copies: vec![dim1.clone(), dim2],
        };
        assert!(matches!(
            KWithReplacementSampler::try_from_state(state),
            Err(RdsError::Checkpoint { .. })
        ));
        // derived seeds alone are fine — that is how the copies differ
        let mut legit = KWithReplacementSampler::try_new(
            SamplerConfig::builder(1, 0.5).seed(3).build().unwrap(),
            2,
        )
        .unwrap();
        legit.process(&Point::new(vec![1.0]));
        let state = legit.checkpoint_state();
        assert!(KWithReplacementSampler::try_from_state(state).is_ok());
    }

    #[test]
    fn zero_k_rejected() {
        let err = KDistinctSampler::try_new(SamplerConfig::builder(1, 0.5).build().unwrap(), 0)
            .unwrap_err();
        assert!(matches!(err, RdsError::InvalidK));
    }
}
