//! Algorithms 3, 4 and 5: the space-efficient sliding-window sampler.
//!
//! A hierarchy of [`FixedRateWindowSampler`] instances (levels
//! `0..=log2 w`) with sample rates `1, 1/2, 1/4, ...` maintains a dynamic
//! partition of the window into subwindows (Definition 2.9): level 0
//! covers the most recent groups at rate 1, higher levels cover older
//! groups at geometrically coarser rates. When a level's accept set
//! exceeds `kappa_0 log m`, its oldest prefix is promoted one level up and
//! refiltered at the finer^W coarser rate (`Split`, Algorithm 4) and merged
//! into the next level (`Merge`, Algorithm 5), cascading as needed. At
//! query time every accepted group at level `ℓ` is resampled with
//! probability `R_ℓ / R_c` (where `c` is the highest occupied level) so
//! all maintained groups end up sampled at a common rate, and a uniform
//! choice among the survivors is returned (Theorem 2.7).
//!
//! ## Pseudocode deviations (documented in DESIGN.md)
//!
//! The paper's Algorithm 3 pseudocode conflicts in places with its own
//! analysis (Facts 3/4, Lemma 2.10); we implement the analysis-consistent
//! semantics:
//!
//! 1. New first points always enter at level 0 (rate 1), never directly at
//!    a higher level — otherwise `ALG_0` would not "include every point in
//!    `S_0^rep`" as Lemma 2.10's proof requires. Higher levels are
//!    populated exclusively by `Split`.
//! 2. Lower levels are pruned when a point refreshes an **accepted**
//!    group (that is when the subwindow boundary — the last point of
//!    `A(Sacc_ℓ)` — moves past everything newer), not on any match.
//! 3. A point refreshing a **rejected** group re-registers the group at
//!    level 0 with itself as the new representative: the group's last
//!    point now lies in the newest subwindow, where every group must be
//!    tracked at rate 1. Without this, a stream ending in points of a
//!    single rejected group would leave every accept set empty and break
//!    Lemma 2.10's guarantee that a non-empty window always yields a
//!    sample.

use crate::checkpoint::{checkpoint_err, Checkpointable, RngState};
use crate::config::{SamplerConfig, SamplerContext};
use crate::error::RdsError;
use crate::infinite::{GroupRecord, ProcessOutcome};
use crate::sampler::{window_entry_record, DistinctSampler, EntryChunk, WindowSummary};
use crate::sw_fixed::{FixedRateLevelState, FixedRateWindowSampler, WindowGroupEntry};
use serde::{Deserialize, Serialize};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};
use rds_geometry::Point;
use rds_metrics::SpaceMeter;
use rds_stream::{Stamp, StreamItem, Window};
use std::sync::Arc;

/// What the query of a sliding-window sampler returns: the sampled group's
/// representative, latest point, and size bookkeeping.
#[derive(Clone, Debug)]
pub struct GroupSample {
    /// The group's representative for the current window.
    pub representative: Point,
    /// The group's latest point — always inside the window; this is the
    /// value Algorithm 3 line 23 returns.
    pub latest: Point,
    /// A reservoir-sampled random member (Section 2.3 extension).
    pub random_member: Point,
    /// Number of group points observed since the representative.
    pub count: u64,
}

impl From<&WindowGroupEntry> for GroupSample {
    fn from(e: &WindowGroupEntry) -> Self {
        Self {
            representative: e.rep.clone(),
            latest: e.last.clone(),
            random_member: e.reservoir.clone(),
            count: e.count,
        }
    }
}

/// Algorithm 3 of the paper: robust ℓ0-sampling over sliding windows in
/// `O(log w log m)` words.
///
/// Works for both sequence-based and time-based windows; pass the desired
/// [`Window`] at construction.
///
/// # Examples
///
/// ```
/// use rds_core::{SlidingWindowSampler, SamplerConfig};
/// use rds_geometry::Point;
/// use rds_stream::{Stamp, StreamItem, Window};
///
/// let cfg = SamplerConfig::builder(1, 0.5).seed(5).build().unwrap();
/// let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(16)).unwrap();
/// for i in 0..100u64 {
///     s.process(&StreamItem::new(Point::new(vec![(i % 40) as f64 * 10.0]), Stamp::at(i)));
/// }
/// let sample = s.query().expect("window is non-empty");
/// assert_eq!(sample.latest.dim(), 1);
/// ```
#[derive(Debug)]
pub struct SlidingWindowSampler {
    ctx: Arc<SamplerContext>,
    window: Window,
    levels: Vec<FixedRateWindowSampler>,
    threshold: usize,
    scratch: Vec<i64>,
    rng: StdRng,
    seen: u64,
    overflow_errors: u64,
    split_failures: u64,
    space: SpaceMeter,
    /// Per-level copy-on-write snapshot cache: the entry chunk published
    /// for a level at the [`FixedRateWindowSampler::mutations`] reading it
    /// was built from. A level whose counter is unchanged re-publishes its
    /// `Arc` chunk without copying a single entry. Lazily sized; never
    /// serialized.
    summary_cache: Vec<Option<(u64, EntryChunk)>>,
}

impl SlidingWindowSampler {
    /// Creates the sampler over a bounded window (with the
    /// configuration's default threshold).
    ///
    /// # Errors
    ///
    /// [`RdsError::UnboundedWindow`] / [`RdsError::EmptyWindow`] for a bad
    /// window (use [`crate::RobustL0Sampler`] for the infinite window), or
    /// any [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig, window: Window) -> Result<Self, RdsError> {
        let threshold = cfg.threshold();
        Self::try_with_threshold(cfg, window, threshold)
    }

    /// Creates the sampler with an explicit per-level `|Sacc|` threshold
    /// (the Section 5 F0 regime uses `kappa_B / eps^2`).
    ///
    /// # Errors
    ///
    /// [`RdsError::UnboundedWindow`], [`RdsError::EmptyWindow`],
    /// [`RdsError::InvalidThreshold`], or any [`SamplerConfig::validate`]
    /// failure.
    pub fn try_with_threshold(
        cfg: SamplerConfig,
        window: Window,
        threshold: usize,
    ) -> Result<Self, RdsError> {
        cfg.validate()?;
        let w = window.len().ok_or(RdsError::UnboundedWindow)?;
        if w == 0 {
            return Err(RdsError::EmptyWindow);
        }
        if threshold == 0 {
            return Err(RdsError::InvalidThreshold);
        }
        let seed = cfg.seed;
        // ceil(log2 w) clamped to [1, MAX_LEVEL]: at w = u64::MAX the
        // unclamped value is 64, which `level_sampled` (shift by `level`)
        // and the `2^l` in `f0_estimate` cannot represent — and a rate of
        // 2^-MAX_LEVEL is already unreachable for any physical stream.
        let top = (64 - (w - 1).leading_zeros()).clamp(1, crate::MAX_LEVEL);
        let ctx = Arc::new(SamplerContext::new(cfg));
        let levels = (0..=top)
            .map(|l| FixedRateWindowSampler::with_context(ctx.clone(), window, l, seed))
            .collect();
        Ok(Self {
            ctx,
            window,
            levels,
            threshold,
            scratch: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x51D1_1365),
            seen: 0,
            overflow_errors: 0,
            split_failures: 0,
            space: SpaceMeter::new(),
            summary_cache: Vec::new(),
        })
    }

    /// Expires entries at every level against `now` without feeding a
    /// point (the trait-level [`DistinctSampler::advance`]).
    pub fn expire(&mut self, now: Stamp) {
        for lvl in &mut self.levels {
            lvl.expire(now);
        }
    }

    /// Feeds one stream item. Stamps must be non-decreasing.
    pub fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        self.seen += 1;
        // Expire at every level (Algorithm 2 lines 1-3 run per instance).
        for lvl in &mut self.levels {
            lvl.expire(item.stamp);
        }
        // Match pass, top level first: each group has exactly one entry.
        let outcome = 'arrival: {
            for l in (0..self.levels.len()).rev() {
                match self.levels[l].try_match(item) {
                    Some(true) => {
                        // Refreshed an accepted group: the subwindow of
                        // level l now extends to the newest point; prune
                        // everything below (Algorithm 3 lines 8-9).
                        for j in 0..l {
                            self.levels[j].clear();
                        }
                        break 'arrival ProcessOutcome::Duplicate;
                    }
                    Some(false) => {
                        // Refreshed a rejected group: re-register it at
                        // level 0 (deviation 3 in the module docs). Take
                        // the refreshed entry out of level l and restart
                        // the group with the new point as representative.
                        self.remove_last_matched(l, item);
                        self.insert_at_level_zero(item);
                        break 'arrival ProcessOutcome::Duplicate;
                    }
                    None => {}
                }
            }
            // First point of its group in the window: level 0, rate 1.
            self.insert_at_level_zero(item);
            ProcessOutcome::Accepted
        };
        self.cascade();
        self.space.observe(self.words());
        outcome
    }

    /// Removes the entry of level `l` whose group contains `item` (the
    /// entry `try_match` just refreshed).
    fn remove_last_matched(&mut self, l: usize, item: &StreamItem) {
        let alpha = self.ctx.alpha();
        self.levels[l].retain_entries(|e| !e.rep.within(&item.point, alpha));
    }

    fn insert_at_level_zero(&mut self, item: &StreamItem) {
        let h = self.ctx.cell_hash(&item.point, &mut self.scratch);
        // Rate 1: every cell is sampled, the entry is accepted.
        let entry = WindowGroupEntry::new_accepted(&item.point, h, item.stamp);
        // lint:allow(L1) levels is sized at construction and never
        // shrinks, so level 0 always exists
        self.levels[0].push_entry(entry);
    }

    /// Algorithm 3 lines 10-17: while some level's accept set exceeds the
    /// threshold, split it and merge the promoted prefix one level up.
    fn cascade(&mut self) {
        let top = self.levels.len() - 1;
        let mut j = 0usize;
        while self.levels[j].accepted_len() > self.threshold {
            if j == top {
                // The paper returns "error" here (Lemma 2.8: probability
                // <= 1/m^2). We record the event and keep the oversized
                // top level: the sampler stays correct, merely larger.
                self.overflow_errors += 1;
                break;
            }
            match self.levels[j].split() {
                Some(promoted) => self.levels[j + 1].absorb(promoted),
                None => {
                    // No accepted representative survives the finer rate —
                    // negligible probability. Keep the oversized level.
                    self.split_failures += 1;
                    break;
                }
            }
            j += 1;
        }
    }

    /// Draws a robust ℓ0-sample of the current window: a uniformly random
    /// group's state. `None` iff the window is empty.
    ///
    /// Implements Algorithm 3 lines 19-23: every accepted group at level
    /// `ℓ` enters the pool with probability `R_ℓ / R_c` (where `c` is the
    /// highest level with a non-empty accept set), unifying all sample
    /// rates at `2^-c`; the result is uniform among the pool.
    pub fn query(&mut self) -> Option<GroupSample> {
        let pool = self.pooled(|e| GroupSample::from(e));
        debug_assert!(
            pool.is_empty() == self.max_nonempty_level().is_none(),
            "level c contributes with probability 1"
        );
        pool.choose(&mut self.rng).cloned()
    }

    /// Draws up to `k` *distinct* groups (Section 2.3: configure
    /// [`crate::SamplerConfigBuilder::k`] so the per-level threshold scales with
    /// `k`).
    pub fn query_k(&mut self, k: usize) -> Vec<GroupSample> {
        let mut pool = self.pooled(|e| GroupSample::from(e));
        pool.shuffle(&mut self.rng);
        pool.truncate(k);
        pool
    }

    /// The highest level with a non-empty accept set (the value `c` of
    /// Algorithm 3 line 20 and the per-copy statistic of the Section 5
    /// sliding-window F0 estimator). `None` when the window is empty.
    pub fn max_nonempty_level(&self) -> Option<u32> {
        (0..self.levels.len())
            .rev()
            .find(|&l| self.levels[l].accepted_len() > 0)
            .map(|l| l as u32)
    }

    /// Horvitz–Thompson estimate of the number of groups in the window:
    /// `Σ_ℓ |Sacc_ℓ| * 2^ℓ` (each accepted group at level `ℓ` represents
    /// `2^ℓ` groups). The sliding-window analogue of `|Sacc| * R`.
    pub fn f0_estimate(&self) -> f64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, lvl)| lvl.accepted_len() as f64 * 2f64.powi(l as i32))
            .sum()
    }

    /// Number of items processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The per-level `|Sacc|` threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of levels (`1 + ceil(log2 w)`).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Per-level accepted/rejected counts, oldest level last — diagnostic
    /// view of the subwindow structure.
    pub fn level_occupancy(&self) -> Vec<(usize, usize)> {
        self.levels
            .iter()
            .map(|l| (l.accepted_len(), l.rejected_len()))
            .collect()
    }

    /// How often the cascade hit the top level (the paper's "error"
    /// output, probability `O(1/m^2)` per step by Lemma 2.8).
    pub fn overflow_errors(&self) -> u64 {
        self.overflow_errors
    }

    /// How often a split found no promotable accepted representative
    /// (negligible probability; the level is left oversized).
    pub fn split_failures(&self) -> u64 {
        self.split_failures
    }

    /// The window model.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Current footprint in machine words.
    pub fn words(&self) -> usize {
        let level_words: usize = self.levels.iter().map(|l| l.words()).sum();
        // Each live entry costs at least ten words (three points of at
        // least one coordinate, hash, two stamps, count, flag); a total
        // below that floor means the accounting under-reports space.
        debug_assert!(
            level_words >= 10 * self.all_entries().count(),
            "words() accounting fell below the per-entry floor"
        );
        self.ctx.words() + level_words + 6
    }

    /// Peak footprint (the paper's `pSpace`).
    pub fn peak_words(&self) -> usize {
        self.space.peak_words()
    }

    /// The shared context (grid + hash).
    pub fn context(&self) -> &SamplerContext {
        &self.ctx
    }

    /// All live entries across levels (diagnostics/tests).
    pub fn all_entries(&self) -> impl Iterator<Item = &WindowGroupEntry> {
        self.levels.iter().flat_map(|l| l.entries().iter())
    }

    /// Algorithm 3 lines 19-22, the single pooling implementation behind
    /// every query flavour: each accepted entry at level `ℓ` enters the
    /// pool with probability `2^-(c-ℓ)` (where `c` is the highest
    /// occupied level), mapped through `view`.
    fn pooled<T>(&mut self, view: impl Fn(&WindowGroupEntry) -> T) -> Vec<T> {
        let Some(c) = self.max_nonempty_level() else {
            return Vec::new();
        };
        let mut pool = Vec::new();
        for l in 0..=c {
            let keep_prob = 0.5f64.powi((c - l) as i32);
            for e in self.levels[l as usize].entries() {
                if !e.accepted {
                    continue;
                }
                if keep_prob >= 1.0 || self.rng.random_range(0.0..1.0) < keep_prob {
                    pool.push(view(e));
                }
            }
        }
        pool
    }
}

/// The serializable full state of a [`SlidingWindowSampler`]: one
/// [`FixedRateLevelState`] per hierarchy level (entries + per-level PRNG
/// position), the window model, the threshold, the clocks and the query
/// PRNG position. The shared grid/hash context is a deterministic
/// function of the embedded [`SamplerConfig`] and is rebuilt on restore.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlidingWindowState {
    cfg: SamplerConfig,
    window: Window,
    threshold: usize,
    levels: Vec<FixedRateLevelState>,
    seen: u64,
    overflow_errors: u64,
    split_failures: u64,
    rng: RngState,
    peak_words: usize,
}

impl SlidingWindowState {
    /// The configuration the checkpointed sampler was built from.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The window model in force at capture time.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The per-level states, level 0 first.
    pub fn levels(&self) -> &[FixedRateLevelState] {
        &self.levels
    }
}

impl Checkpointable for SlidingWindowSampler {
    type State = SlidingWindowState;

    fn checkpoint_state(&self) -> SlidingWindowState {
        SlidingWindowState {
            cfg: self.ctx.cfg().clone(),
            window: self.window,
            threshold: self.threshold,
            levels: self.levels.iter().map(|l| l.capture_level()).collect(),
            seen: self.seen,
            overflow_errors: self.overflow_errors,
            split_failures: self.split_failures,
            rng: RngState::capture(&self.rng),
            peak_words: self.space.peak_words(),
        }
    }

    fn try_from_state(state: SlidingWindowState) -> Result<Self, RdsError> {
        let mut s = Self::try_with_threshold(state.cfg, state.window, state.threshold)?;
        if s.levels.len() != state.levels.len() {
            return Err(checkpoint_err(format!(
                "window {:?} builds {} hierarchy levels but the state holds {}",
                state.window,
                s.levels.len(),
                state.levels.len()
            )));
        }
        for (lvl, st) in s.levels.iter_mut().zip(state.levels) {
            lvl.restore_level(st)?;
        }
        s.seen = state.seen;
        s.overflow_errors = state.overflow_errors;
        s.split_failures = state.split_failures;
        s.rng = state.rng.restore();
        s.space.observe(state.peak_words);
        s.space.observe(s.words());
        Ok(s)
    }

    fn state_config(state: &SlidingWindowState) -> Option<&SamplerConfig> {
        Some(&state.cfg)
    }

    fn state_window(state: &SlidingWindowState) -> Option<Window> {
        Some(state.window)
    }
}

impl DistinctSampler for SlidingWindowSampler {
    type Summary = WindowSummary;

    /// Expiry changes the summary as the clock moves, without new items.
    const TIME_SENSITIVE: bool = true;

    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        SlidingWindowSampler::process(self, item)
    }

    fn advance(&mut self, now: Stamp) {
        self.expire(now);
    }

    /// The record's `rep` is the group's latest point (always inside the
    /// window).
    fn query_record(&mut self) -> Option<GroupRecord> {
        let pool = self.pooled(window_entry_record);
        pool.choose(&mut self.rng).cloned()
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        let mut pool = self.pooled(window_entry_record);
        pool.shuffle(&mut self.rng);
        pool.truncate(k);
        pool
    }

    fn f0_estimate(&self) -> f64 {
        SlidingWindowSampler::f0_estimate(self)
    }

    fn seen(&self) -> u64 {
        SlidingWindowSampler::seen(self)
    }

    fn words(&self) -> usize {
        SlidingWindowSampler::words(self)
    }

    fn summary(&self) -> WindowSummary {
        let entries = self
            .levels
            .iter()
            .enumerate()
            .flat_map(|(l, lvl)| {
                lvl.entries()
                    .iter()
                    .filter(|e| e.accepted)
                    .map(move |e| (l as u32, e.clone()))
            })
            .collect();
        WindowSummary::from_parts(self.ctx.cfg().clone(), entries)
    }

    /// Rebuilds only the per-level chunks whose [`FixedRateWindowSampler`]
    /// mutation counter moved since the previous call; untouched levels
    /// contribute their previously published `Arc` chunk as-is. Always
    /// equal to [`Self::summary`] (the chunks flatten to the same entry
    /// sequence: levels in order, accepted entries in arrival order).
    fn summary_cow(&mut self) -> WindowSummary {
        if self.summary_cache.len() != self.levels.len() {
            self.summary_cache = vec![None; self.levels.len()];
        }
        let mut chunks = Vec::new();
        for (l, lvl) in self.levels.iter().enumerate() {
            let muts = lvl.mutations();
            let chunk = match &self.summary_cache[l] {
                Some((stamp, chunk)) if *stamp == muts => chunk.clone(),
                _ => {
                    let built: EntryChunk = Arc::new(
                        lvl.entries()
                            .iter()
                            .filter(|e| e.accepted)
                            .map(|e| (l as u32, e.clone()))
                            .collect(),
                    );
                    self.summary_cache[l] = Some((muts, built.clone()));
                    built
                }
            };
            if !chunk.is_empty() {
                chunks.push(chunk);
            }
        }
        WindowSummary::from_chunks(self.ctx.cfg().clone(), chunks)
    }

    fn into_summary(mut self) -> WindowSummary {
        let cfg = self.ctx.cfg().clone();
        let entries = self
            .levels
            .iter_mut()
            .enumerate()
            .flat_map(|(l, lvl)| {
                lvl.take_entries()
                    .into_iter()
                    .filter(|e| e.accepted)
                    .map(move |e| (l as u32, e))
            })
            .collect();
        WindowSummary::from_parts(cfg, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_stream::Stamp;

    fn item(x: f64, seq: u64) -> StreamItem {
        StreamItem::new(Point::new(vec![x]), Stamp::at(seq))
    }

    fn cfg(seed: u64) -> SamplerConfig {
        SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(1 << 12).build().unwrap()
    }

    /// Brute-force ground truth: group ids of live points under a
    /// sequence window, for 1-D streams where group = round(x / 10).
    fn live_groups(stream: &[StreamItem], now: u64, w: u64) -> Vec<i64> {
        let mut gs: Vec<i64> = stream
            .iter()
            .filter(|it| it.stamp.seq + w > now && it.stamp.seq <= now)
            .map(|it| (it.point.get(0) / 10.0).round() as i64)
            .collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }

    #[test]
    fn query_none_only_when_window_empty() {
        let mut s = SlidingWindowSampler::try_new(cfg(1), Window::Sequence(4)).unwrap();
        assert!(s.query().is_none());
        s.process(&item(0.0, 0));
        assert!(s.query().is_some());
    }

    #[test]
    fn single_group_stream_always_samples_it() {
        let mut s = SlidingWindowSampler::try_new(cfg(2), Window::Sequence(8)).unwrap();
        for i in 0..50u64 {
            s.process(&item(0.1 * ((i % 3) as f64), i));
            let q = s.query().expect("window never empty");
            assert!(q.latest.within(&Point::new(vec![0.0]), 0.5));
        }
    }

    #[test]
    fn sampled_latest_point_is_always_live() {
        let w = 16u64;
        let mut s = SlidingWindowSampler::try_new(cfg(3), Window::Sequence(w)).unwrap();
        let stream: Vec<StreamItem> = (0..300u64)
            .map(|i| item(((i * 7) % 60) as f64 * 10.0, i))
            .collect();
        for (i, it) in stream.iter().enumerate() {
            s.process(it);
            let q = s.query().expect("non-empty");
            // the returned latest point must be one of the live points
            let live: Vec<&StreamItem> = stream[..=i]
                .iter()
                .filter(|x| x.stamp.seq + w > it.stamp.seq)
                .collect();
            assert!(
                live.iter().any(|x| x.point == q.latest),
                "sampled point not live at step {i}"
            );
        }
    }

    #[test]
    fn tracked_groups_are_a_subset_of_live_groups() {
        let w = 32u64;
        let mut s = SlidingWindowSampler::try_new(cfg(4), Window::Sequence(w)).unwrap();
        let stream: Vec<StreamItem> = (0..400u64)
            .map(|i| item(((i * 13) % 90) as f64 * 10.0, i))
            .collect();
        for (i, it) in stream.iter().enumerate() {
            s.process(it);
            let live = live_groups(&stream[..=i], it.stamp.seq, w);
            for e in s.all_entries() {
                let g = (e.last.get(0) / 10.0).round() as i64;
                assert!(live.contains(&g), "tracked group {g} not live at {i}");
            }
        }
    }

    #[test]
    fn no_group_is_tracked_twice() {
        let mut s = SlidingWindowSampler::try_new(cfg(5), Window::Sequence(64)).unwrap();
        for i in 0..500u64 {
            s.process(&item(((i * 13) % 90) as f64 * 10.0, i));
            let mut reps: Vec<i64> = s
                .all_entries()
                .map(|e| (e.rep.get(0) / 10.0).round() as i64)
                .collect();
            let n = reps.len();
            reps.sort_unstable();
            reps.dedup();
            assert_eq!(reps.len(), n, "duplicate group entries at step {i}");
        }
    }

    #[test]
    fn cascade_keeps_levels_at_threshold() {
        let mut s = SlidingWindowSampler::try_new(
            SamplerConfig { kappa0: 0.5, ..cfg(6) }, // tight threshold to force splits
            Window::Sequence(256),
        ).unwrap();
        let mut over_budget_steps = 0u64;
        for i in 0..2000u64 {
            s.process(&item(((i * 13) % 512) as f64 * 10.0, i));
            let occ = s.level_occupancy();
            // All levels but possibly the top respect the threshold, up to
            // the slack accumulated by failed splits (a split fails with
            // probability 2^-|Sacc| when no accepted representative
            // survives the finer rate; the level is then left oversized
            // until a promotable entry arrives).
            for (l, (acc, _)) in occ.iter().enumerate().take(occ.len() - 1) {
                assert!(
                    *acc <= 2 * s.threshold() + 2,
                    "level {l} far over threshold at step {i}: {occ:?}"
                );
                if *acc > s.threshold() {
                    over_budget_steps += 1;
                }
            }
        }
        assert_eq!(s.overflow_errors(), 0);
        // oversized levels must be the exception, not the rule
        assert!(
            over_budget_steps < 400,
            "levels exceeded the threshold during {over_budget_steps} level-steps"
        );
    }

    #[test]
    fn levels_above_zero_only_hold_rate_passing_accepts() {
        let mut s = SlidingWindowSampler::try_new(SamplerConfig { kappa0: 0.5, ..cfg(7) }, Window::Sequence(128)).unwrap();
        for i in 0..1500u64 {
            s.process(&item(((i * 29) % 300) as f64 * 10.0, i));
        }
        for (l, lvl) in s.levels.iter().enumerate() {
            for e in lvl.entries() {
                if e.accepted {
                    assert!(
                        s.ctx.hash_sampled(e.rep_hash, l as u32),
                        "accepted entry at level {l} fails its rate"
                    );
                }
            }
        }
    }

    #[test]
    fn time_based_window_works() {
        let mut s = SlidingWindowSampler::try_new(cfg(8), Window::Time(10)).unwrap();
        // bursts: 5 groups at time 0, 1 group at time 20
        for g in 0..5u64 {
            s.process(&StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        assert!(s.query().is_some());
        s.process(&StreamItem::new(
            Point::new(vec![990.0]),
            Stamp::new(5, 20),
        ));
        // the burst expired; only the last group is live
        let q = s.query().expect("non-empty");
        assert_eq!(q.latest, Point::new(vec![990.0]));
    }

    #[test]
    fn rejected_group_refresh_keeps_sampler_answerable() {
        // Regression test for deviation 3: force a scenario where the only
        // live group was once rejected at a high level, then refreshed.
        let mut s = SlidingWindowSampler::try_new(SamplerConfig { kappa0: 0.5, ..cfg(9) }, Window::Sequence(64)).unwrap();
        // Fill with many groups to push entries upward (some rejected).
        for i in 0..512u64 {
            s.process(&item(((i * 13) % 128) as f64 * 10.0, i));
        }
        // Now stream only points of one group; everything else expires.
        for i in 512..600u64 {
            s.process(&item(40.0 + 0.01 * (i % 3) as f64, i));
            let q = s.query().expect("window non-empty (Lemma 2.10)");
            if i >= 512 + 64 {
                assert!(
                    q.latest.within(&Point::new(vec![40.0]), 0.5),
                    "only group 4 is live"
                );
            }
        }
    }

    #[test]
    fn uniformity_over_groups_in_window() {
        // Scaled-down empirical check of Theorem 2.7: cycle through 12
        // groups; at the end the window holds all 12; sampling must be
        // roughly uniform over independent sampler instances.
        let n_groups = 12u64;
        let stream: Vec<StreamItem> = (0..240u64)
            .map(|i| item((i % n_groups) as f64 * 10.0, i))
            .collect();
        let mut hist = rds_metrics::SampleHistogram::new(n_groups as usize);
        for run in 0..800u64 {
            let mut s = SlidingWindowSampler::try_new(
                SamplerConfig::builder(1, 0.5)
                    .seed(run * 101 + 7)
                    .expected_len(240)
                    .kappa0(1.0).build().unwrap(),
                Window::Sequence(2 * n_groups),
            ).unwrap();
            for it in &stream {
                s.process(it);
            }
            let q = s.query().expect("non-empty");
            let g = (q.latest.get(0) / 10.0).round() as usize;
            hist.record(g);
        }
        assert!(
            hist.std_dev_nm() < 0.45,
            "stdDevNm {} too large; counts {:?}",
            hist.std_dev_nm(),
            hist.counts()
        );
    }

    #[test]
    fn k_query_returns_distinct_groups() {
        let mut s = SlidingWindowSampler::try_new(
            SamplerConfig { k: 3, kappa0: 1.0, ..cfg(10) },
            Window::Sequence(64),
        ).unwrap();
        for i in 0..200u64 {
            s.process(&item((i % 40) as f64 * 10.0, i));
        }
        let picks = s.query_k(3);
        assert_eq!(picks.len(), 3);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].representative.within(&picks[j].representative, 0.5));
            }
        }
    }

    #[test]
    fn f0_estimate_is_in_the_right_ballpark() {
        let n_groups = 64u64;
        let mut s = SlidingWindowSampler::try_new(cfg(11), Window::Sequence(512)).unwrap();
        for i in 0..2048u64 {
            s.process(&item((i % n_groups) as f64 * 10.0, i));
        }
        let est = s.f0_estimate();
        assert!(
            est >= n_groups as f64 / 4.0 && est <= n_groups as f64 * 4.0,
            "estimate {est} far from {n_groups}"
        );
    }

    #[test]
    fn space_stays_polylogarithmic() {
        // window 4096, ~8192 groups: the naive tracker would hold 4096
        // entries; the hierarchy must stay well below that.
        let mut s = SlidingWindowSampler::try_new(
            SamplerConfig::builder(1, 0.5)
                .seed(12)
                .expected_len(1 << 14)
                .kappa0(1.0).build().unwrap(),
            Window::Sequence(4096),
        ).unwrap();
        for i in 0..16384u64 {
            s.process(&item((i % 8192) as f64 * 10.0, i));
        }
        let entries: usize = s.all_entries().count();
        assert!(
            entries < 1200,
            "hierarchy holds {entries} entries; expected O(log w log m)"
        );
        assert!(s.peak_words() > 0);
    }

    #[test]
    fn infinite_window_is_rejected() {
        let err = SlidingWindowSampler::try_new(cfg(13), Window::Infinite).unwrap_err();
        assert!(matches!(err, RdsError::UnboundedWindow));
    }

    #[test]
    fn sequence_and_time_agree_when_stamps_coincide() {
        let stream: Vec<StreamItem> = (0..100u64)
            .map(|i| item((i % 20) as f64 * 10.0, i))
            .collect();
        let mut a = SlidingWindowSampler::try_new(cfg(14), Window::Sequence(16)).unwrap();
        let mut b = SlidingWindowSampler::try_new(cfg(14), Window::Time(16)).unwrap();
        for it in &stream {
            a.process(it);
            b.process(it);
        }
        // identical seeds + identical expiry semantics => same structure
        assert_eq!(a.level_occupancy(), b.level_occupancy());
    }
}
