//! Algorithm 2: sliding-window sampling with a *fixed* cell sample rate.
//!
//! Besides the accept and reject sets of Algorithm 1, the sliding-window
//! subroutine maintains the key-value store `A` of pairs `(u, p)` where
//! `u` is a candidate group's representative and `p` is the group's
//! *latest* point (always inside the window). When a group's latest point
//! expires, the whole entry is deleted; when a new first point arrives it
//! becomes the representative of its group for the current window
//! (Observation 1 of the paper).
//!
//! This struct is used standalone (it is a correct sampler, merely without
//! a good space bound — it may hold up to `w/R` entries) and as the
//! per-level building block of the hierarchical Algorithm 3, which calls
//! the crate-internal `split`/`absorb` methods implementing Algorithms 4
//! and 5.

use crate::checkpoint::{check_dims, check_level, checkpoint_err, Checkpointable, RngState};
use crate::config::{SamplerConfig, SamplerContext};
use crate::error::RdsError;
use crate::infinite::{GroupRecord, ProcessOutcome};
use crate::sampler::{window_entry_record, DistinctSampler, WindowSummary};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use std::sync::Arc;

/// Per-group state of the sliding-window samplers: the representative
/// `u`, the latest point `p` (the value of the pair `(u, p) ∈ A`), and
/// bookkeeping. Serializes as part of [`WindowSummary`] (the offline
/// snapshot path).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WindowGroupEntry {
    /// The group's representative for the current window.
    pub rep: Point,
    /// `h(cell(rep))`, cached for split refiltering.
    pub rep_hash: u64,
    /// When the representative arrived.
    pub rep_stamp: Stamp,
    /// Whether the group is in the accept set (`true`) or the reject set
    /// (`false`).
    pub accepted: bool,
    /// The group's latest point (inside the window).
    pub last: Point,
    /// When the latest point arrived; the entry expires when this leaves
    /// the window.
    pub last_stamp: Stamp,
    /// Number of points of the group observed since the representative.
    pub count: u64,
    /// Reservoir-sampled random member of the group since the
    /// representative (Section 2.3 extension).
    pub reservoir: Point,
}

impl WindowGroupEntry {
    /// Builds an accepted entry with `p` as both representative and latest
    /// point (used by Algorithm 3's level-0 insertion, where rate 1
    /// accepts every cell).
    pub(crate) fn new_accepted(p: &Point, hash: u64, stamp: Stamp) -> Self {
        Self::new(p, hash, stamp, true)
    }

    fn new(p: &Point, hash: u64, stamp: Stamp, accepted: bool) -> Self {
        Self {
            rep: p.clone(),
            rep_hash: hash,
            rep_stamp: stamp,
            accepted,
            last: p.clone(),
            last_stamp: stamp,
            count: 1,
            reservoir: p.clone(),
        }
    }

    /// Words of memory used by the entry (`pSpace` accounting).
    pub fn words(&self) -> usize {
        // rep + last + reservoir coordinates, hash, 2 stamps (2 words
        // each), count, flag
        3 * self.rep.words() + 7
    }
}

/// Algorithm 2 of the paper: a sliding-window robust ℓ0-sampler whose cell
/// sample rate is fixed at `1/R = 2^-level`.
///
/// # Examples
///
/// ```
/// use rds_core::{FixedRateWindowSampler, SamplerConfig};
/// use rds_geometry::Point;
/// use rds_stream::{Stamp, StreamItem, Window};
///
/// let cfg = SamplerConfig::builder(1, 0.5).seed(3).build().unwrap();
/// let mut s = FixedRateWindowSampler::new(cfg, Window::Sequence(4), 0);
/// for i in 0..10u64 {
///     let item = StreamItem::new(Point::new(vec![i as f64 * 10.0]), Stamp::at(i));
///     s.process(&item);
/// }
/// // rate 1 (level 0) tracks every group in the window
/// assert_eq!(s.accepted_len(), 4);
/// ```
#[derive(Debug)]
pub struct FixedRateWindowSampler {
    ctx: Arc<SamplerContext>,
    window: Window,
    level: u32,
    entries: Vec<WindowGroupEntry>,
    scratch: Vec<i64>,
    rng: StdRng,
    seen: u64,
    /// Monotone count of operations that changed `entries` — the level's
    /// dirty bit for copy-on-write snapshots: a level whose counter is
    /// unchanged since the last snapshot can reuse its published chunk.
    mutations: u64,
}

impl FixedRateWindowSampler {
    /// Creates a sampler with rate `2^-level` over `window`.
    // lint:allow(L4) infallible by design: a pure delegation to
    // with_context over an already-builder-validated config — there is
    // no validation a try_new could fail
    pub fn new(cfg: SamplerConfig, window: Window, level: u32) -> Self {
        let seed = cfg.seed;
        Self::with_context(Arc::new(SamplerContext::new(cfg)), window, level, seed)
    }

    /// Creates a sampler sharing an existing context (used by Algorithm 3,
    /// whose levels must agree on the grid and hash function).
    pub fn with_context(
        ctx: Arc<SamplerContext>,
        window: Window,
        level: u32,
        seed: u64,
    ) -> Self {
        Self {
            ctx,
            window,
            level,
            entries: Vec::new(),
            scratch: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xA1 ^ ((level as u64) << 32)),
            seen: 0,
            mutations: 0,
        }
    }

    /// Feeds one stream item: expiry (lines 1-3), duplicate update
    /// (lines 4-6) or representative insertion (lines 7-10).
    pub fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        self.seen += 1;
        self.expire(item.stamp);
        if self.update_duplicate(item).is_some() {
            return ProcessOutcome::Duplicate;
        }
        self.insert_first_point(item)
    }

    /// Number of items processed through [`Self::process`] (items pushed
    /// by the Algorithm 3 hierarchy via `push_entry`/`absorb` are the
    /// parent's and are not counted here).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Horvitz–Thompson estimate of the number of groups in the window at
    /// this sampler's fixed rate: `|Sacc| * 2^level`.
    pub fn f0_estimate(&self) -> f64 {
        self.accepted_len() as f64 * 2f64.powi(self.level as i32)
    }

    /// Lines 1-3 of Algorithm 2: drop every group whose latest point has
    /// expired.
    pub fn expire(&mut self, now: Stamp) {
        let window = self.window;
        let before = self.entries.len();
        self.entries.retain(|e| window.live(e.last_stamp, now));
        if self.entries.len() != before {
            self.mutations += 1;
        }
    }

    /// Lines 4-6: if the item belongs to a tracked candidate group, record
    /// it as the group's latest point. Returns whether the matched group
    /// is accepted.
    pub(crate) fn update_duplicate(&mut self, item: &StreamItem) -> Option<bool> {
        let alpha = self.ctx.alpha();
        let rng = &mut self.rng;
        let mutations = &mut self.mutations;
        self.entries
            .iter_mut()
            .find(|e| e.rep.within(&item.point, alpha))
            .map(|e| {
                e.last = item.point.clone();
                e.last_stamp = item.stamp;
                e.count += 1;
                // One next_u64 via the word-at-a-time draw; identical
                // arithmetic and state evolution to random_range(0..count).
                if rng.word_below(e.count) == 0 {
                    e.reservoir = item.point.clone();
                }
                *mutations += 1;
                e.accepted
            })
    }

    /// Lines 7-10: the item is the first point of its group in the window;
    /// make it the representative, accepted when its own cell is sampled,
    /// rejected when only an adjacent cell is.
    pub(crate) fn insert_first_point(&mut self, item: &StreamItem) -> ProcessOutcome {
        let h = self.ctx.cell_hash(&item.point, &mut self.scratch);
        if self.ctx.hash_sampled(h, self.level) {
            self.entries
                .push(WindowGroupEntry::new(&item.point, h, item.stamp, true));
            self.mutations += 1;
            ProcessOutcome::Accepted
        } else if self.ctx.any_adjacent_sampled(&item.point, self.level) {
            self.entries
                .push(WindowGroupEntry::new(&item.point, h, item.stamp, false));
            self.mutations += 1;
            ProcessOutcome::Rejected
        } else {
            ProcessOutcome::Ignored
        }
    }

    /// Draws a uniformly random accepted group; the returned entry's
    /// `last` point is inside the window (Observation 1 guarantees each
    /// accepted group is a `1/R` sample of the window's groups).
    pub fn query(&mut self) -> Option<&WindowGroupEntry> {
        let accepted: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.accepted)
            .map(|(i, _)| i)
            .collect();
        accepted.choose(&mut self.rng).map(|&i| &self.entries[i])
    }

    /// Number of accepted groups (`|Sacc|`).
    pub fn accepted_len(&self) -> usize {
        self.entries.iter().filter(|e| e.accepted).count()
    }

    /// Number of rejected groups (`|Srej|`).
    pub fn rejected_len(&self) -> usize {
        self.entries.len() - self.accepted_len()
    }

    /// All tracked entries, ordered by representative arrival.
    pub fn entries(&self) -> &[WindowGroupEntry] {
        &self.entries
    }

    /// The sampler's rate exponent (`R = 2^level`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The window model.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Resets the sampler to the empty state, keeping its rate
    /// (`ALG_j <- (⊥, ⊥, ⊥, R_j)`, Algorithm 3 line 9).
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.mutations += 1;
        }
        self.entries.clear();
    }

    /// Monotone dirty counter: bumped by every operation that changed the
    /// tracked entries. Two equal readings bracket a span with no content
    /// change — the copy-on-write snapshot reuse condition.
    pub(crate) fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Words of memory used by the entries.
    pub fn words(&self) -> usize {
        self.entries.iter().map(WindowGroupEntry::words).sum::<usize>() + 2
    }

    /// Mutable duplicate-update for Algorithm 3's match pass: like
    /// `update_duplicate` but without expiry (the caller already expired
    /// all levels).
    pub(crate) fn try_match(&mut self, item: &StreamItem) -> Option<bool> {
        self.update_duplicate(item)
    }

    /// Inserts a pre-built entry (Algorithm 3's level-0 insertion and
    /// `Merge`'s entry transfer keep entries ordered by `rep_stamp`).
    pub(crate) fn push_entry(&mut self, entry: WindowGroupEntry) {
        debug_assert!(
            self.entries
                .last()
                .map(|e| e.rep_stamp <= entry.rep_stamp)
                .unwrap_or(true),
            "entries must stay ordered by representative arrival"
        );
        self.entries.push(entry);
        self.mutations += 1;
    }

    /// Algorithm 4 (`Split`): promotes the oldest prefix of this level to
    /// rate `2^-(level+1)`.
    ///
    /// Let `t` be the arrival stamp of the *latest* accepted
    /// representative that survives the finer rate. All entries with
    /// `rep_stamp <= t` are refiltered at `level + 1` (own cell sampled →
    /// accepted; else adjacent cell sampled → rejected; else dropped) and
    /// returned for merging into the next level; entries after `t` stay
    /// here. Returns `None` — without touching anything — when no accepted
    /// representative survives, an event of negligible probability that
    /// the caller surfaces as a failed split.
    pub(crate) fn split(&mut self) -> Option<Vec<WindowGroupEntry>> {
        let next = self.level + 1;
        let t = self
            .entries
            .iter()
            .filter(|e| e.accepted && self.ctx.hash_sampled(e.rep_hash, next))
            .map(|e| e.rep_stamp)
            .max()?;
        let mut promoted = Vec::new();
        let mut kept = Vec::new();
        for e in self.entries.drain(..) {
            if e.rep_stamp <= t {
                promoted.push(e);
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        self.mutations += 1;
        // Refilter the promoted prefix at the finer rate. Fact 1b: an
        // accepted entry can stay accepted or degrade; a rejected entry
        // can never become accepted.
        let refiltered = promoted
            .into_iter()
            .filter_map(|mut e| {
                if self.ctx.hash_sampled(e.rep_hash, next) {
                    e.accepted = true;
                    Some(e)
                } else if self.ctx.any_adjacent_sampled(&e.rep, next) {
                    e.accepted = false;
                    Some(e)
                } else {
                    None
                }
            })
            .collect();
        Some(refiltered)
    }

    /// Algorithm 5 (`Merge`): absorbs entries promoted from the level
    /// below. The promoted entries are newer than everything already here
    /// (they come from a more recent subwindow), so ordering by
    /// `rep_stamp` is preserved by appending.
    pub(crate) fn absorb(&mut self, promoted: Vec<WindowGroupEntry>) {
        for e in promoted {
            self.push_entry(e);
        }
    }

    /// Keeps only the entries satisfying the predicate (Algorithm 3 uses
    /// this to pull a just-refreshed rejected group out of its level).
    pub(crate) fn retain_entries<F: FnMut(&WindowGroupEntry) -> bool>(&mut self, f: F) {
        let before = self.entries.len();
        self.entries.retain(f);
        if self.entries.len() != before {
            self.mutations += 1;
        }
    }

    /// Moves every entry out (the cheap `into_summary` path).
    pub(crate) fn take_entries(&mut self) -> Vec<WindowGroupEntry> {
        if !self.entries.is_empty() {
            self.mutations += 1;
        }
        std::mem::take(&mut self.entries)
    }
}

/// The serializable state of one fixed-rate instance: its rate exponent,
/// every tracked entry, its private PRNG position, and its per-instance
/// arrival counter. Used standalone (via [`FixedRateWindowState`]) and as
/// the per-level payload of the hierarchical sampler's state.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FixedRateLevelState {
    level: u32,
    entries: Vec<WindowGroupEntry>,
    rng: RngState,
    seen: u64,
}

impl FixedRateLevelState {
    /// The rate exponent this level state belongs to.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The tracked entries (accepted and rejected).
    pub fn entries(&self) -> &[WindowGroupEntry] {
        &self.entries
    }
}

impl FixedRateWindowSampler {
    /// Captures this instance's level state (entries cloned; the sampler
    /// keeps running).
    pub(crate) fn capture_level(&self) -> FixedRateLevelState {
        FixedRateLevelState {
            level: self.level,
            entries: self.entries.clone(),
            rng: RngState::capture(&self.rng),
            seen: self.seen,
        }
    }

    /// Restores a captured level state into this (freshly built)
    /// instance, validating that the state belongs to this rate and that
    /// every stored point matches the configured dimension.
    pub(crate) fn restore_level(&mut self, state: FixedRateLevelState) -> Result<(), RdsError> {
        if state.level != self.level {
            return Err(checkpoint_err(format!(
                "level state for rate exponent {} restored into level {}",
                state.level, self.level
            )));
        }
        check_dims(
            self.ctx.cfg(),
            state
                .entries
                .iter()
                .flat_map(|e| [&e.rep, &e.last, &e.reservoir]),
            "window entries",
        )?;
        self.entries = state.entries;
        self.rng = state.rng.restore();
        self.seen = state.seen;
        self.mutations += 1;
        Ok(())
    }
}

/// The serializable full state of a standalone [`FixedRateWindowSampler`]:
/// the configuration (grid and hash are rebuilt from it), the window
/// model, and the level payload.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FixedRateWindowState {
    cfg: SamplerConfig,
    window: Window,
    state: FixedRateLevelState,
}

impl FixedRateWindowState {
    /// The configuration the checkpointed sampler was built from.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The window model in force at capture time.
    pub fn window(&self) -> Window {
        self.window
    }
}

impl Checkpointable for FixedRateWindowSampler {
    type State = FixedRateWindowState;

    fn checkpoint_state(&self) -> FixedRateWindowState {
        FixedRateWindowState {
            cfg: self.ctx.cfg().clone(),
            window: self.window,
            state: self.capture_level(),
        }
    }

    fn try_from_state(state: FixedRateWindowState) -> Result<Self, RdsError> {
        state.cfg.validate()?;
        check_level(state.state.level)?;
        // `Window::Infinite` is a legitimate construction (a fixed-rate
        // tracker over the whole stream), but a zero-width bounded window
        // expires every entry on the next arrival — no sampler ever runs
        // with one (the hierarchy rejects it as `EmptyWindow`), so in a
        // checkpoint it can only be corruption.
        if state.window.len() == Some(0) {
            return Err(checkpoint_err(
                "fixed-rate window state has a zero-width window",
            ));
        }
        let mut s = Self::new(state.cfg, state.window, state.state.level);
        s.restore_level(state.state)?;
        Ok(s)
    }

    fn state_config(state: &FixedRateWindowState) -> Option<&SamplerConfig> {
        Some(&state.cfg)
    }

    fn state_window(state: &FixedRateWindowState) -> Option<Window> {
        Some(state.window)
    }
}

impl DistinctSampler for FixedRateWindowSampler {
    type Summary = WindowSummary;

    /// Expiry changes the summary as the clock moves, without new items.
    const TIME_SENSITIVE: bool = true;

    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        FixedRateWindowSampler::process(self, item)
    }

    fn advance(&mut self, now: rds_stream::Stamp) {
        self.expire(now);
    }

    /// The record's `rep` is the group's latest point (always inside the
    /// window).
    fn query_record(&mut self) -> Option<GroupRecord> {
        let accepted: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.accepted)
            .map(|(i, _)| i)
            .collect();
        accepted
            .choose(&mut self.rng)
            .map(|&i| window_entry_record(&self.entries[i]))
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        let mut accepted: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.accepted)
            .map(|(i, _)| i)
            .collect();
        use rand::seq::SliceRandom;
        accepted.shuffle(&mut self.rng);
        accepted.truncate(k);
        accepted
            .into_iter()
            .map(|i| window_entry_record(&self.entries[i]))
            .collect()
    }

    fn f0_estimate(&self) -> f64 {
        FixedRateWindowSampler::f0_estimate(self)
    }

    fn seen(&self) -> u64 {
        FixedRateWindowSampler::seen(self)
    }

    fn words(&self) -> usize {
        FixedRateWindowSampler::words(self)
    }

    fn summary(&self) -> WindowSummary {
        let level = self.level;
        let entries = self
            .entries
            .iter()
            .filter(|e| e.accepted)
            .map(|e| (level, e.clone()))
            .collect();
        WindowSummary::from_parts(self.ctx.cfg().clone(), entries)
    }

    fn into_summary(mut self) -> WindowSummary {
        let cfg = self.ctx.cfg().clone();
        let level = self.level;
        let entries = self
            .take_entries()
            .into_iter()
            .filter(|e| e.accepted)
            .map(|e| (level, e))
            .collect();
        WindowSummary::from_parts(cfg, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x: f64, seq: u64) -> StreamItem {
        StreamItem::new(Point::new(vec![x]), Stamp::at(seq))
    }

    fn cfg() -> SamplerConfig {
        SamplerConfig::builder(1, 0.5).seed(7).expected_len(64).build().unwrap()
    }

    #[test]
    fn rate_one_tracks_every_window_group() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(3), 0);
        for i in 0..12u64 {
            // every point 10 apart: every point its own group
            s.process(&item(i as f64 * 10.0, i));
        }
        assert_eq!(s.accepted_len(), 3);
        assert_eq!(s.rejected_len(), 0);
    }

    #[test]
    fn duplicates_update_latest_point() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(10), 0);
        s.process(&item(0.0, 0));
        let out = s.process(&item(0.2, 1));
        assert_eq!(out, ProcessOutcome::Duplicate);
        let e = &s.entries()[0];
        assert_eq!(e.rep, Point::new(vec![0.0]));
        assert_eq!(e.last, Point::new(vec![0.2]));
        assert_eq!(e.last_stamp, Stamp::at(1));
        assert_eq!(e.count, 2);
    }

    #[test]
    fn group_survives_while_any_point_is_live() {
        // rep arrives at t=0, expires at window 3 by t=3; but a second
        // point at t=2 keeps the group alive until t=5
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(3), 0);
        s.process(&item(0.0, 0));
        s.process(&item(0.1, 2));
        s.process(&item(50.0, 4)); // different group, triggers expiry check
        assert_eq!(s.entries().len(), 2, "group should still be alive");
        s.process(&item(60.0, 5)); // now the first group's last point (t=2) expires
        let reps: Vec<f64> = s.entries().iter().map(|e| e.rep.get(0)).collect();
        assert!(!reps.contains(&0.0), "expired group still present: {reps:?}");
    }

    #[test]
    fn representative_is_kept_while_group_lives_even_if_rep_expired() {
        // Algorithm 2 keeps the representative u in Sacc even when u
        // itself has left the window, as long as a group point is live.
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(2), 0);
        s.process(&item(0.0, 0));
        s.process(&item(0.1, 1));
        s.process(&item(0.2, 2)); // rep (t=0) is out of the window now
        let e = &s.entries()[0];
        assert_eq!(e.rep, Point::new(vec![0.0]));
        assert_eq!(e.last, Point::new(vec![0.2]));
    }

    #[test]
    fn query_returns_live_point() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(2), 0);
        for i in 0..20u64 {
            s.process(&item(i as f64 * 10.0, i));
        }
        let e = s.query().expect("window non-empty");
        // last point must be within the current window (seq 18..=19)
        assert!(e.last_stamp.seq >= 18);
    }

    #[test]
    fn time_window_expiry_differs_from_sequence() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Time(5), 0);
        // three groups arriving in a burst at time 0, then one at time 10
        s.process(&StreamItem::new(Point::new(vec![0.0]), Stamp::new(0, 0)));
        s.process(&StreamItem::new(Point::new(vec![10.0]), Stamp::new(1, 0)));
        s.process(&StreamItem::new(Point::new(vec![20.0]), Stamp::new(2, 0)));
        assert_eq!(s.entries().len(), 3);
        s.process(&StreamItem::new(Point::new(vec![30.0]), Stamp::new(3, 10)));
        // everything from time 0 expired
        assert_eq!(s.entries().len(), 1);
    }

    #[test]
    fn level_sampling_thins_the_entries() {
        // At a high level most groups are ignored.
        let cfg = SamplerConfig::builder(1, 0.5).seed(11).expected_len(1 << 12).build().unwrap();
        let mut s = FixedRateWindowSampler::new(cfg, Window::Sequence(4096), 6);
        for i in 0..4096u64 {
            s.process(&item(i as f64 * 10.0, i));
        }
        let tracked = s.entries().len();
        assert!(
            tracked < 1024,
            "level-6 sampler tracked {tracked} of 4096 groups"
        );
        assert!(s.accepted_len() >= 1, "some group should be accepted");
    }

    #[test]
    fn split_promotes_prefix_and_keeps_suffix_here() {
        let cfg = SamplerConfig::builder(1, 0.5).seed(13).expected_len(1 << 10).build().unwrap();
        let mut s = FixedRateWindowSampler::new(cfg, Window::Sequence(1024), 0);
        for i in 0..64u64 {
            s.process(&item(i as f64 * 10.0, i));
        }
        let before: usize = s.entries().len();
        assert_eq!(before, 64);
        let promoted = s.split().expect("some cell survives level 1");
        // the suffix kept at level 0 plus the promoted prefix cover the
        // split point t; nothing is duplicated
        let kept = s.entries().len();
        assert!(kept < 64);
        // every promoted entry passes the level-1 filter rules
        for e in &promoted {
            if e.accepted {
                assert!(s.ctx.hash_sampled(e.rep_hash, 1));
            } else {
                assert!(!s.ctx.hash_sampled(e.rep_hash, 1));
            }
        }
        // promoted stamps all precede kept stamps
        if let (Some(last_prom), Some(first_kept)) = (promoted.last(), s.entries().first()) {
            assert!(last_prom.rep_stamp <= first_kept.rep_stamp);
        }
        // the newest promoted entry is accepted (choice of t)
        assert!(promoted.last().expect("non-empty").accepted);
    }

    #[test]
    fn split_on_empty_returns_none() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(8), 0);
        assert!(s.split().is_none());
    }

    #[test]
    fn absorb_preserves_order() {
        let cfg_ = cfg();
        let ctx = Arc::new(SamplerContext::new(cfg_));
        let mut lower = FixedRateWindowSampler::with_context(ctx.clone(), Window::Sequence(64), 0, 1);
        let mut upper = FixedRateWindowSampler::with_context(ctx, Window::Sequence(64), 1, 1);
        for i in 0..32u64 {
            lower.process(&item(i as f64 * 10.0, i));
        }
        if let Some(promoted) = lower.split() {
            upper.absorb(promoted);
            let stamps: Vec<u64> = upper.entries().iter().map(|e| e.rep_stamp.seq).collect();
            let mut sorted = stamps.clone();
            sorted.sort_unstable();
            assert_eq!(stamps, sorted);
        }
    }

    #[test]
    fn clear_keeps_rate() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(8), 3);
        s.process(&item(0.0, 0));
        s.clear();
        assert_eq!(s.entries().len(), 0);
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn reservoir_tracks_group_members() {
        let mut s = FixedRateWindowSampler::new(cfg(), Window::Sequence(100), 0);
        s.process(&item(0.0, 0));
        for i in 1..50u64 {
            s.process(&item(0.3, i));
        }
        let e = &s.entries()[0];
        assert!(e.rep.within(&e.reservoir, 0.5));
        assert_eq!(e.count, 50);
    }
}
