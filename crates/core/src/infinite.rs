//! Algorithm 1: robust ℓ0-sampling in the infinite window.
//!
//! The sampler maintains the *accept set* `Sacc` (representatives of
//! sampled groups) and the *reject set* `Srej` (representatives of groups
//! that touch a sampled cell without their first point falling in one).
//! When `|Sacc|` exceeds `kappa_0 log m` the cell sample rate `1/R` is
//! halved (R doubles) and both sets are refiltered under the new rate; by
//! the nesting of sampled cells (Fact 1b) refiltering only removes
//! entries. At query time a uniformly random element of `Sacc` is
//! returned — Theorem 2.4 shows this is a uniform sample over groups with
//! probability `1 - 1/m`.
//!
//! Both sets live in one cell-indexed [`CandidateStore`] (struct-of-arrays
//! columns plus an open-addressing table keyed by `cell(rep)`), so the
//! per-arrival membership test probes only the buckets of the grid cells
//! within `alpha` of the point — enumerated by the same pruned DFS that
//! drives the `adj(p)` sampling test — instead of scanning every stored
//! record. Batches additionally evaluate the k-wise cell hash level in
//! one coefficient-major pass over all arrivals. Every decision, every
//! PRNG draw, and the serialized state are bit-identical to the original
//! linear-scan bookkeeping.

use crate::checkpoint::{check_dims, check_level, Checkpointable, RngState};
use crate::config::{SamplerConfig, SamplerContext, MAX_LEVEL};
use crate::distributed::MergedSummary;
use crate::error::RdsError;
use crate::sampler::DistinctSampler;
use crate::store::CandidateStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rds_geometry::{for_each_adjacent_cell_fold_with, AdjacencyScratch, Point};
use rds_hashing::CellKeyMixer;
use rds_metrics::SpaceMeter;
use rds_stream::StreamItem;
use serde::{Deserialize, Serialize};

/// Everything the sampler stores about one candidate group.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupRecord {
    /// The group's representative: its first point in the stream.
    pub rep: Point,
    /// `h(cell(rep))`, kept so refiltering after rate doubling does not
    /// rehash.
    pub cell_hash: u64,
    /// Number of stream points that landed in this group so far.
    pub count: u64,
    /// A uniformly random member of the group (reservoir sampling, the
    /// "random point as group representative" extension of Section 2.3).
    pub reservoir: Point,
}

/// Tally of [`ProcessOutcome`]s over one [`RobustL0Sampler::process_batch`]
/// call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Points that became representatives of newly sampled groups.
    pub accepted: u64,
    /// Points that became representatives of newly rejected groups.
    pub rejected: u64,
    /// Points that belonged to an already-tracked candidate group.
    pub duplicates: u64,
    /// Points whose group has no sampled cell nearby.
    pub ignored: u64,
}

impl BatchStats {
    /// Total number of points the batch contained.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected + self.duplicates + self.ignored
    }

    /// Adds one outcome to the tally.
    pub fn record(&mut self, outcome: ProcessOutcome) {
        match outcome {
            ProcessOutcome::Accepted => self.accepted += 1,
            ProcessOutcome::Rejected => self.rejected += 1,
            ProcessOutcome::Duplicate => self.duplicates += 1,
            ProcessOutcome::Ignored => self.ignored += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.duplicates += other.duplicates;
        self.ignored += other.ignored;
    }
}

/// What [`RobustL0Sampler::process`] did with a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessOutcome {
    /// The point belongs to an already-tracked candidate group
    /// (Algorithm 1 line 4: skipped, bookkeeping updated).
    Duplicate,
    /// The point became the representative of a newly *sampled* group
    /// (line 6).
    Accepted,
    /// The point became the representative of a newly *rejected* group
    /// (line 8).
    Rejected,
    /// The point's group has no sampled cell nearby; nothing stored.
    Ignored,
}

/// Algorithm 1 of the paper: streaming robust ℓ0-sampler for the infinite
/// window.
///
/// # Examples
///
/// ```
/// use rds_core::{RobustL0Sampler, SamplerConfig};
/// use rds_geometry::Point;
///
/// let cfg = SamplerConfig::builder(2, 0.5).seed(1).build().unwrap();
/// let mut sampler = RobustL0Sampler::try_new(cfg).unwrap();
/// for i in 0..100 {
///     // 10 groups of 10 near-duplicates each
///     let base = (i % 10) as f64 * 10.0;
///     sampler.process(&Point::new(vec![base, 0.01 * (i / 10) as f64]));
/// }
/// let sample = sampler.query().expect("non-empty stream");
/// assert_eq!(sample.dim(), 2);
/// ```
#[derive(Debug)]
pub struct RobustL0Sampler {
    ctx: SamplerContext,
    /// `log2 R`: cells are sampled when the low `level` bits of their hash
    /// are zero.
    level: u32,
    /// Both candidate sets, cell-indexed (see [`CandidateStore`]).
    store: CandidateStore,
    /// `|Sacc|` bound that triggers rate doubling.
    threshold: usize,
    seen: u64,
    rate_doublings: u32,
    scratch: Vec<i64>,
    /// Arrival-path scratch for the adjacent-cell DFS (cell coordinates
    /// and per-dimension bounds), reused across points.
    adj_scratch: AdjacencyScratch,
    /// Batch-path scratch: the mixer keys of one batch's cells.
    batch_keys: Vec<u64>,
    /// Batch-path scratch: the k-wise hashes of `batch_keys`.
    batch_hashes: Vec<u64>,
    rng: StdRng,
    space: SpaceMeter,
    /// Cached copy-on-write summary, cleared whenever a candidate set
    /// changes: an untouched sampler re-publishes its snapshot in `O(1)`
    /// (the cached summary's sets are `Arc`-shared, so cloning it copies
    /// no records).
    summary_cache: Option<MergedSummary>,
}

impl RobustL0Sampler {
    /// Creates the sampler with the configuration's default threshold
    /// `kappa_0 * k * log2 m`, re-validating the configuration (useful
    /// when it was built by hand rather than through
    /// [`SamplerConfig::builder`]).
    ///
    /// # Errors
    ///
    /// Any [`SamplerConfig::validate`] failure.
    pub fn try_new(cfg: SamplerConfig) -> Result<Self, RdsError> {
        let threshold = cfg.threshold();
        Self::try_with_threshold(cfg, threshold)
    }

    /// Creates the sampler with an explicit `|Sacc|` threshold. Section 5
    /// uses this to turn the sampler into an F0 estimator (threshold
    /// `kappa_B / eps^2`).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidThreshold`] on a zero threshold, or any
    /// [`SamplerConfig::validate`] failure.
    pub fn try_with_threshold(cfg: SamplerConfig, threshold: usize) -> Result<Self, RdsError> {
        cfg.validate()?;
        if threshold == 0 {
            return Err(RdsError::InvalidThreshold);
        }
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE);
        let ctx = SamplerContext::new(cfg);
        Ok(Self {
            ctx,
            level: 0,
            store: CandidateStore::new(),
            threshold,
            seen: 0,
            rate_doublings: 0,
            scratch: Vec::new(),
            adj_scratch: AdjacencyScratch::new(),
            batch_keys: Vec::new(),
            batch_hashes: Vec::new(),
            rng,
            space: SpaceMeter::new(),
            summary_cache: None,
        })
    }

    /// Feeds one stream point (the body of Algorithm 1's arrival loop).
    pub fn process(&mut self, p: &Point) -> ProcessOutcome {
        let outcome = self.process_point(p, None);
        self.space.observe(self.words());
        outcome
    }

    /// Feeds a batch of stream points: each k-wise cell hash level is
    /// evaluated in one coefficient-major pass over the whole batch, and
    /// the space-metering sweep (otherwise paid per point) is amortized
    /// over the batch. The sampler state after the call is identical to
    /// calling [`Self::process`] on every point in order; only the peak
    /// recorded by [`Self::peak_words`] is coarser (observed once per
    /// batch instead of once per point).
    pub fn process_batch(&mut self, points: &[Point]) -> BatchStats {
        self.process_batch_keyed(points.iter())
    }

    /// The shared batch path. While the stream has been mostly distinct so
    /// far (at least half of the seen points started new groups), pass 1
    /// folds every point's cell into its mixer key, pass 2 hashes all keys
    /// in one batched Horner sweep (bit-identical to hashing them one by
    /// one), pass 3 replays the sequential arrival loop with the
    /// precomputed `(key, hash)` pairs. Once duplicates dominate, most
    /// precomputed hashes would go unused (a duplicate never consumes its
    /// hash), so the batch falls back to the per-point path, which hashes
    /// lazily on a duplicate-probe miss. The precomputation is pure — no
    /// RNG draw, no stored state — so the arrival decisions are exactly
    /// those of per-point processing either way.
    fn process_batch_keyed<'a, I>(&mut self, points: I) -> BatchStats
    where
        I: Iterator<Item = &'a Point> + Clone,
    {
        let mut stats = BatchStats::default();
        let mostly_distinct = self.store.len() as u64 * 2 >= self.seen;
        if mostly_distinct {
            let mut keys = std::mem::take(&mut self.batch_keys);
            let mut hashes = std::mem::take(&mut self.batch_hashes);
            keys.clear();
            for p in points.clone() {
                keys.push(self.ctx.cell_key(p, &mut self.scratch));
            }
            self.ctx.hasher().hash_keys_slice(&keys, &mut hashes);
            for ((p, &key), &hash) in points.zip(keys.iter()).zip(hashes.iter()) {
                stats.record(self.process_point(p, Some((key, hash))));
            }
            self.batch_keys = keys;
            self.batch_hashes = hashes;
        } else {
            for p in points {
                stats.record(self.process_point(p, None));
            }
        }
        self.space.observe(self.words());
        stats
    }

    /// One arrival, without the space-meter sweep. `own` carries the
    /// point's precomputed `(cell key, cell hash)` on the batch path;
    /// `None` computes them on demand (and the hash only when the point
    /// turns out to start a new group, exactly like the pre-batch code).
    fn process_point(&mut self, p: &Point, own: Option<(u64, u64)>) -> ProcessOutcome {
        self.seen += 1;
        let alpha = self.ctx.alpha();

        // Line 4: if p belongs to a tracked candidate group, update its
        // bookkeeping (count + reservoir, Section 2.3) and skip it. Any
        // record within alpha of p has its cell within alpha of p, so
        // probing the store buckets of the DFS-enumerated adjacent cells
        // sees every match; the minimum chain rank reproduces the
        // accept-then-reject first-match order of the old linear scan.
        //
        // `|adj(p)|` grows exponentially with the dimension, so the
        // enumeration carries a cell budget: past it (high-dimensional
        // grids where the cell index stops paying for itself) the probe
        // aborts and the linear chain scan answers instead — same record
        // either way, both compute the first chain-order match.
        const PROBE_CELL_BUDGET: usize = 64;
        let mut best: Option<(u64, u32)> = None;
        let mut own_key: Option<u64> = None;
        let truncated = {
            let grid = self.ctx.grid();
            let hasher = self.ctx.hasher();
            let store = &self.store;
            let adj_scratch = &mut self.adj_scratch;
            let mut visited = 0usize;
            for_each_adjacent_cell_fold_with(
                grid,
                p,
                alpha,
                hasher.mixer().fold_init(grid.dim()),
                CellKeyMixer::fold_step,
                |_cell, key| {
                    if own_key.is_none() {
                        // The DFS visits cell(p) first.
                        own_key = Some(key);
                    }
                    visited += 1;
                    if visited > PROBE_CELL_BUDGET {
                        return true;
                    }
                    store.probe_best(key, p, alpha, &mut best);
                    false
                },
                adj_scratch,
            )
        };
        if truncated {
            best = self.store.scan_best(p, alpha);
        }
        if let Some((_, slot)) = best {
            let count = self.store.bump_count(slot);
            // Reservoir sampling: replace with probability 1/count.
            if self.rng.word_below(count) == 0 {
                self.store.set_reservoir(slot, p);
            }
            self.summary_cache = None;
            return ProcessOutcome::Duplicate;
        }

        // p is the first point of its group among the candidates.
        let (key, h) = if let Some(kh) = own {
            kh
        } else if let Some(k) = own_key {
            (k, self.ctx.hasher().hash_key(k))
        } else {
            // Unreachable (the DFS always visits cell(p)); recompute from
            // scratch rather than assume it.
            let k = self.ctx.cell_key(p, &mut self.scratch);
            (k, self.ctx.hasher().hash_key(k))
        };
        let outcome = if self.ctx.hash_sampled(h, self.level) {
            // Line 6: the group's first point fell into a sampled cell.
            self.store.push_acc(key, h, p.clone());
            self.summary_cache = None;
            ProcessOutcome::Accepted
        } else if self.ctx.any_adjacent_sampled(p, self.level) {
            // Line 8: some adjacent cell is sampled; remember the group as
            // rejected so later points of it are never mistaken for first
            // points.
            self.store.push_rej(key, h, p.clone());
            self.summary_cache = None;
            ProcessOutcome::Rejected
        } else {
            ProcessOutcome::Ignored
        };

        // Lines 10-12: halve the sample rate while the accept set is too
        // large (the level cap only guards against adversarial hash
        // degeneracies).
        while self.store.acc_len() > self.threshold && self.level < MAX_LEVEL {
            self.double_rate();
        }
        outcome
    }

    /// Doubles `R` and refilters both sets under the new rate.
    ///
    /// Groups whose own cell survives stay accepted (Fact 1b: survivors
    /// are a subset, never new cells); demoted groups stay rejected while
    /// some adjacent cell is still sampled, appended after the surviving
    /// reject records in accept order — the exact order the old
    /// retain-then-push bookkeeping produced.
    fn double_rate(&mut self) {
        self.level += 1;
        self.rate_doublings += 1;
        self.summary_cache = None;
        let level = self.level;
        let Self { store, ctx, .. } = self;
        store.retain_after_doubling(
            |cell_hash| rds_hashing::level_sampled(cell_hash, level),
            |rep| ctx.any_adjacent_sampled(rep, level),
        );
    }

    /// Draws one robust ℓ0-sample: the representative (first point) of a
    /// uniformly random sampled group. `None` iff no point was processed.
    ///
    /// Borrowing fast path; the [`DistinctSampler`] trait methods
    /// ([`DistinctSampler::query_record`], [`DistinctSampler::query_k`])
    /// return owned records.
    pub fn query(&mut self) -> Option<&Point> {
        let n = self.store.acc_len();
        if n == 0 {
            return None;
        }
        let pick = self.rng.word_below(n as u64);
        Some(self.store.rep(self.store.acc_slot(pick as usize)))
    }

    /// Like [`Self::query`] but returns a uniformly random *member* of the
    /// sampled group instead of its first point (Section 2.3, reservoir
    /// extension).
    pub fn query_random_member(&mut self) -> Option<&Point> {
        let n = self.store.acc_len();
        if n == 0 {
            return None;
        }
        let pick = self.rng.word_below(n as u64);
        Some(self.store.reservoir(self.store.acc_slot(pick as usize)))
    }

    /// The estimate `|Sacc| * R` of the number of distinct groups
    /// (Section 5's infinite-window F0 estimator reads this).
    pub fn f0_estimate(&self) -> f64 {
        self.store.acc_len() as f64 * (1u64 << self.level) as f64
    }

    /// Number of points processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current `log2 R`.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// How many times the sample rate was halved.
    pub fn rate_doublings(&self) -> u32 {
        self.rate_doublings
    }

    /// Current accept set (representatives of sampled groups),
    /// materialized in insertion order. The records live in the
    /// cell-indexed store; this clones them into the classic record
    /// vector.
    pub fn accept_set(&self) -> Vec<GroupRecord> {
        self.store.acc_records()
    }

    /// Current reject set, materialized in insertion order.
    pub fn reject_set(&self) -> Vec<GroupRecord> {
        self.store.rej_records()
    }

    /// The `|Sacc|` threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Current footprint in machine words (context + both candidate
    /// sets). `O(1)`: every stored record holds two points of the
    /// configured dimension plus two bookkeeping words.
    pub fn words(&self) -> usize {
        self.ctx.words() + self.store.words(self.ctx.cfg().dim) + 4
    }

    /// Peak footprint observed so far (the paper's `pSpace`).
    pub fn peak_words(&self) -> usize {
        self.space.peak_words()
    }

    /// The sampler's immutable context (grid + hash).
    pub fn context(&self) -> &SamplerContext {
        &self.ctx
    }

    /// Consumes the sampler, handing out both candidate sets without
    /// cloning any point (the cheap path behind
    /// [`Self::into_site_summary`](crate::distributed) extraction).
    pub(crate) fn into_sets(self) -> (Vec<GroupRecord>, Vec<GroupRecord>) {
        self.store.into_records()
    }
}

/// The serializable full state of a [`RobustL0Sampler`]: both candidate
/// sets, the rate exponent, the threshold, the arrival counter, and the
/// exact PRNG position. The grid and hash function are deterministic
/// functions of the embedded [`SamplerConfig`] and are rebuilt on
/// restore, not stored — as is the store's cell index (the mixer keys are
/// a deterministic function of the grid and the representatives).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustL0State {
    cfg: SamplerConfig,
    threshold: usize,
    level: u32,
    acc: Vec<GroupRecord>,
    rej: Vec<GroupRecord>,
    seen: u64,
    rate_doublings: u32,
    rng: RngState,
    peak_words: usize,
}

impl RobustL0State {
    /// The configuration the checkpointed sampler was built from.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The accept-set threshold in force at capture time.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of items the checkpointed sampler had processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl Checkpointable for RobustL0Sampler {
    type State = RobustL0State;

    fn checkpoint_state(&self) -> RobustL0State {
        RobustL0State {
            cfg: self.ctx.cfg().clone(),
            threshold: self.threshold,
            level: self.level,
            acc: self.store.acc_records(),
            rej: self.store.rej_records(),
            seen: self.seen,
            rate_doublings: self.rate_doublings,
            rng: RngState::capture(&self.rng),
            peak_words: self.space.peak_words(),
        }
    }

    fn try_from_state(state: RobustL0State) -> Result<Self, RdsError> {
        check_level(state.level)?;
        check_dims(
            &state.cfg,
            state.acc.iter().flat_map(|r| [&r.rep, &r.reservoir]),
            "accept set",
        )?;
        check_dims(
            &state.cfg,
            state.rej.iter().flat_map(|r| [&r.rep, &r.reservoir]),
            "reject set",
        )?;
        let mut s = Self::try_with_threshold(state.cfg, state.threshold)?;
        s.level = state.level;
        let mut scratch = Vec::new();
        let ctx = &s.ctx;
        let store = CandidateStore::from_records(state.acc, state.rej, |rep| {
            ctx.cell_key(rep, &mut scratch)
        });
        s.store = store;
        s.seen = state.seen;
        s.rate_doublings = state.rate_doublings;
        s.rng = state.rng.restore();
        s.space.observe(state.peak_words);
        s.space.observe(s.words());
        Ok(s)
    }

    fn state_config(state: &RobustL0State) -> Option<&SamplerConfig> {
        Some(&state.cfg)
    }
}

impl DistinctSampler for RobustL0Sampler {
    type Summary = MergedSummary;

    /// Feeds the item's point; the stamp is ignored (infinite window).
    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        RobustL0Sampler::process(self, &item.point)
    }

    /// The amortized batch path of [`RobustL0Sampler::process_batch`],
    /// lifted to stream items.
    fn process_batch(&mut self, items: &[StreamItem]) -> BatchStats {
        self.process_batch_keyed(items.iter().map(|item| &item.point))
    }

    fn query_record(&mut self) -> Option<GroupRecord> {
        let n = self.store.acc_len();
        if n == 0 {
            return None;
        }
        let pick = self.rng.word_below(n as u64);
        Some(self.store.record_at(self.store.acc_slot(pick as usize)))
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        let mut idx: Vec<usize> = (0..self.store.acc_len()).collect();
        idx.shuffle(&mut self.rng);
        idx.truncate(k);
        idx.into_iter()
            .map(|i| self.store.record_at(self.store.acc_slot(i)))
            .collect()
    }

    fn f0_estimate(&self) -> f64 {
        RobustL0Sampler::f0_estimate(self)
    }

    fn seen(&self) -> u64 {
        RobustL0Sampler::seen(self)
    }

    fn words(&self) -> usize {
        RobustL0Sampler::words(self)
    }

    fn summary(&self) -> MergedSummary {
        MergedSummary::from_parts(
            self.ctx.cfg().clone(),
            self.level,
            self.store.acc_records(),
            self.store.rej_records(),
        )
    }

    /// Returns the cached summary when the candidate sets are unchanged
    /// since the last call (an `Arc`-sharing clone, no record is copied);
    /// rebuilds and re-caches otherwise.
    fn summary_cow(&mut self) -> MergedSummary {
        if let Some(cached) = &self.summary_cache {
            return cached.clone();
        }
        let built = self.summary();
        self.summary_cache = Some(built.clone());
        built
    }

    fn into_summary(self) -> MergedSummary {
        let cfg = self.ctx.cfg().clone();
        let level = self.level;
        let (acc, rej) = self.into_sets();
        MergedSummary::from_parts(cfg, level, acc, rej)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_datasets::{uniform_dups, rand_cloud};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a small well-separated dataset and returns (points, labels,
    /// n_groups, alpha).
    fn small_dataset(seed: u64) -> (Vec<Point>, Vec<usize>, usize, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = rand_cloud(40, 4, &mut rng);
        let mut ds = uniform_dups("t", &base, 8, &mut rng);
        ds.shuffle(&mut rng);
        let labels = ds.labels();
        let pts = ds.points.iter().map(|lp| lp.point.clone()).collect();
        (pts, labels, ds.n_groups, ds.alpha)
    }

    fn feed(sampler: &mut RobustL0Sampler, pts: &[Point]) {
        for p in pts {
            sampler.process(p);
        }
    }

    #[test]
    fn first_point_is_always_accepted() {
        let mut s = RobustL0Sampler::try_new(SamplerConfig::builder(2, 0.5).build().unwrap()).unwrap();
        // R starts at 1 so the very first point lands in Sacc.
        assert_eq!(
            s.process(&Point::new(vec![3.3, 4.4])),
            ProcessOutcome::Accepted
        );
        assert_eq!(s.accept_set().len(), 1);
    }

    #[test]
    fn duplicates_are_skipped_and_counted() {
        let mut s = RobustL0Sampler::try_new(SamplerConfig::builder(2, 0.5).build().unwrap()).unwrap();
        s.process(&Point::new(vec![0.0, 0.0]));
        assert_eq!(
            s.process(&Point::new(vec![0.1, 0.0])),
            ProcessOutcome::Duplicate
        );
        assert_eq!(s.accept_set()[0].count, 2);
    }

    #[test]
    fn query_is_none_only_before_any_point() {
        let mut s = RobustL0Sampler::try_new(SamplerConfig::builder(2, 0.5).build().unwrap()).unwrap();
        assert!(s.query().is_none());
        s.process(&Point::new(vec![1.0, 1.0]));
        assert!(s.query().is_some());
    }

    /// The first stream occurrence of each labelled group. Guards the
    /// empty-labels case: `labels.iter().max()` is `None` on an empty
    /// stream, which used to panic through `.unwrap()`.
    fn first_points<'a>(pts: &'a [Point], labels: &[usize]) -> Vec<Option<&'a Point>> {
        let n_groups = labels.iter().max().map_or(0, |m| m + 1);
        let mut first_of_group: Vec<Option<&Point>> = vec![None; n_groups];
        for (p, &g) in pts.iter().zip(labels.iter()) {
            if first_of_group[g].is_none() {
                first_of_group[g] = Some(p);
            }
        }
        first_of_group
    }

    #[test]
    fn first_points_of_empty_stream_is_empty_not_a_panic() {
        // Regression: the max-label computation must tolerate an empty
        // stream instead of unwrapping `None`.
        let first = first_points(&[], &[]);
        assert!(first.is_empty());
    }

    #[test]
    fn sample_is_always_a_first_point_of_its_group() {
        let (pts, labels, _n, alpha) = small_dataset(3);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(17)
            .expected_len(pts.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);

        // the representative of each ground-truth group = first occurrence
        let first_of_group = first_points(&pts, &labels);
        // Accepted representatives are always the first stream point of
        // their group (a group whose first point was ignored can never be
        // accepted later: its cells are inside adj(first point), none of
        // which were sampled, and sampled sets only shrink).
        for rec in s.accept_set() {
            let found = first_of_group.iter().flatten().any(|fp| **fp == rec.rep);
            assert!(found, "accepted representative is not a first point");
        }
        // Rejected representatives must at least come from the stream.
        for rec in s.reject_set() {
            assert!(pts.contains(&rec.rep));
        }
    }

    #[test]
    fn accept_set_respects_threshold_after_processing() {
        let (pts, _, _, alpha) = small_dataset(4);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(5)
            .expected_len(pts.len() as u64)
            .kappa0(1.0).build().unwrap(); // tight threshold to force doublings
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        assert!(s.accept_set().len() <= s.threshold());
        assert!(s.rate_doublings() > 0, "expected at least one doubling");
    }

    #[test]
    fn accept_set_never_empty_after_first_point() {
        // Lemma 2.5 (whp); with these seeds it must hold deterministically.
        for seed in 0..10u64 {
            let (pts, _, _, alpha) = small_dataset(seed);
            let cfg = SamplerConfig::builder(4, alpha)
                .seed(seed.wrapping_mul(0x9E37))
                .expected_len(pts.len() as u64).build().unwrap();
            let mut s = RobustL0Sampler::try_new(cfg).unwrap();
            for p in &pts {
                s.process(p);
                assert!(
                    !s.accept_set().is_empty(),
                    "Sacc empty at seed {seed} after {} points",
                    s.seen()
                );
            }
        }
    }

    #[test]
    fn candidate_groups_are_distinct_groups() {
        // No two stored records may be within alpha of each other: each
        // candidate group has exactly one representative.
        let (pts, _, _, alpha) = small_dataset(6);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(23)
            .expected_len(pts.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        let acc = s.accept_set();
        let rej = s.reject_set();
        let all: Vec<&GroupRecord> = acc.iter().chain(rej.iter()).collect();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert!(
                    !all[i].rep.within(&all[j].rep, alpha),
                    "two records share a group"
                );
            }
        }
    }

    #[test]
    fn group_counts_sum_to_points_of_candidate_groups() {
        let (pts, labels, n, alpha) = small_dataset(7);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(29)
            .expected_len(pts.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        // group sizes from ground truth
        let mut sizes = vec![0u64; n];
        for &g in &labels {
            sizes[g] += 1;
        }
        for rec in s.accept_set() {
            // find the ground-truth group of the representative
            let gi = pts
                .iter()
                .zip(labels.iter())
                .find(|(p, _)| **p == rec.rep)
                .map(|(_, &g)| g)
                .expect("representative came from the stream");
            assert_eq!(
                rec.count, sizes[gi],
                "count mismatch for group {gi}"
            );
        }
    }

    #[test]
    fn reservoir_member_is_in_the_same_group() {
        let (pts, _, _, alpha) = small_dataset(8);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(31)
            .expected_len(pts.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        for rec in s.accept_set() {
            assert!(
                rec.rep.within(&rec.reservoir, alpha),
                "reservoir point escaped its group"
            );
        }
    }

    #[test]
    fn empirical_distribution_is_roughly_uniform() {
        // A scaled-down version of the paper's Figures 5-12.
        let mut rng = StdRng::seed_from_u64(100);
        let base = rand_cloud(25, 4, &mut rng);
        let mut ds = uniform_dups("t", &base, 12, &mut rng);
        ds.shuffle(&mut rng);
        let pts: Vec<Point> = ds.points.iter().map(|lp| lp.point.clone()).collect();
        let labels = ds.labels();

        let runs = 600;
        let mut hist = rds_metrics::SampleHistogram::new(ds.n_groups);
        for run in 0..runs {
            let cfg = SamplerConfig::builder(4, ds.alpha)
                .seed(run as u64 * 7919 + 13)
                .expected_len(pts.len() as u64).build().unwrap();
            let mut s = RobustL0Sampler::try_new(cfg).unwrap();
            feed(&mut s, &pts);
            let sample = s.query().expect("sample exists").clone();
            let g = pts
                .iter()
                .zip(labels.iter())
                .find(|(p, _)| **p == sample)
                .map(|(_, &g)| g)
                .expect("sample came from the stream");
            hist.record(g);
        }
        // generous bound: with 600 runs over 25 groups, uniform sampling
        // gives stdDevNm well below 0.5
        assert!(
            hist.std_dev_nm() < 0.5,
            "stdDevNm {} too large",
            hist.std_dev_nm()
        );
    }

    #[test]
    fn k_query_returns_distinct_groups() {
        let (pts, _, _, alpha) = small_dataset(9);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(37)
            .expected_len(pts.len() as u64)
            .k(3).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        let picks = s.query_k(3);
        assert_eq!(picks.len(), 3);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].rep.within(&picks[j].rep, alpha));
            }
        }
    }

    #[test]
    fn f0_estimate_tracks_group_count() {
        let (pts, _, n, alpha) = small_dataset(10);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(41)
            .expected_len(pts.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        // with the default generous threshold nothing is subsampled, so
        // the estimate counts candidate groups exactly
        if s.level() == 0 {
            assert_eq!(s.f0_estimate() as usize, s.accept_set().len());
            assert_eq!(s.accept_set().len() + s.reject_set().len(), n);
        }
    }

    #[test]
    fn space_is_bounded_and_tracked() {
        let (pts, _, _, alpha) = small_dataset(11);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(43)
            .expected_len(pts.len() as u64)
            .kappa0(1.0).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        feed(&mut s, &pts);
        assert!(s.peak_words() >= s.words());
        assert!(s.peak_words() > 0);
    }

    #[test]
    fn zero_threshold_rejected() {
        let err =
            RobustL0Sampler::try_with_threshold(SamplerConfig::builder(2, 1.0).build().unwrap(), 0)
                .unwrap_err();
        assert!(err.to_string().contains("threshold must be at least 1"));
    }

    #[test]
    fn batch_processing_matches_per_point_processing() {
        // The sharded engine relies on this: feeding a batch must leave
        // the sampler in exactly the state per-point feeding produces.
        let (pts, _, _, alpha) = small_dataset(12);
        let cfg = SamplerConfig::builder(4, alpha)
            .seed(47)
            .expected_len(pts.len() as u64)
            .kappa0(1.0).build().unwrap(); // force doublings mid-batch
        let mut one = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        let mut per_point = BatchStats::default();
        for p in &pts {
            per_point.record(one.process(p));
        }
        let mut batched = RobustL0Sampler::try_new(cfg).unwrap();
        let mut stats = BatchStats::default();
        for chunk in pts.chunks(17) {
            stats.merge(&batched.process_batch(chunk));
        }
        assert_eq!(stats, per_point);
        assert_eq!(stats.total(), pts.len() as u64);
        assert_eq!(batched.seen(), one.seen());
        assert_eq!(batched.level(), one.level());
        assert_eq!(batched.f0_estimate(), one.f0_estimate());
        let batched_acc = batched.accept_set();
        let one_acc = one.accept_set();
        assert_eq!(batched_acc.len(), one_acc.len());
        for (a, b) in batched_acc.iter().zip(one_acc.iter()) {
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.count, b.count);
            assert_eq!(a.cell_hash, b.cell_hash);
        }
        // The RNG positions agree too: reservoir draws happened in the
        // same order with the same word consumption.
        assert_eq!(
            RngState::capture(&batched.rng),
            RngState::capture(&one.rng)
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut s = RobustL0Sampler::try_new(SamplerConfig::builder(2, 0.5).build().unwrap()).unwrap();
        let stats = s.process_batch(&[]);
        assert_eq!(stats, BatchStats::default());
        assert_eq!(s.seen(), 0);
        assert!(s.query().is_none());
    }

    #[test]
    fn doubling_stops_at_the_level_cap() {
        // An over-full accept set pinned at MAX_LEVEL: the doubling loop
        // must stop at the cap instead of spinning or overflowing the
        // 2^level arithmetic.
        let cfg = SamplerConfig::builder(1, 0.5).seed(3).build().unwrap();
        let mut base = RobustL0Sampler::try_with_threshold(cfg, 1).unwrap();
        base.process(&Point::new(vec![0.0]));
        let mut state = base.checkpoint_state();
        state.level = MAX_LEVEL;
        let far = |x: f64| GroupRecord {
            rep: Point::new(vec![x]),
            cell_hash: 1,
            count: 1,
            reservoir: Point::new(vec![x]),
        };
        state.acc = vec![far(0.0), far(100.0), far(200.0)];
        state.rej = Vec::new();
        let mut s = RobustL0Sampler::try_from_state(state).unwrap();
        assert_eq!(s.level(), MAX_LEVEL);
        s.process(&Point::new(vec![300.0]));
        assert_eq!(s.level(), MAX_LEVEL, "level must never exceed the cap");
        assert!(s.accept_set().len() > s.threshold());
        assert_eq!(
            s.f0_estimate(),
            s.accept_set().len() as f64 * (1u64 << MAX_LEVEL) as f64
        );
    }

    #[test]
    fn samplers_are_send() {
        // The sharded engine moves samplers into worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<RobustL0Sampler>();
        assert_send::<crate::RobustF0Estimator>();
        assert_send::<crate::SlidingWindowSampler>();
        assert_send::<crate::SlidingWindowF0>();
        assert_send::<crate::FixedRateWindowSampler>();
    }
}
