//! The crate's typed error: every parameter-validation failure that used
//! to be an `assert!` panic is reachable as a [`RdsError`] through the
//! fallible constructors (`SamplerConfig::builder().build()`,
//! `RobustL0Sampler::try_new`, `SlidingWindowSampler::try_new`, the
//! engine's `try_*` constructors and the umbrella facade's
//! `Rds::builder().build()` / `build_split()`). The panicking wrappers
//! that shadowed them for one deprecation release are gone — `try_*` and
//! the builders are the only construction paths.
//!
//! The `Display` strings still match the historical panic messages, so
//! callers that `unwrap()`/`expect()` a `try_*` result fail with text
//! containing what the old panics said.

use std::fmt;

/// Why a sampler, summary merge or engine could not be constructed.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RdsError {
    /// `dim == 0`.
    InvalidDimension {
        /// The offending dimension.
        dim: usize,
    },
    /// `alpha` is not strictly positive and finite.
    InvalidAlpha {
        /// The offending near-duplicate threshold.
        alpha: f64,
    },
    /// `kappa0 <= 0` (or not finite).
    InvalidKappa0 {
        /// The offending threshold constant.
        kappa0: f64,
    },
    /// `k == 0` samples per query requested.
    InvalidK,
    /// Grid side factor below 1 (or not finite).
    InvalidSideFactor {
        /// The offending factor.
        side_factor: f64,
    },
    /// An explicit accept-set threshold of 0.
    InvalidThreshold,
    /// Accuracy target outside `(0, 1]`.
    InvalidEps {
        /// The offending accuracy target.
        eps: f64,
    },
    /// A median-boosted estimator with zero copies.
    InvalidCopies,
    /// `kappa_B` of the `kappa_B / eps^2` accept-set threshold is not
    /// strictly positive and finite.
    InvalidKappaB {
        /// The offending threshold constant.
        kappa_b: f64,
    },
    /// Heavy-hitter frequency threshold outside `(0, 1]`.
    InvalidPhi {
        /// The offending frequency threshold.
        phi: f64,
    },
    /// SimHash group threshold outside `(0, pi/8)`.
    InvalidTheta {
        /// The offending angular threshold (radians).
        theta: f64,
    },
    /// SimHash hyperplane count outside `1..=24` (more bits would make
    /// the adjacency enumeration explode in the worst case).
    InvalidBits {
        /// The offending hyperplane count.
        n_bits: usize,
    },
    /// Johnson–Lindenstrauss distortion outside the open interval
    /// `(0, 1)`.
    InvalidDistortion {
        /// The offending distortion parameter.
        eps: f64,
    },
    /// A sliding-window construct was given an unbounded window.
    UnboundedWindow,
    /// A window of zero length.
    EmptyWindow,
    /// An engine with zero shards.
    InvalidShards,
    /// A batch size of zero.
    InvalidBatchSize,
    /// A checkpoint container or serialized sampler state could not be
    /// restored: unreadable file, bad magic, unsupported format version,
    /// checksum mismatch, malformed state, or a configuration that does
    /// not match the checkpoint's config echo.
    Checkpoint {
        /// What was wrong with the container or state.
        reason: String,
    },
    /// A tenant-layer request was malformed: an empty/overlong/unsafe
    /// tenant id, or a per-tenant batch whose fields disagree.
    InvalidTenant {
        /// What was wrong with the request.
        reason: String,
    },
    /// Summaries built from different configurations (different grids or
    /// hash functions) cannot be merged.
    ConfigMismatch {
        /// Seed of the summary on the left of the merge.
        expected_seed: u64,
        /// Seed of the summary that did not match.
        actual_seed: u64,
    },
}

impl RdsError {
    /// Builds a [`RdsError::Checkpoint`] — the one constructor shared by
    /// the core restore paths, the engine and the facade container code.
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        RdsError::Checkpoint {
            reason: reason.into(),
        }
    }

    /// Builds a [`RdsError::InvalidTenant`] — the tenant registry's
    /// request-validation error.
    pub fn invalid_tenant(reason: impl Into<String>) -> Self {
        RdsError::InvalidTenant {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for RdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RdsError::InvalidDimension { dim } => {
                write!(f, "dimension must be positive (got {dim})")
            }
            RdsError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be positive and finite (got {alpha})")
            }
            RdsError::InvalidKappa0 { kappa0 } => {
                write!(f, "kappa0 must be positive (got {kappa0})")
            }
            RdsError::InvalidK => write!(f, "k must be at least 1"),
            RdsError::InvalidSideFactor { side_factor } => {
                write!(f, "side factor must be >= 1 (got {side_factor})")
            }
            RdsError::InvalidThreshold => write!(f, "threshold must be at least 1"),
            RdsError::InvalidEps { eps } => write!(f, "eps must be in (0, 1] (got {eps})"),
            RdsError::InvalidCopies => write!(f, "need at least one copy"),
            RdsError::InvalidKappaB { kappa_b } => {
                write!(f, "kappa_B must be positive (got {kappa_b})")
            }
            RdsError::InvalidPhi { phi } => {
                write!(f, "phi must be in (0, 1] (got {phi})")
            }
            RdsError::InvalidTheta { theta } => {
                write!(f, "theta must be in (0, pi/8) (got {theta})")
            }
            RdsError::InvalidBits { n_bits } => {
                write!(f, "n_bits must be in 1..=24 (got {n_bits})")
            }
            RdsError::InvalidDistortion { eps } => {
                write!(f, "JL distortion eps must be in (0, 1) (got {eps})")
            }
            RdsError::UnboundedWindow => {
                write!(f, "this sampler requires a bounded window")
            }
            RdsError::EmptyWindow => write!(f, "window length must be at least 1"),
            RdsError::InvalidShards => write!(f, "need at least one shard"),
            RdsError::InvalidBatchSize => write!(f, "batch size must be at least 1"),
            RdsError::Checkpoint { ref reason } => {
                write!(f, "checkpoint rejected: {reason}")
            }
            RdsError::InvalidTenant { ref reason } => {
                write!(f, "invalid tenant request: {reason}")
            }
            RdsError::ConfigMismatch {
                expected_seed,
                actual_seed,
            } => write!(
                f,
                "summaries built from different configurations cannot be merged \
                 (seed {expected_seed} vs {actual_seed}; equal seeds mean the \
                 configurations differ in another parameter, e.g. dim or alpha)"
            ),
        }
    }
}

impl std::error::Error for RdsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_historical_panic_messages() {
        // The panicking wrappers rely on these substrings.
        assert!(RdsError::InvalidAlpha { alpha: 0.0 }
            .to_string()
            .contains("alpha must be positive"));
        assert!(RdsError::InvalidDimension { dim: 0 }
            .to_string()
            .contains("dimension must be positive"));
        assert!(RdsError::InvalidThreshold
            .to_string()
            .contains("threshold must be at least 1"));
        assert!(RdsError::UnboundedWindow.to_string().contains("bounded window"));
        assert!(RdsError::InvalidShards
            .to_string()
            .contains("at least one shard"));
        assert!(RdsError::InvalidBatchSize
            .to_string()
            .contains("batch size must be at least 1"));
        assert!(RdsError::InvalidK.to_string().contains("k must be at least 1"));
        assert!(RdsError::InvalidEps { eps: 0.0 }
            .to_string()
            .contains("eps must be in (0, 1]"));
        assert!(RdsError::InvalidCopies
            .to_string()
            .contains("at least one copy"));
        assert!(RdsError::InvalidKappaB { kappa_b: 0.0 }
            .to_string()
            .contains("kappa_B must be positive"));
        assert!(RdsError::InvalidPhi { phi: 0.0 }
            .to_string()
            .contains("phi must be in (0, 1]"));
        assert!(RdsError::InvalidTheta { theta: 1.0 }
            .to_string()
            .contains("theta must be in (0, pi/8)"));
        assert!(RdsError::InvalidBits { n_bits: 30 }
            .to_string()
            .contains("n_bits must be in 1..=24"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(RdsError::InvalidK);
    }
}
