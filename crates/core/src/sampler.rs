//! The unified sampler API: every sampler family in this crate — infinite
//! window, sliding window (hierarchical and fixed-rate), metric/LSH,
//! JL-projected, `k`-sampling — implements [`DistinctSampler`], so callers
//! (the sharded engine, the umbrella facade, the CLI) can be written once,
//! window-agnostically.
//!
//! The trait's query methods return **owned** [`GroupRecord`]s: backends
//! can then be swapped (single sampler ↔ sharded engine ↔ merged remote
//! summaries) without signature churn. The borrowing accessors each family
//! also provides (`RobustL0Sampler::query` returning `Option<&Point>`,
//! etc.) remain available for perf-sensitive single-backend callers.
//!
//! Each implementation names an associated [`SamplerSummary`] type: a
//! cheap, queryable snapshot of the sampler state that *merges*. Summaries
//! built from samplers sharing one [`SamplerConfig`] (hence one grid and
//! hash function) combine into a summary of the union of their streams —
//! the property that makes sharding (and the distributed setting) correct.

use crate::config::SamplerConfig;
use crate::error::RdsError;
use crate::infinite::{BatchStats, GroupRecord, ProcessOutcome};
use crate::sw_fixed::WindowGroupEntry;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};
use rds_stream::{Stamp, StreamItem};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A mergeable, queryable snapshot of a sampler's state.
///
/// Summaries are the unit of aggregation: shards, distributed sites and
/// facade backends all reduce to "merge the summaries, query the result".
/// Merging is only defined between summaries whose samplers shared one
/// configuration; [`SamplerSummary::merge`] reports
/// [`RdsError::ConfigMismatch`] otherwise.
///
/// Summaries are **immutable**: every query takes `&self` plus an explicit
/// `draw` token that supplies all the randomness (the RNG is derived
/// deterministically from the shared seed and the token). Callers that
/// want fresh samples per call keep their own counter and pass `draw`,
/// `draw + 1`, ...; concurrent readers can share one frozen summary behind
/// an `Arc` and draw independently without locks.
pub trait SamplerSummary: Sized {
    /// Combines two summaries into a summary of the union of their
    /// streams.
    ///
    /// # Errors
    ///
    /// [`RdsError::ConfigMismatch`] when the summaries come from samplers
    /// with different configurations (incompatible grids/hashes).
    fn merge(self, other: Self) -> Result<Self, RdsError>;

    /// Combines any number of summaries; `Ok(None)` iff `summaries` is
    /// empty. The default folds [`Self::merge`] pairwise; implementations
    /// whose pairwise merge re-processes the accumulated state (the
    /// grid-based summaries rebuild their context and re-deduplicate)
    /// override this with a single-pass N-way merge — the path the
    /// sharded engine's queries take, so it must not scale quadratically
    /// in the shard count.
    ///
    /// # Errors
    ///
    /// [`RdsError::ConfigMismatch`] as for [`Self::merge`].
    fn merge_many(summaries: Vec<Self>) -> Result<Option<Self>, RdsError> {
        summaries
            .into_iter()
            .try_fold(None, |acc: Option<Self>, s| match acc {
                None => Ok(Some(s)),
                Some(a) => a.merge(s).map(Some),
            })
    }

    /// The estimate of the number of distinct groups covered by this
    /// summary.
    fn f0_estimate(&self) -> f64;

    /// Draws one uniformly random sampled group; all randomness comes from
    /// `draw` (distinct tokens give independent draws, the same token
    /// replays the same draw). `None` iff the summary covers no group.
    fn query_record(&self, draw: u64) -> Option<GroupRecord>;

    /// Draws up to `k` *distinct* sampled groups, deterministically in
    /// `draw`.
    fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord>;
}

/// The unified streaming interface of all six sampler families.
///
/// Implementations accept [`StreamItem`]s; infinite-window samplers ignore
/// the stamp, window samplers use it for expiry. Query methods return
/// owned [`GroupRecord`]s — for window samplers the record's `rep` is the
/// group's *latest* point (always inside the window, the value
/// Algorithm 3 returns).
///
/// # Examples
///
/// ```
/// use rds_core::{DistinctSampler, RobustL0Sampler, SamplerConfig};
/// use rds_geometry::Point;
/// use rds_stream::{Stamp, StreamItem};
///
/// fn feed<S: DistinctSampler>(s: &mut S, points: &[Point]) {
///     for (i, p) in points.iter().enumerate() {
///         s.process(&StreamItem::new(p.clone(), Stamp::at(i as u64)));
///     }
/// }
///
/// let mut s = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).seed(1).build().unwrap()).unwrap();
/// let pts: Vec<Point> = (0..50).map(|i| Point::new(vec![(i % 5) as f64 * 10.0])).collect();
/// feed(&mut s, &pts);
/// assert!(s.query_record().is_some());
/// assert_eq!(s.f0_estimate(), 5.0);
/// ```
pub trait DistinctSampler {
    /// The mergeable snapshot type.
    type Summary: SamplerSummary;

    /// Whether [`Self::advance`] alone can change this sampler's summary
    /// (window families expire entries as the clock moves, without any new
    /// items). Engines use this to decide whether a moved clock
    /// invalidates cached per-shard summaries.
    const TIME_SENSITIVE: bool = false;

    /// Feeds one stream item.
    fn process(&mut self, item: &StreamItem) -> ProcessOutcome;

    /// Feeds a batch of items, amortizing per-call bookkeeping where the
    /// implementation supports it. State after the call is identical to
    /// processing every item in order.
    fn process_batch(&mut self, items: &[StreamItem]) -> BatchStats {
        let mut stats = BatchStats::default();
        for item in items {
            stats.record(self.process(item));
        }
        stats
    }

    /// Advances the sampler's clock without feeding a point: window
    /// samplers expire entries older than `now`; infinite-window samplers
    /// do nothing. The sharded engine calls this before snapshotting so a
    /// shard that received no recent items still reports a live window.
    fn advance(&mut self, now: Stamp) {
        let _ = now;
    }

    /// Draws one uniformly random sampled group, owned. `None` iff no
    /// group is sampled.
    fn query_record(&mut self) -> Option<GroupRecord>;

    /// Draws up to `k` *distinct* sampled groups, owned. `query_k(0)`
    /// returns an empty vector.
    fn query_k(&mut self, k: usize) -> Vec<GroupRecord>;

    /// The current estimate of the number of distinct groups.
    fn f0_estimate(&self) -> f64;

    /// Number of stream items processed.
    fn seen(&self) -> u64;

    /// Current footprint in machine words (the paper's space accounting).
    fn words(&self) -> usize;

    /// Snapshots the sampler's state (the sampler keeps running).
    fn summary(&self) -> Self::Summary;

    /// Copy-on-write snapshot: like [`Self::summary`] (and always equal to
    /// it), but implementations may cache the result and return an
    /// `Arc`-sharing summary whose candidate sets are rebuilt only when
    /// dirtied since the previous call — the publication fast path, `O(1)`
    /// for a sampler untouched between snapshots. Default: delegates to
    /// [`Self::summary`].
    fn summary_cow(&mut self) -> Self::Summary {
        self.summary()
    }

    /// Consumes the sampler and extracts its summary, moving state instead
    /// of cloning where the implementation supports it.
    fn into_summary(self) -> Self::Summary
    where
        Self: Sized,
    {
        self.summary()
    }
}

/// The [`SamplerSummary`] of the sliding-window families: the accepted
/// group entries of every level, tagged with their level (sample rate
/// `2^-level`).
///
/// Queries implement Algorithm 3 lines 19-23 over the pooled entries:
/// every entry at level `ℓ` enters the pool with probability
/// `2^-(c-ℓ)` where `c` is the highest occupied level, unifying the
/// sample rates, and a uniform choice among the pool is returned.
///
/// Merging unions the entries and deduplicates groups observed by several
/// shards (keeping the finer-rate entry and summing counts) — sound for
/// the same reason the infinite-window merge is: all parties share one
/// grid and hash, so an entry's level-membership is a function of its
/// cached hash alone.
///
/// The summary is plain immutable data: it serializes (the offline
/// `rds snapshot` path), and queries take `&self` plus a `draw` token.
///
/// Internally the entries are held as a sequence of immutable
/// [`Arc`]-shared chunks (one per dirty-tracked source level), so
/// snapshot publication can reuse the chunks of levels untouched since
/// the previous epoch instead of deep-copying every entry. Queries,
/// merging and serialization observe the flattened concatenation of the
/// chunks; the serialized JSON shape (`entries: [[level, entry], ...]`)
/// is identical to the flat representation.
#[derive(Clone, Debug)]
pub struct WindowSummary {
    cfg: SamplerConfig,
    /// Immutable `(level, entry)` chunks, flattened in order for queries.
    chunks: Vec<EntryChunk>,
}

/// An immutable, `Arc`-shared chunk of `(level, entry)` pairs — the unit
/// of copy-on-write sharing between consecutive window summaries.
pub(crate) type EntryChunk = Arc<Vec<(u32, WindowGroupEntry)>>;

impl WindowSummary {
    /// Builds a summary from a sampler's accepted entries.
    pub fn from_parts(cfg: SamplerConfig, entries: Vec<(u32, WindowGroupEntry)>) -> Self {
        Self {
            cfg,
            chunks: if entries.is_empty() {
                Vec::new()
            } else {
                vec![Arc::new(entries)]
            },
        }
    }

    /// Builds a summary around already-shared entry chunks without
    /// copying them — the copy-on-write publication path.
    pub(crate) fn from_chunks(cfg: SamplerConfig, chunks: Vec<EntryChunk>) -> Self {
        Self { cfg, chunks }
    }

    /// The accepted entries with their levels, in deterministic order.
    pub fn entries(&self) -> impl Iterator<Item = &(u32, WindowGroupEntry)> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Number of accepted entries across all levels.
    pub fn entry_count(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Whether the summary covers no live group.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|c| c.is_empty())
    }

    /// The configuration the sampler was built from.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    fn rng_for(&self, draw: u64) -> StdRng {
        derived_rng(self.cfg.seed, draw, 0x51D1_D157)
    }

    /// Pools the entries at the common (coarsest) rate: every entry at
    /// level `ℓ` survives with probability `2^-(c-ℓ)`.
    fn pool(&self, rng: &mut StdRng) -> Vec<GroupRecord> {
        let Some(c) = self.entries().map(|(l, _)| *l).max() else {
            return Vec::new();
        };
        self.entries()
            .filter(|(l, _)| {
                let keep = 0.5f64.powi((c - l) as i32);
                keep >= 1.0 || rng.random_range(0.0..1.0) < keep
            })
            .map(|(_, e)| window_entry_record(e))
            .collect()
    }
}

impl Serialize for WindowSummary {
    /// Serializes the flattened entries — byte-identical to the previous
    /// flat `entries: Vec<(u32, WindowGroupEntry)>` representation, so
    /// snapshots written before the chunked layout still round-trip.
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            (
                "entries".to_string(),
                serde::Value::Seq(
                    self.entries()
                        .map(Serialize::to_value)
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for WindowSummary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let cfg = SamplerConfig::from_value(
            value
                .get("cfg")
                .ok_or_else(|| serde::DeError::custom("missing field `cfg`"))?,
        )
        .map_err(|e| serde::DeError::custom(format!("field `cfg`: {e}")))?;
        let entries = Vec::<(u32, WindowGroupEntry)>::from_value(
            value
                .get("entries")
                .ok_or_else(|| serde::DeError::custom("missing field `entries`"))?,
        )
        .map_err(|e| serde::DeError::custom(format!("field `entries`: {e}")))?;
        Ok(Self::from_parts(cfg, entries))
    }
}

/// The deterministic per-draw RNG of the plain-data summaries: derived
/// from the shared seed, the caller's draw token and a per-type salt, so
/// summaries stay serializable and immutable (no RNG state) while distinct
/// tokens still give independent draws.
pub(crate) fn derived_rng(seed: u64, draw: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ salt)
}

/// The trait-level [`GroupRecord`] view of a window entry: `rep` is the
/// group's latest point (always live), `reservoir` the Section 2.3
/// random member.
pub(crate) fn window_entry_record(e: &WindowGroupEntry) -> GroupRecord {
    GroupRecord {
        rep: e.last.clone(),
        cell_hash: e.rep_hash,
        count: e.count,
        reservoir: e.reservoir.clone(),
    }
}

impl SamplerSummary for WindowSummary {
    /// Absorbs `other`'s entries in place, so the default
    /// [`SamplerSummary::merge_many`] fold is already a single-pass N-way
    /// merge for this type (unlike the grid summary, nothing is
    /// re-deduplicated per fold step).
    fn merge(self, other: Self) -> Result<Self, RdsError> {
        // Full-config equality, not just the seed: two summaries built
        // under the same (default) seed but different alpha/dim would
        // otherwise dedup under the wrong threshold.
        if self.cfg != other.cfg {
            return Err(RdsError::ConfigMismatch {
                expected_seed: self.cfg.seed,
                actual_seed: other.cfg.seed,
            });
        }
        let alpha = self.cfg.alpha;
        // Materialize both sides' chunks into one flat working set; the
        // merge result is a fresh single-chunk summary (merging is the
        // coordinator/offline path, not the per-epoch publication path).
        let mut entries: Vec<(u32, WindowGroupEntry)> =
            self.entries().cloned().collect();
        for (level, entry) in other.entries().cloned() {
            match entries
                .iter_mut()
                .find(|(_, e)| e.rep.within(&entry.rep, alpha) || e.last.within(&entry.last, alpha))
            {
                Some((l, existing)) => {
                    // The same group reached two shards: keep the
                    // finer-rate (lower-level) entry, sum the counts, and
                    // keep the newest live point.
                    existing.count += entry.count;
                    if entry.last_stamp > existing.last_stamp {
                        existing.last = entry.last.clone();
                        existing.last_stamp = entry.last_stamp;
                    }
                    if level < *l {
                        *l = level;
                        existing.rep = entry.rep;
                        existing.rep_hash = entry.rep_hash;
                        existing.rep_stamp = entry.rep_stamp;
                    }
                }
                None => entries.push((level, entry)),
            }
        }
        Ok(Self::from_parts(self.cfg, entries))
    }

    /// Horvitz–Thompson estimate `Σ_entries 2^level`.
    fn f0_estimate(&self) -> f64 {
        self.entries().map(|(l, _)| 2f64.powi(*l as i32)).sum()
    }

    fn query_record(&self, draw: u64) -> Option<GroupRecord> {
        let mut rng = self.rng_for(draw);
        let pool = self.pool(&mut rng);
        pool.choose(&mut rng).cloned()
    }

    fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        let mut rng = self.rng_for(draw);
        let mut pool = self.pool(&mut rng);
        pool.shuffle(&mut rng);
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedRateWindowSampler, RobustL0Sampler, SlidingWindowSampler};
    use rds_geometry::Point;
    use rds_stream::Window;

    fn item(x: f64, seq: u64) -> StreamItem {
        StreamItem::new(Point::new(vec![x]), Stamp::at(seq))
    }

    fn cfg(seed: u64) -> SamplerConfig {
        SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(1 << 12).build().unwrap()
    }

    /// The generic helper all backends share in the engine/facade.
    fn feed<S: DistinctSampler>(s: &mut S, n: u64, n_groups: u64) {
        for i in 0..n {
            s.process(&item((i % n_groups) as f64 * 10.0, i));
        }
    }

    #[test]
    fn trait_objects_by_generic_fn_agree_on_counts() {
        let mut inf = RobustL0Sampler::try_new(cfg(1)).unwrap();
        let mut win = SlidingWindowSampler::try_new(cfg(1), Window::Sequence(1 << 20)).unwrap();
        let mut fixed = FixedRateWindowSampler::new(cfg(1), Window::Sequence(1 << 20), 0);
        feed(&mut inf, 120, 12);
        feed(&mut win, 120, 12);
        feed(&mut fixed, 120, 12);
        // generous thresholds, huge window: everything counts exactly
        assert_eq!(DistinctSampler::f0_estimate(&inf), 12.0);
        assert_eq!(DistinctSampler::f0_estimate(&win), 12.0);
        assert_eq!(DistinctSampler::f0_estimate(&fixed), 12.0);
        assert_eq!(inf.seen(), 120);
    }

    #[test]
    fn window_summary_merges_disjoint_shards() {
        let mut a = SlidingWindowSampler::try_new(cfg(2), Window::Sequence(1 << 10)).unwrap();
        let mut b = SlidingWindowSampler::try_new(cfg(2), Window::Sequence(1 << 10)).unwrap();
        for i in 0..60u64 {
            a.process(&item((i % 6) as f64 * 10.0, i));
            b.process(&item((6 + i % 6) as f64 * 10.0, i));
        }
        let merged = a.summary().merge(b.summary()).expect("same config");
        assert_eq!(merged.f0_estimate(), 12.0);
    }

    #[test]
    fn window_summary_deduplicates_split_groups() {
        let mut a = SlidingWindowSampler::try_new(cfg(3), Window::Sequence(1 << 10)).unwrap();
        let mut b = SlidingWindowSampler::try_new(cfg(3), Window::Sequence(1 << 10)).unwrap();
        // one group observed by both shards
        for i in 0..20u64 {
            a.process(&item(0.0, i));
            b.process(&item(0.1, i));
        }
        let merged = a.summary().merge(b.summary()).expect("same config");
        assert_eq!(merged.f0_estimate(), 1.0);
        let rec = merged.query_record(1).expect("non-empty");
        assert_eq!(rec.count, 40, "counts must add up across shards");
    }

    #[test]
    fn window_summary_merge_rejects_config_mismatch() {
        let a = SlidingWindowSampler::try_new(cfg(4), Window::Sequence(8)).unwrap();
        let b = SlidingWindowSampler::try_new(cfg(5), Window::Sequence(8)).unwrap();
        assert!(matches!(
            a.summary().merge(b.summary()),
            Err(RdsError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn empty_summary_queries_are_empty() {
        let s = SlidingWindowSampler::try_new(cfg(6), Window::Sequence(8)).unwrap();
        let sum = s.summary();
        assert!(sum.is_empty());
        assert!(sum.query_record(1).is_none());
        assert!(sum.query_k(3, 1).is_empty());
        assert_eq!(sum.f0_estimate(), 0.0);
    }

    #[test]
    fn query_k_zero_is_empty_for_every_family() {
        let mut inf = RobustL0Sampler::try_new(cfg(7)).unwrap();
        feed(&mut inf, 30, 3);
        assert!(inf.query_k(0).is_empty());
        let mut win = SlidingWindowSampler::try_new(cfg(7), Window::Sequence(64)).unwrap();
        feed(&mut win, 30, 3);
        // UFCS: the inherent `query_k` (returning `GroupSample`s) wins on
        // the concrete type; this exercises the trait method.
        assert!(DistinctSampler::query_k(&mut win, 0).is_empty());
    }

    #[test]
    fn default_process_batch_matches_per_item() {
        let items: Vec<StreamItem> = (0..90u64).map(|i| item((i % 9) as f64 * 10.0, i)).collect();
        let mut one = SlidingWindowSampler::try_new(cfg(8), Window::Sequence(256)).unwrap();
        let mut per = BatchStats::default();
        for it in &items {
            per.record(one.process(it));
        }
        let mut batched = SlidingWindowSampler::try_new(cfg(8), Window::Sequence(256)).unwrap();
        let mut stats = BatchStats::default();
        for chunk in items.chunks(13) {
            stats.merge(&batched.process_batch(chunk));
        }
        assert_eq!(per, stats);
        assert_eq!(
            DistinctSampler::f0_estimate(&one),
            DistinctSampler::f0_estimate(&batched)
        );
    }
}
