//! Sampler configuration and the shared grid/hash context.

use crate::error::RdsError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_geometry::{for_each_adjacent_cell_fold, Grid, Point};
use rds_hashing::{level_sampled, CellHasher, CellKeyMixer, KWiseHash};
use serde::{Deserialize, Serialize};

/// Hard cap on the rate exponent `log2 R` shared by every sampler family.
///
/// Levels beyond 63 cannot be represented by the `2^level` arithmetic
/// (`1u64 << level`), so the rate-doubling loops stop here, the
/// hierarchical window sampler clamps its level count here, and
/// checkpoint restore rejects anything larger. Reaching the cap in
/// practice would take an adversarially degenerate hash function — the
/// threshold analysis keeps real streams at `O(log m)` doublings.
pub const MAX_LEVEL: u32 = 63;

/// Configuration shared by all samplers in this crate.
///
/// The defaults follow the paper: grid side `alpha` (the implementation
/// regime of Section 6, where `adj(p)` is contained in the `3^d` lattice
/// neighbourhood), acceptance-set threshold `kappa0 * k * log2(m)`
/// (Algorithm 1 line 10 / Algorithm 3 line 10 and the k-sampling extension
/// of Section 2.3), and `Θ(log m)`-wise independent hashing.
///
/// Construct it through [`SamplerConfig::builder`]; validation surfaces
/// from [`SamplerConfigBuilder::build`] as [`RdsError`], never a panic.
/// (The legacy panicking `SamplerConfig::new` + `with_*` chain was removed
/// after its one-release deprecation window.)
///
/// # Examples
///
/// ```
/// use rds_core::SamplerConfig;
///
/// let cfg = SamplerConfig::builder(5, 0.05)
///     .seed(42)
///     .expected_len(100_000)
///     .build()
///     .expect("valid parameters");
/// assert!(cfg.threshold() > 0);
///
/// // invalid parameters are an Err, not a panic
/// assert!(SamplerConfig::builder(0, 1.0).build().is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Ambient dimension `d`.
    pub dim: usize,
    /// Group-diameter threshold `alpha`: points within `alpha` are
    /// near-duplicates of the same entity.
    pub alpha: f64,
    /// Grid side length as a multiple of `alpha`. Default `1.0`; the
    /// high-dimensional regime of Section 4 uses `d`
    /// ([`SamplerConfigBuilder::high_dim`]).
    pub side_factor: f64,
    /// The constant `kappa_0` in the `kappa_0 log m` acceptance threshold.
    pub kappa0: f64,
    /// Number of distinct samples the caller intends to draw without
    /// replacement per query (Section 2.3 scales the threshold by `k`).
    pub k: usize,
    /// Expected stream length `m` (drives the `log m` threshold and the
    /// hash independence). An estimate is fine; the bound degrades
    /// gracefully.
    pub expected_len: u64,
    /// Hash independence; `0` means auto (`max(8, 2 log2 m)`).
    pub independence: usize,
    /// PRNG seed for the grid offset, the hash function and query
    /// randomness.
    pub seed: u64,
}

impl SamplerConfig {
    /// Starts a fallible builder — the recommended construction path.
    /// Parameter validation surfaces from [`SamplerConfigBuilder::build`]
    /// as [`RdsError`] instead of a panic.
    pub fn builder(dim: usize, alpha: f64) -> SamplerConfigBuilder {
        SamplerConfigBuilder::new(dim, alpha)
    }

    /// Checks every parameter; the invariant behind the `assert!`-free
    /// happy path of the samplers.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`RdsError`].
    pub fn validate(&self) -> Result<(), RdsError> {
        if self.dim == 0 {
            return Err(RdsError::InvalidDimension { dim: self.dim });
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(RdsError::InvalidAlpha { alpha: self.alpha });
        }
        if !(self.kappa0.is_finite() && self.kappa0 > 0.0) {
            return Err(RdsError::InvalidKappa0 {
                kappa0: self.kappa0,
            });
        }
        if self.k == 0 {
            return Err(RdsError::InvalidK);
        }
        if !(self.side_factor.is_finite() && self.side_factor >= 1.0) {
            return Err(RdsError::InvalidSideFactor {
                side_factor: self.side_factor,
            });
        }
        Ok(())
    }

    /// `log2` of the expected stream length (at least 2).
    pub fn log2_m(&self) -> f64 {
        (self.expected_len.max(4) as f64).log2()
    }

    /// The acceptance-set size threshold `ceil(kappa_0 * k * log2 m)`
    /// (Algorithm 1 line 10).
    pub fn threshold(&self) -> usize {
        (self.kappa0 * self.k as f64 * self.log2_m()).ceil() as usize
    }

    /// The effective hash independence.
    pub fn effective_independence(&self) -> usize {
        if self.independence > 0 {
            self.independence
        } else {
            KWiseHash::suggested_independence(self.expected_len)
        }
    }

    /// The grid side length `side_factor * alpha`.
    pub fn side(&self) -> f64 {
        self.side_factor * self.alpha
    }
}

/// Fallible builder for [`SamplerConfig`]: setters never panic, all
/// validation happens in [`Self::build`].
///
/// # Examples
///
/// ```
/// use rds_core::{RdsError, SamplerConfig};
///
/// let err = SamplerConfig::builder(2, f64::NAN).build().unwrap_err();
/// assert!(matches!(err, RdsError::InvalidAlpha { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct SamplerConfigBuilder {
    cfg: SamplerConfig,
}

impl SamplerConfigBuilder {
    fn new(dim: usize, alpha: f64) -> Self {
        Self {
            cfg: SamplerConfig {
                dim,
                alpha,
                side_factor: 1.0,
                kappa0: 4.0,
                k: 1,
                expected_len: 1 << 20,
                independence: 0,
                seed: 0xC0FF_EE00,
            },
        }
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the expected stream length `m` (clamped to at least 4).
    pub fn expected_len(mut self, m: u64) -> Self {
        self.cfg.expected_len = m.max(4);
        self
    }

    /// Sets the threshold constant `kappa_0`.
    pub fn kappa0(mut self, kappa0: f64) -> Self {
        self.cfg.kappa0 = kappa0;
        self
    }

    /// Sets the number of without-replacement samples per query.
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k;
        self
    }

    /// Sets the grid side length as a multiple of `alpha`.
    pub fn side_factor(mut self, f: f64) -> Self {
        self.cfg.side_factor = f;
        self
    }

    /// Overrides the hash independence (0 = auto).
    pub fn independence(mut self, k: usize) -> Self {
        self.cfg.independence = k;
        self
    }

    /// Switches to the high-dimensional regime of Section 4 (grid side
    /// `d * alpha`).
    pub fn high_dim(mut self) -> Self {
        self.cfg.side_factor = self.cfg.dim as f64;
        self
    }

    /// Validates every parameter and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`RdsError`].
    pub fn build(self) -> Result<SamplerConfig, RdsError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The immutable context shared by sampler instances: the random grid, the
/// k-wise independent cell hash, and the configuration.
///
/// Algorithm 3 keeps `log w` sampler instances over the *same* grid and
/// hash function (only the sample rate `1/R` differs per level), so the
/// context is built once and shared.
#[derive(Clone, Debug)]
pub struct SamplerContext {
    cfg: SamplerConfig,
    grid: Grid,
    hasher: CellHasher,
}

impl SamplerContext {
    /// Builds the context: samples the grid offset and the hash function
    /// from the configured seed.
    pub fn new(cfg: SamplerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = Grid::random(cfg.dim, cfg.side(), &mut rng);
        let hasher = CellHasher::new(cfg.effective_independence(), &mut rng);
        Self { cfg, grid, hasher }
    }

    /// The configuration.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The shared grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The group-diameter threshold `alpha`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.cfg.alpha
    }

    /// The cell hasher (key mixer + k-wise hash), exposed so hot paths
    /// can fold cell keys along the adjacency DFS and batch-hash whole
    /// key slices.
    #[inline]
    pub fn hasher(&self) -> &CellHasher {
        &self.hasher
    }

    /// The 64-bit mixer key of `cell(p)`; `scratch` avoids a per-call
    /// allocation.
    #[inline]
    pub fn cell_key(&self, p: &Point, scratch: &mut Vec<i64>) -> u64 {
        self.grid.cell_of_into(p, scratch);
        self.hasher.cell_key(scratch)
    }

    /// Hash of `cell(p)`; `scratch` avoids a per-call allocation.
    #[inline]
    pub fn cell_hash(&self, p: &Point, scratch: &mut Vec<i64>) -> u64 {
        self.hasher.hash_key(self.cell_key(p, scratch))
    }

    /// Whether a previously computed cell hash is sampled at rate
    /// `2^-level` (`h_R(cell) = 0`).
    #[inline]
    pub fn hash_sampled(&self, cell_hash: u64, level: u32) -> bool {
        level_sampled(cell_hash, level)
    }

    /// Whether some cell of `adj(p)` is sampled at rate `2^-level`
    /// (the `∃ C ∈ adj(p): h_R(C) = 0` test of Algorithms 1 and 2),
    /// using the early-exiting `SearchAdj` DFS. The cell keys are folded
    /// incrementally along the DFS, so shared coordinate prefixes are
    /// mixed once instead of once per enumerated cell; the result is
    /// bit-identical to keying each cell from scratch.
    pub fn any_adjacent_sampled(&self, p: &Point, level: u32) -> bool {
        for_each_adjacent_cell_fold(
            &self.grid,
            p,
            self.cfg.alpha,
            self.hasher.mixer().fold_init(self.cfg.dim),
            CellKeyMixer::fold_step,
            |_cell, key| self.hasher.key_sampled(key, level),
        )
    }

    /// Words of memory attributable to the context (grid offset + hash
    /// description), for `pSpace` accounting.
    pub fn words(&self) -> usize {
        self.cfg.dim + self.hasher.words() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scales_with_log_m_and_k() {
        let base = SamplerConfig::builder(2, 1.0).expected_len(1 << 10).build().unwrap();
        let long = SamplerConfig {
            expected_len: 1 << 20,
            ..base.clone()
        };
        assert!(long.threshold() > base.threshold());
        let k3 = SamplerConfig { k: 3, ..base.clone() };
        assert_eq!(k3.threshold(), 3 * base.threshold());
    }

    #[test]
    fn high_dim_uses_side_d_alpha() {
        let cfg = SamplerConfig::builder(8, 0.25).high_dim().build().unwrap();
        assert!((cfg.side() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn context_is_deterministic_in_seed() {
        let cfg = SamplerConfig::builder(3, 0.5).seed(7).build().unwrap();
        let a = SamplerContext::new(cfg.clone());
        let b = SamplerContext::new(cfg);
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        assert_eq!(a.cell_hash(&p, &mut s1), b.cell_hash(&p, &mut s2));
        assert_eq!(a.grid().offset(), b.grid().offset());
    }

    #[test]
    fn level_zero_always_sampled() {
        let ctx = SamplerContext::new(SamplerConfig::builder(2, 0.5).build().unwrap());
        let mut scratch = Vec::new();
        for i in 0..20 {
            let p = Point::new(vec![i as f64, -(i as f64)]);
            let h = ctx.cell_hash(&p, &mut scratch);
            assert!(ctx.hash_sampled(h, 0));
        }
    }

    #[test]
    fn own_cell_sampled_implies_adjacent_sampled() {
        let ctx = SamplerContext::new(SamplerConfig::builder(2, 0.5).seed(3).build().unwrap());
        let mut scratch = Vec::new();
        for i in 0..200 {
            let p = Point::new(vec![i as f64 * 0.37, i as f64 * 0.11]);
            let h = ctx.cell_hash(&p, &mut scratch);
            for level in 0..6 {
                if ctx.hash_sampled(h, level) {
                    assert!(ctx.any_adjacent_sampled(&p, level));
                }
            }
        }
    }

    #[test]
    fn adjacent_sampling_is_monotone_in_level() {
        // Fact 1(b) lifted to neighbourhoods: sampled sets nest, so a
        // sampled adjacent cell at a finer rate is sampled at coarser ones.
        let ctx = SamplerContext::new(SamplerConfig::builder(3, 0.4).seed(11).build().unwrap());
        for i in 0..100 {
            let p = Point::new(vec![i as f64 * 0.21, 1.7, -i as f64 * 0.43]);
            for level in 1..6 {
                if ctx.any_adjacent_sampled(&p, level) {
                    assert!(ctx.any_adjacent_sampled(&p, level - 1));
                }
            }
        }
    }

    #[test]
    fn invalid_alpha_is_a_typed_error() {
        let err = SamplerConfig::builder(2, 0.0).build().unwrap_err();
        assert!(err.to_string().contains("alpha must be positive"));
    }

    #[test]
    fn builder_surfaces_each_invalid_parameter_as_err() {
        use crate::error::RdsError;
        assert!(matches!(
            SamplerConfig::builder(0, 1.0).build(),
            Err(RdsError::InvalidDimension { dim: 0 })
        ));
        assert!(matches!(
            SamplerConfig::builder(2, -1.0).build(),
            Err(RdsError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            SamplerConfig::builder(2, 1.0).kappa0(0.0).build(),
            Err(RdsError::InvalidKappa0 { .. })
        ));
        assert!(matches!(
            SamplerConfig::builder(2, 1.0).k(0).build(),
            Err(RdsError::InvalidK)
        ));
        assert!(matches!(
            SamplerConfig::builder(2, 1.0).side_factor(0.5).build(),
            Err(RdsError::InvalidSideFactor { .. })
        ));
    }

    #[test]
    fn builder_high_dim_uses_side_d_alpha() {
        let cfg = SamplerConfig::builder(8, 0.25).high_dim().build().expect("valid");
        assert!((cfg.side() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = SamplerConfig::builder(4, 0.5).seed(9).k(3).build().unwrap();
        let wire = serde_json::to_string(&cfg).expect("serializes");
        let back: SamplerConfig = serde_json::from_str(&wire).expect("deserializes");
        assert_eq!(back, cfg);
    }

    #[test]
    fn auto_independence_is_at_least_eight() {
        let cfg = SamplerConfig::builder(2, 1.0).expected_len(16).build().unwrap();
        assert!(cfg.effective_independence() >= 8);
    }
}
