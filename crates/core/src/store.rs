//! Cell-indexed struct-of-arrays storage for candidate group records.
//!
//! [`RobustL0Sampler`](crate::RobustL0Sampler) used to keep its accept and
//! reject sets as `Vec<GroupRecord>` and answer "does `p` belong to a
//! tracked group?" with a linear `within(p, alpha)` scan over *every*
//! record — the dominant per-point cost once a few hundred groups are
//! live. [`CandidateStore`] keeps the same records cell-indexed instead:
//!
//! * **SoA columns** — `cell_keys` / `cell_hashes` / `counts` / `reps` /
//!   `reservoirs` / chain-rank tags, one entry per record, addressed by a
//!   stable slot index. The duplicate probe touches only the small
//!   integer columns plus the few `reps` it actually compares.
//! * **Open-addressing table** keyed by the mixer key of `cell(rep)`,
//!   mapping to slots (linear probing, duplicate keys allowed — two
//!   groups may share a cell). A point probes only the buckets of cells
//!   within `alpha` of it, enumerated by the pruned adjacency DFS, and
//!   runs the geometric comparison on just those candidates.
//! * **Insertion-order lists** `acc_slots` / `rej_slots` preserving the
//!   exact accept-then-reject chain order the linear scan had, so the
//!   earliest matching record wins ties exactly as before.
//!
//! Coverage is exact, not approximate: a record `r` matching `p` has
//! `d(p, cell(r)) <= d(p, r) <= alpha`, so `cell(r)` is always among the
//! probed cells, and a spurious mixer-key collision only costs a wasted
//! `within` check (the geometric comparison stays authoritative).
//!
//! Deletions happen only on rate doubling
//! ([`CandidateStore::retain_after_doubling`]), which compacts the
//! columns and rebuilds the table in one `O(n)` pass — rate doubling is
//! bounded by [`MAX_LEVEL`](crate::MAX_LEVEL) over a sampler's lifetime,
//! so the hot path never sees tombstones.

use crate::infinite::GroupRecord;
use rds_geometry::Point;

/// Empty marker for table buckets.
const EMPTY: u32 = u32::MAX;
/// Chain-rank tag bit: reject-set records order after every accept-set
/// record, mirroring the old `acc.iter().chain(rej.iter())` scan order.
const REJ_TAG: u64 = 1 << 63;

/// Cell-indexed struct-of-arrays candidate storage (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct CandidateStore {
    // SoA columns, one entry per live record, slot-stable between
    // doublings.
    cell_keys: Vec<u64>,
    cell_hashes: Vec<u64>,
    counts: Vec<u64>,
    reps: Vec<Point>,
    reservoirs: Vec<Point>,
    /// Combined accept/reject tag and chain rank: accept records carry a
    /// bare monotone counter, reject records the counter with [`REJ_TAG`]
    /// set, so comparing ranks reproduces accept-then-reject insertion
    /// order.
    ranks: Vec<u64>,
    /// Accept set in insertion order (slot indices).
    acc_slots: Vec<u32>,
    /// Reject set in insertion order (slot indices).
    rej_slots: Vec<u32>,
    /// `reps` coordinates mirrored into one flat `dim`-strided buffer, so
    /// the probe's distance test reads contiguous memory instead of
    /// chasing each representative's own heap allocation.
    reps_flat: Vec<f64>,
    /// Open-addressing table (linear probing, power-of-two capacity).
    /// Each entry packs the key's high 32 bits over the slot index
    /// (`tag << 32 | slot`); an entry whose slot half is [`EMPTY`] is a
    /// free bucket. Comparing tags instead of full keys can only *add*
    /// `within` checks on tag collisions, and any record passing the
    /// geometric check is a true match that the probe of its own cell
    /// would report anyway (`d(p, cell(r)) <= d(p, r)`), so the fused
    /// layout returns exactly what the two-array full-key table did —
    /// while halving the memory the probe loop touches.
    table: Vec<u64>,
    /// Key-presence bitmap (8 bits per table bucket, power-of-two word
    /// count): bit `key % 64` of word `(key / 64) % len` is set for every
    /// key in the table. Most adjacent cells of a point hold no record,
    /// and this one-load test lets [`CandidateStore::probe_best`] dismiss
    /// them without walking the table's collision clusters; a false
    /// positive (~6% at the 3/4 load factor) only costs the normal probe.
    filter: Vec<u64>,
    next_acc_rank: u64,
    next_rej_rank: u64,
}

/// A free table bucket: the slot half is [`EMPTY`].
const EMPTY_ENTRY: u64 = u64::MAX;

/// Sets `key`'s presence bit in `filter` (`filter.len()` a power of two).
#[inline]
fn filter_set(filter: &mut [u64], key: u64) {
    let w = (key as usize >> 6) & (filter.len() - 1);
    filter[w] |= 1u64 << (key & 63);
}

/// Linear-probing insert of `tag << 32 | slot` into the fused table
/// (`table.len()` a power of two, never full).
#[inline]
fn table_insert(table: &mut [u64], key: u64, slot: u32) {
    let m = table.len() - 1;
    let mut idx = (key as usize) & m;
    while table[idx & m] as u32 != EMPTY {
        idx += 1;
    }
    table[idx & m] = (key >> 32) << 32 | u64::from(slot);
}

impl CandidateStore {
    /// An empty store.
    // lint:allow(L4) parameterless and infallible: an empty store has no
    // validation to fail, so a try_new sibling would have nothing to check
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live records (both sets).
    #[inline]
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether the store holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Accept-set size (`|Sacc|`).
    #[inline]
    pub fn acc_len(&self) -> usize {
        self.acc_slots.len()
    }

    /// Reject-set size (`|Srej|`).
    #[inline]
    pub fn rej_len(&self) -> usize {
        self.rej_slots.len()
    }

    /// Folds every record of the bucket for cell key `key` whose
    /// representative is within `alpha` of `p` into `best`, keeping the
    /// record with the smallest chain rank. Called once per probed cell;
    /// after probing every cell within `alpha` of `p`, `best` holds
    /// exactly the record the old linear accept-then-reject scan would
    /// have found first.
    #[inline]
    pub fn probe_best(&self, key: u64, p: &Point, alpha: f64, best: &mut Option<(u64, u32)>) {
        if self.table.is_empty() {
            return;
        }
        // One-load early out: no record has this key anywhere in the
        // table (the common case — most adjacent cells are empty).
        let w = (key as usize >> 6) & (self.filter.len() - 1);
        if self.filter[w] & (1u64 << (key & 63)) == 0 {
            return;
        }
        let table = &self.table[..];
        // Indexing with `i & (len - 1)` is provably in bounds, so the
        // probe loop compiles without bounds checks.
        let m = table.len() - 1;
        let tag = key >> 32;
        let mut idx = (key as usize) & m;
        loop {
            let entry = table[idx & m];
            let slot = entry as u32;
            if slot == EMPTY {
                return;
            }
            if (entry >> 32) == tag {
                let s = slot as usize;
                if self.rep_within(s, p, alpha) {
                    let rank = self.ranks[s];
                    let better = match *best {
                        Some((r, _)) => rank < r,
                        None => true,
                    };
                    if better {
                        *best = Some((rank, slot));
                    }
                }
            }
            idx += 1;
        }
    }

    /// `self.reps[s].within(p, alpha)`, computed over the flat coordinate
    /// mirror: the identical subtract/square/accumulate/early-exit
    /// sequence of [`Point::within`], operand for operand, so the result
    /// is bit-for-bit the same.
    #[inline]
    fn rep_within(&self, s: usize, p: &Point, alpha: f64) -> bool {
        let dim = p.dim();
        let rep = &self.reps_flat[s * dim..s * dim + dim];
        let limit = alpha * alpha;
        let mut acc = 0.0;
        for (a, b) in rep.iter().zip(p.coords().iter()) {
            let d = a - b;
            acc += d * d;
            if acc > limit {
                return false;
            }
        }
        true
    }

    /// The linear-scan fallback of [`CandidateStore::probe_best`]: walks
    /// the accept then the reject list in insertion order and returns the
    /// first record within `alpha` of `p`. Chain order equals rank order,
    /// so this is exactly the minimum-rank record the cell-indexed probe
    /// finds — used when `p`'s adjacent-cell enumeration would visit more
    /// cells than the store has records worth scanning (high-dimensional
    /// grids, where `|adj(p)|` grows exponentially with the dimension).
    pub fn scan_best(&self, p: &Point, alpha: f64) -> Option<(u64, u32)> {
        for &slot in self.acc_slots.iter().chain(self.rej_slots.iter()) {
            let s = slot as usize;
            if self.reps[s].within(p, alpha) {
                return Some((self.ranks[s], slot));
            }
        }
        None
    }

    /// Increments the duplicate counter of `slot`, returning the new
    /// count.
    #[inline]
    pub fn bump_count(&mut self, slot: u32) -> u64 {
        let c = &mut self.counts[slot as usize];
        *c += 1;
        *c
    }

    /// Replaces the reservoir member of `slot`.
    #[inline]
    pub fn set_reservoir(&mut self, slot: u32, p: &Point) {
        self.reservoirs[slot as usize].clone_from(p);
    }

    /// The stored cell hash (`h(cell(rep))`) of `slot`.
    #[inline]
    pub fn cell_hash(&self, slot: u32) -> u64 {
        self.cell_hashes[slot as usize]
    }

    /// The representative point of `slot`.
    #[inline]
    pub fn rep(&self, slot: u32) -> &Point {
        &self.reps[slot as usize]
    }

    /// The reservoir member of `slot`.
    #[inline]
    pub fn reservoir(&self, slot: u32) -> &Point {
        &self.reservoirs[slot as usize]
    }

    /// The slot of the `i`-th accept-set record (insertion order).
    #[inline]
    pub fn acc_slot(&self, i: usize) -> u32 {
        self.acc_slots[i]
    }

    /// Appends a new accept-set record with count 1 and the
    /// representative as its own reservoir member.
    pub fn push_acc(&mut self, key: u64, hash: u64, rep: Point) {
        let rank = self.next_acc_rank;
        self.next_acc_rank += 1;
        let reservoir = rep.clone();
        let slot = self.push_record(key, hash, rep, reservoir, 1, rank);
        self.acc_slots.push(slot);
    }

    /// Appends a new reject-set record with count 1 and the
    /// representative as its own reservoir member.
    pub fn push_rej(&mut self, key: u64, hash: u64, rep: Point) {
        let rank = REJ_TAG | self.next_rej_rank;
        self.next_rej_rank += 1;
        let reservoir = rep.clone();
        let slot = self.push_record(key, hash, rep, reservoir, 1, rank);
        self.rej_slots.push(slot);
    }

    fn push_record(
        &mut self,
        key: u64,
        hash: u64,
        rep: Point,
        reservoir: Point,
        count: u64,
        rank: u64,
    ) -> u32 {
        let slot = self.reps.len() as u32;
        // Insert into the table before the columns grow: a resize re-keys
        // from the columns, so the new record must not be there yet.
        self.ensure_table_capacity();
        table_insert(&mut self.table, key, slot);
        filter_set(&mut self.filter, key);
        self.cell_keys.push(key);
        self.cell_hashes.push(hash);
        self.counts.push(count);
        self.reps_flat.extend_from_slice(rep.coords());
        self.reps.push(rep);
        self.reservoirs.push(reservoir);
        self.ranks.push(rank);
        slot
    }

    fn ensure_table_capacity(&mut self) {
        let needed = self.reps.len() + 1;
        // Keep the load factor at or below 3/4.
        if self.table.is_empty() || needed * 4 > self.table.len() * 3 {
            let cap = (needed * 2).next_power_of_two().max(16);
            self.rebuild_table(cap);
        }
    }

    fn rebuild_table(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= self.reps.len() * 2);
        self.table = vec![EMPTY_ENTRY; cap];
        self.filter = vec![0; cap / 8];
        for (slot, &key) in self.cell_keys.iter().enumerate() {
            table_insert(&mut self.table, key, slot as u32);
            filter_set(&mut self.filter, key);
        }
    }

    /// The rate-doubling refilter, as one compaction pass over the
    /// columns (no record is cloned):
    ///
    /// * accept records stay accepted while `keep_acc(cell_hash)` holds
    ///   (Fact 1b: survivors are a subset);
    /// * demoted accept records move to the *back* of the reject list, in
    ///   accept order, when `keep_rej(rep)` holds;
    /// * reject records stay while `keep_rej(rep)` holds;
    ///
    /// then the columns are compacted to the survivors and the table is
    /// rebuilt. Both predicates must be pure (they are hash lookups).
    pub fn retain_after_doubling<KA, KR>(&mut self, mut keep_acc: KA, mut keep_rej: KR)
    where
        KA: FnMut(u64) -> bool,
        KR: FnMut(&Point) -> bool,
    {
        let mut new_acc: Vec<u32> = Vec::with_capacity(self.acc_slots.len());
        let mut demoted: Vec<u32> = Vec::new();
        for &slot in &self.acc_slots {
            if keep_acc(self.cell_hashes[slot as usize]) {
                new_acc.push(slot);
            } else {
                demoted.push(slot);
            }
        }
        let mut new_rej: Vec<u32> = Vec::with_capacity(self.rej_slots.len());
        for &slot in &self.rej_slots {
            if keep_rej(&self.reps[slot as usize]) {
                new_rej.push(slot);
            }
        }
        for &slot in &demoted {
            if keep_rej(&self.reps[slot as usize]) {
                // Demotion: append after every surviving reject record,
                // preserving relative accept order.
                self.ranks[slot as usize] = REJ_TAG | self.next_rej_rank;
                self.next_rej_rank += 1;
                new_rej.push(slot);
            }
        }
        self.acc_slots = new_acc;
        self.rej_slots = new_rej;
        self.compact();
    }

    /// Drops every record not referenced by the order lists, renumbers
    /// slots, and rebuilds the table. `O(n)`; runs only on rate doubling.
    fn compact(&mut self) {
        let live = self.acc_slots.len() + self.rej_slots.len();
        let mut remap = vec![EMPTY; self.reps.len()];
        let mut order: Vec<u32> = Vec::with_capacity(live);
        for &slot in self.acc_slots.iter().chain(self.rej_slots.iter()) {
            remap[slot as usize] = order.len() as u32;
            order.push(slot);
        }
        let mut reps_old: Vec<Option<Point>> =
            std::mem::take(&mut self.reps).into_iter().map(Some).collect();
        let mut reservoirs_old: Vec<Option<Point>> = std::mem::take(&mut self.reservoirs)
            .into_iter()
            .map(Some)
            .collect();
        let mut cell_keys = Vec::with_capacity(live);
        let mut cell_hashes = Vec::with_capacity(live);
        let mut counts = Vec::with_capacity(live);
        let mut ranks = Vec::with_capacity(live);
        let mut reps = Vec::with_capacity(live);
        let mut reservoirs = Vec::with_capacity(live);
        for &slot in &order {
            let s = slot as usize;
            cell_keys.push(self.cell_keys[s]);
            cell_hashes.push(self.cell_hashes[s]);
            counts.push(self.counts[s]);
            ranks.push(self.ranks[s]);
            if let Some(p) = reps_old[s].take() {
                reps.push(p);
            }
            if let Some(p) = reservoirs_old[s].take() {
                reservoirs.push(p);
            }
        }
        debug_assert_eq!(reps.len(), live, "a live slot was referenced twice");
        self.cell_keys = cell_keys;
        self.cell_hashes = cell_hashes;
        self.counts = counts;
        self.ranks = ranks;
        self.reps = reps;
        self.reservoirs = reservoirs;
        self.reps_flat.clear();
        for r in &self.reps {
            self.reps_flat.extend_from_slice(r.coords());
        }
        for slot in self.acc_slots.iter_mut().chain(self.rej_slots.iter_mut()) {
            *slot = remap[*slot as usize];
        }
        let cap = (live.max(8) * 2).next_power_of_two();
        self.rebuild_table(cap);
    }

    /// Materializes one record (cloning both points).
    pub fn record_at(&self, slot: u32) -> GroupRecord {
        let s = slot as usize;
        GroupRecord {
            rep: self.reps[s].clone(),
            cell_hash: self.cell_hashes[s],
            count: self.counts[s],
            reservoir: self.reservoirs[s].clone(),
        }
    }

    /// Materializes the accept set as owned records, in insertion order —
    /// the exact `Vec<GroupRecord>` the pre-SoA sampler stored, for the
    /// serde wire format and summary `Arc` sharing.
    pub fn acc_records(&self) -> Vec<GroupRecord> {
        self.acc_slots.iter().map(|&s| self.record_at(s)).collect()
    }

    /// Materializes the reject set as owned records, in insertion order.
    pub fn rej_records(&self) -> Vec<GroupRecord> {
        self.rej_slots.iter().map(|&s| self.record_at(s)).collect()
    }

    /// Consumes the store, materializing `(accept, reject)` record
    /// vectors without cloning any point.
    pub fn into_records(self) -> (Vec<GroupRecord>, Vec<GroupRecord>) {
        let mut reps: Vec<Option<Point>> = self.reps.into_iter().map(Some).collect();
        let mut reservoirs: Vec<Option<Point>> =
            self.reservoirs.into_iter().map(Some).collect();
        let mut take_list = |slots: &[u32]| -> Vec<GroupRecord> {
            let mut out = Vec::with_capacity(slots.len());
            for &slot in slots {
                let s = slot as usize;
                if let (Some(rep), Some(reservoir)) = (reps[s].take(), reservoirs[s].take()) {
                    out.push(GroupRecord {
                        rep,
                        cell_hash: self.cell_hashes[s],
                        count: self.counts[s],
                        reservoir,
                    });
                }
            }
            out
        };
        let acc = take_list(&self.acc_slots);
        let rej = take_list(&self.rej_slots);
        (acc, rej)
    }

    /// Rebuilds a store from materialized record vectors (the checkpoint
    /// restore path). `key_of` recomputes the mixer key of `cell(rep)` —
    /// it is a deterministic function of the grid, so it is rebuilt
    /// rather than stored; the persisted `cell_hash` is kept verbatim.
    pub fn from_records(
        acc: Vec<GroupRecord>,
        rej: Vec<GroupRecord>,
        mut key_of: impl FnMut(&Point) -> u64,
    ) -> Self {
        let mut store = Self::new();
        for r in acc {
            let key = key_of(&r.rep);
            let rank = store.next_acc_rank;
            store.next_acc_rank += 1;
            let slot = store.push_record(key, r.cell_hash, r.rep, r.reservoir, r.count, rank);
            store.acc_slots.push(slot);
        }
        for r in rej {
            let key = key_of(&r.rep);
            let rank = REJ_TAG | store.next_rej_rank;
            store.next_rej_rank += 1;
            let slot = store.push_record(key, r.cell_hash, r.rep, r.reservoir, r.count, rank);
            store.rej_slots.push(slot);
        }
        store
    }

    /// Machine words held by the records: every record stores two
    /// `dim`-coordinate points plus two bookkeeping words. `O(1)` — all
    /// stored points have the configured dimension (enforced on ingest
    /// and on restore), so no per-record walk is needed.
    pub fn words(&self, dim: usize) -> usize {
        self.len() * (2 * dim + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64) -> Point {
        Point::new(vec![x])
    }

    #[test]
    fn probe_finds_only_matching_bucket_and_respects_chain_order() {
        let mut store = CandidateStore::new();
        // Two records in the same cell-key bucket, one in another.
        store.push_rej(7, 100, pt(0.0)); // rej, rank after all acc
        store.push_acc(7, 200, pt(0.2)); // acc, same bucket
        store.push_acc(9, 300, pt(10.0));
        let mut best = None;
        store.probe_best(7, &pt(0.1), 0.5, &mut best);
        // Both bucket-7 reps are within 0.5 of 0.1; the accept record wins
        // even though the reject record was inserted first.
        let (rank, slot) = best.expect("a match");
        assert_eq!(rank & REJ_TAG, 0, "accept chain order beats reject");
        assert_eq!(store.rep(slot), &pt(0.2));
        // A probe of the other bucket sees only its own record.
        let mut other = None;
        store.probe_best(9, &pt(10.1), 0.5, &mut other);
        assert!(other.is_some());
        let mut miss = None;
        store.probe_best(9, &pt(0.1), 0.5, &mut miss);
        assert!(miss.is_none(), "geometric comparison is authoritative");
    }

    #[test]
    fn records_round_trip_in_insertion_order() {
        let mut store = CandidateStore::new();
        for i in 0..20 {
            if i % 3 == 0 {
                store.push_rej(i, i * 10, pt(i as f64));
            } else {
                store.push_acc(i, i * 10, pt(i as f64));
            }
        }
        assert_eq!(store.acc_len() + store.rej_len(), store.len());
        let acc = store.acc_records();
        let rej = store.rej_records();
        assert!(acc.windows(2).all(|w| w[0].rep.get(0) < w[1].rep.get(0)));
        assert!(rej.windows(2).all(|w| w[0].rep.get(0) < w[1].rep.get(0)));
        let (acc2, rej2) = store.clone().into_records();
        assert_eq!(acc.len(), acc2.len());
        assert_eq!(rej.len(), rej2.len());
        for (a, b) in acc.iter().zip(acc2.iter()) {
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.cell_hash, b.cell_hash);
        }
        let rebuilt = CandidateStore::from_records(acc, rej, |p| p.get(0) as u64);
        assert_eq!(rebuilt.acc_len(), store.acc_len());
        assert_eq!(rebuilt.rej_len(), store.rej_len());
    }

    #[test]
    fn retain_after_doubling_demotes_in_order_and_compacts() {
        let mut store = CandidateStore::new();
        // acc: hashes 1 (drop), 2 (keep), 3 (drop); rej: rep 100 kept,
        // rep 101 dropped.
        store.push_acc(1, 1, pt(1.0));
        store.push_acc(2, 2, pt(2.0));
        store.push_acc(3, 3, pt(3.0));
        store.push_rej(4, 4, pt(100.0));
        store.push_rej(5, 5, pt(101.0));
        store.retain_after_doubling(
            |hash| hash == 2,
            |rep| {
                let x = rep.get(0);
                // demoted 1.0 survives, demoted 3.0 does not; old rej
                // 100.0 survives, 101.0 does not
                x == 1.0 || x == 100.0
            },
        );
        let acc = store.acc_records();
        let rej = store.rej_records();
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].rep, pt(2.0));
        // old reject survivors first, then demotions, in order
        assert_eq!(rej.len(), 2);
        assert_eq!(rej[0].rep, pt(100.0));
        assert_eq!(rej[1].rep, pt(1.0));
        assert_eq!(store.len(), 3);
        // the table still answers probes after compaction
        let mut best = None;
        store.probe_best(2, &pt(2.1), 0.5, &mut best);
        assert!(best.is_some());
        let mut gone = None;
        store.probe_best(3, &pt(3.0), 0.5, &mut gone);
        assert!(gone.is_none(), "dropped record still probeable");
    }

    #[test]
    fn duplicate_keys_share_a_bucket() {
        let mut store = CandidateStore::new();
        // Same cell key, far-apart reps: both must be probeable.
        store.push_acc(42, 1, pt(0.0));
        store.push_acc(42, 2, pt(50.0));
        let mut a = None;
        store.probe_best(42, &pt(0.1), 0.5, &mut a);
        let mut b = None;
        store.probe_best(42, &pt(50.1), 0.5, &mut b);
        let (_, sa) = a.expect("first");
        let (_, sb) = b.expect("second");
        assert_ne!(sa, sb);
    }

    #[test]
    fn table_grows_past_initial_capacity() {
        let mut store = CandidateStore::new();
        for i in 0..1000u64 {
            store.push_acc(i.wrapping_mul(0x9E37_79B9), i, pt(i as f64 * 10.0));
        }
        assert_eq!(store.acc_len(), 1000);
        for i in (0..1000u64).step_by(97) {
            let mut best = None;
            store.probe_best(
                i.wrapping_mul(0x9E37_79B9),
                &pt(i as f64 * 10.0 + 0.1),
                0.5,
                &mut best,
            );
            assert!(best.is_some(), "record {i} unreachable");
        }
    }

    #[test]
    fn words_counts_two_points_and_two_bookkeeping_words_per_record() {
        let mut store = CandidateStore::new();
        assert_eq!(store.words(3), 0);
        store.push_acc(1, 1, Point::new(vec![1.0, 2.0, 3.0]));
        store.push_rej(2, 2, Point::new(vec![4.0, 5.0, 6.0]));
        assert_eq!(store.words(3), 2 * (2 * 3 + 2));
    }
}
