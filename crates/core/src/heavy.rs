//! Robust heavy hitters: which *groups* own at least a `phi` fraction of
//! the stream?
//!
//! The paper's introduction places ℓ0-sampling in a family of statistics
//! that break on near-duplicates (F0, sampling, heavy hitters — the last
//! studied in the distributed noisy model by Zhang [36], cited in
//! Section 1). This module completes the family for the streaming model:
//! a SpaceSaving summary whose keys are *group representatives* (points)
//! instead of exact items, using the same `d(u, p) <= alpha` membership
//! rule as the samplers.
//!
//! Guarantee (inherited from SpaceSaving with `ceil(1/phi)` counters,
//! given well-separated data): every group with true count
//! `> phi * m` is reported, and every reported count overestimates the
//! true group count by at most `m / capacity`.

use crate::error::RdsError;
use rds_geometry::Point;

/// One tracked group in the heavy-hitter summary.
#[derive(Clone, Debug)]
pub struct HeavyGroup {
    /// A representative point of the group (the first point observed
    /// under the current counter).
    pub rep: Point,
    /// Estimated number of stream points in the group (never an
    /// underestimate).
    pub count: u64,
    /// Upper bound on the overestimation of `count` (the count the
    /// counter had when it was taken over).
    pub error: u64,
}

/// SpaceSaving over near-duplicate groups.
///
/// # Examples
///
/// ```
/// use rds_core::RobustHeavyHitters;
/// use rds_geometry::Point;
///
/// let mut hh = RobustHeavyHitters::try_new(0.25, 0.5).unwrap();
/// for i in 0..100 {
///     // group 0 gets 60% of the stream; two others get 20% each
///     let g = if i % 5 < 3 { 0.0 } else { (1 + i % 5) as f64 * 10.0 };
///     hh.process(&Point::new(vec![g]));
/// }
/// let heavy = hh.heavy_hitters();
/// assert_eq!(heavy.len(), 1);
/// assert!(heavy[0].rep.within(&Point::new(vec![0.0]), 0.5));
/// ```
#[derive(Clone, Debug)]
pub struct RobustHeavyHitters {
    phi: f64,
    alpha: f64,
    capacity: usize,
    groups: Vec<HeavyGroup>,
    seen: u64,
}

impl RobustHeavyHitters {
    /// Creates a summary reporting groups with frequency above `phi`,
    /// with `ceil(2/phi)` counters (the extra factor keeps the
    /// overestimation below `phi/2 * m`).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidPhi`] unless `0 < phi <= 1`;
    /// [`RdsError::InvalidAlpha`] unless `alpha` is positive and finite.
    pub fn try_new(phi: f64, alpha: f64) -> Result<Self, RdsError> {
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(RdsError::InvalidPhi { phi });
        }
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(RdsError::InvalidAlpha { alpha });
        }
        Ok(Self {
            phi,
            alpha,
            capacity: (2.0 / phi).ceil() as usize,
            groups: Vec::new(),
            seen: 0,
        })
    }

    /// Feeds one stream point.
    pub fn process(&mut self, p: &Point) {
        self.seen += 1;
        // existing group?
        if let Some(g) = self
            .groups
            .iter_mut()
            .find(|g| g.rep.within(p, self.alpha))
        {
            g.count += 1;
            return;
        }
        if self.groups.len() < self.capacity {
            self.groups.push(HeavyGroup {
                rep: p.clone(),
                count: 1,
                error: 0,
            });
            return;
        }
        // SpaceSaving takeover: the minimum counter adopts the new group
        // (capacity >= 1, so a full summary always has a minimum)
        if let Some(min) = self.groups.iter_mut().min_by_key(|g| g.count) {
            min.error = min.count;
            min.count += 1;
            min.rep = p.clone();
        }
    }

    /// Groups whose estimated frequency exceeds `phi` (every true heavy
    /// hitter is included; false positives have estimated counts within
    /// `m / capacity` of the threshold).
    pub fn heavy_hitters(&self) -> Vec<&HeavyGroup> {
        let threshold = (self.phi * self.seen as f64).floor() as u64;
        let mut out: Vec<&HeavyGroup> = self
            .groups
            .iter()
            .filter(|g| g.count > threshold)
            .collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.count));
        out
    }

    /// Estimated count of the group containing `p` (0 when untracked).
    pub fn estimate(&self, p: &Point) -> u64 {
        self.groups
            .iter()
            .find(|g| g.rep.within(p, self.alpha))
            .map(|g| g.count)
            .unwrap_or(0)
    }

    /// All counters (diagnostics).
    pub fn counters(&self) -> &[HeavyGroup] {
        &self.groups
    }

    /// Points processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The frequency threshold `phi`.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Words of memory in use.
    pub fn words(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.rep.words() + 2)
            .sum::<usize>()
            + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn noisy(base: f64, rng: &mut StdRng) -> Point {
        Point::new(vec![base + rng.random_range(-0.1..0.1)])
    }

    #[test]
    fn single_dominant_group_is_found() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hh = RobustHeavyHitters::try_new(0.2, 0.5).unwrap();
        for i in 0..1000 {
            let base = if i % 2 == 0 { 0.0 } else { (i % 50) as f64 * 10.0 };
            hh.process(&noisy(base, &mut rng));
        }
        let heavy = hh.heavy_hitters();
        assert!(!heavy.is_empty());
        assert!(heavy[0].rep.within(&Point::new(vec![0.0]), 0.5));
        // the dominant group owns ~half the stream
        assert!(heavy[0].count >= 450);
    }

    #[test]
    fn counts_never_underestimate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hh = RobustHeavyHitters::try_new(0.1, 0.5).unwrap();
        // group 0: exactly 300 points among 1000
        let mut truth = 0u64;
        for i in 0..1000 {
            let base = if i % 10 < 3 {
                truth += 1;
                0.0
            } else {
                (1 + i % 30) as f64 * 10.0
            };
            hh.process(&noisy(base, &mut rng));
        }
        let est = hh.estimate(&Point::new(vec![0.0]));
        assert!(est >= truth, "SpaceSaving must not underestimate: {est} < {truth}");
        assert!(
            est <= truth + hh.seen() / 20,
            "overestimate too large: {est} vs {truth}"
        );
    }

    #[test]
    fn no_heavy_hitters_in_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hh = RobustHeavyHitters::try_new(0.25, 0.5).unwrap();
        for i in 0..1000 {
            hh.process(&noisy((i % 100) as f64 * 10.0, &mut rng));
        }
        // every group has 1% of the stream; threshold is 25%
        assert!(hh.heavy_hitters().is_empty());
    }

    #[test]
    fn near_duplicates_aggregate_into_one_counter() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut hh = RobustHeavyHitters::try_new(0.5, 0.5).unwrap();
        for _ in 0..500 {
            hh.process(&noisy(42.0, &mut rng));
        }
        assert_eq!(hh.counters().len(), 1);
        assert_eq!(hh.counters()[0].count, 500);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hh = RobustHeavyHitters::try_new(0.1, 0.5).unwrap();
        for i in 0..10_000u64 {
            hh.process(&noisy((i % 500) as f64 * 10.0, &mut rng));
        }
        assert!(hh.counters().len() <= 20);
        assert!(hh.words() < 200);
    }

    #[test]
    fn error_field_bounds_takeovers() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hh = RobustHeavyHitters::try_new(0.25, 0.5).unwrap();
        for i in 0..400u64 {
            hh.process(&noisy((i % 40) as f64 * 10.0, &mut rng));
        }
        for g in hh.counters() {
            assert!(g.error < g.count, "error must be strictly below count");
        }
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(matches!(
            RobustHeavyHitters::try_new(0.0, 0.5),
            Err(RdsError::InvalidPhi { .. })
        ));
        assert!(matches!(
            RobustHeavyHitters::try_new(1.5, 0.5),
            Err(RdsError::InvalidPhi { .. })
        ));
        assert!(matches!(
            RobustHeavyHitters::try_new(0.25, 0.0),
            Err(RdsError::InvalidAlpha { .. })
        ));
    }
}
