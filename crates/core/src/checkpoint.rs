//! Durable checkpoint/restore for sampler state.
//!
//! Query summaries ([`crate::SamplerSummary`]) freeze what a sampler would
//! *answer*; they deliberately drop the machinery needed to keep
//! ingesting (reject sets, per-level RNG streams, rate bookkeeping). This
//! module serializes the machinery itself: every sampler family
//! implements [`Checkpointable`], whose `State` is a plain serializable
//! struct that captures the complete live state — candidate sets, clocks,
//! thresholds, and the exact PRNG positions — so that
//!
//! ```text
//! checkpoint → (process crash) → restore → continue ingesting
//! ```
//!
//! is indistinguishable, bit for bit, from a process that never crashed.
//!
//! States are self-contained: they embed the [`SamplerConfig`] (the grid
//! and hash are deterministic functions of it, so they are *rebuilt*, not
//! stored) and validate on restore — malformed or internally inconsistent
//! state surfaces as [`RdsError::Checkpoint`], never a panic.
//!
//! The sharded engine lifts this per-shard (`ShardedEngine::checkpoint`
//! in `rds-engine`), and the facade wraps the result in a versioned,
//! checksummed JSON container (`RdsWriter::checkpoint_to` /
//! `Rds::builder().restore_from(path)` in the umbrella crate).

use crate::config::SamplerConfig;
use crate::error::RdsError;
use rand::rngs::StdRng;
use serde::{DeError, Deserialize, Serialize, Value};

/// A sampler whose complete live state can be captured and restored.
///
/// `checkpoint_state` is non-destructive (clones the candidate structure;
/// the sampler keeps running) and `try_from_state` rebuilds a sampler
/// that continues exactly where the captured one stood: same candidate
/// sets, same clocks, same PRNG positions — continued ingestion and
/// queries are bit-identical to an uninterrupted run.
///
/// # Examples
///
/// ```
/// use rds_core::{Checkpointable, DistinctSampler, RobustL0Sampler, SamplerConfig};
/// use rds_geometry::Point;
///
/// let cfg = SamplerConfig::builder(1, 0.5).seed(7).build().unwrap();
/// let mut a = RobustL0Sampler::try_new(cfg).unwrap();
/// for i in 0..100u64 {
///     a.process(&Point::new(vec![(i % 10) as f64 * 10.0]));
/// }
/// // capture, serialize, restore — then both continue identically
/// let wire = serde_json::to_string(&a.checkpoint_state()).unwrap();
/// let state = serde_json::from_str(&wire).unwrap();
/// let mut b = RobustL0Sampler::try_from_state(state).unwrap();
/// for i in 100..200u64 {
///     let p = Point::new(vec![(i % 25) as f64 * 10.0]);
///     a.process(&p);
///     b.process(&p);
/// }
/// assert_eq!(a.f0_estimate(), b.f0_estimate());
/// ```
pub trait Checkpointable: Sized {
    /// The serializable full-state type.
    type State: Serialize + Deserialize + Send + 'static;

    /// Captures the complete live state (the sampler keeps running).
    fn checkpoint_state(&self) -> Self::State;

    /// Rebuilds a sampler from a captured state.
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] (or the underlying constructor's typed
    /// error) when the state is malformed or internally inconsistent —
    /// never a panic, so untrusted checkpoint files are safe to feed
    /// through this.
    fn try_from_state(state: Self::State) -> Result<Self, RdsError>;

    /// The [`SamplerConfig`] embedded in a captured state, when the
    /// family has one (the metric family is configured by a partitioner
    /// and a seed instead and returns `None`). Aggregators restoring
    /// many states — the sharded engine — use this to verify every state
    /// matches the shared configuration before spawning workers on it.
    fn state_config(state: &Self::State) -> Option<&SamplerConfig> {
        let _ = state;
        None
    }

    /// The [`Window`](rds_stream::Window) embedded in a captured state,
    /// for window families (`None` for infinite-window samplers, whose
    /// state has no window). The sharded engine uses this to reject
    /// checkpoints whose shards disagree on the expiry horizon — such
    /// shards would merge entries expired under different windows into
    /// one silently wrong estimate.
    fn state_window(state: &Self::State) -> Option<rds_stream::Window> {
        let _ = state;
        None
    }
}

/// Crate-local shorthand for [`RdsError::checkpoint`].
pub(crate) fn checkpoint_err(reason: impl Into<String>) -> RdsError {
    RdsError::checkpoint(reason)
}

/// A captured PRNG position: the four xoshiro256++ state words of a
/// [`StdRng`]. Restoring it rebuilds a generator that continues the exact
/// same sequence, which is what makes checkpointed reservoir sampling and
/// query draws bit-identical to an uninterrupted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RngState([u64; 4]);

impl RngState {
    /// Captures the generator's current position.
    pub fn capture(rng: &StdRng) -> Self {
        Self(rng.state())
    }

    /// Rebuilds a generator at the captured position.
    pub fn restore(&self) -> StdRng {
        StdRng::from_state(self.0)
    }
}

impl Serialize for RngState {
    fn to_value(&self) -> Value {
        Value::Seq(self.0.iter().map(Serialize::to_value).collect())
    }
}

impl Deserialize for RngState {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let words = Vec::<u64>::from_value(value)
            .map_err(|e| DeError::custom(format!("rng state: {e}")))?;
        let words: [u64; 4] = words
            .try_into()
            .map_err(|_| DeError::custom("rng state must hold exactly 4 words"))?;
        if words == [0; 4] {
            // All-zero is the degenerate fixed point of xoshiro256++ —
            // a generator stuck on zero can never arise from seeding, so
            // the state is corrupt.
            return Err(DeError::custom("rng state must not be all-zero"));
        }
        Ok(Self(words))
    }
}

/// Validates that every point of an iterator matches the configured
/// ambient dimension — the cross-field invariant the per-point
/// deserializer cannot check (it sees one point at a time).
pub(crate) fn check_dims<'a>(
    cfg: &SamplerConfig,
    points: impl IntoIterator<Item = &'a rds_geometry::Point>,
    what: &str,
) -> Result<(), RdsError> {
    for p in points {
        if p.dim() != cfg.dim {
            return Err(checkpoint_err(format!(
                "{what}: point of dimension {} in a dimension-{} sampler",
                p.dim(),
                cfg.dim
            )));
        }
    }
    Ok(())
}

/// Validates a restored rate exponent: levels beyond
/// [`MAX_LEVEL`](crate::MAX_LEVEL) cannot be represented by the
/// `2^level` arithmetic, and the samplers never produce them (the
/// doubling loops stop at the same cap).
pub(crate) fn check_level(level: u32) -> Result<(), RdsError> {
    if level > crate::MAX_LEVEL {
        return Err(checkpoint_err(format!(
            "rate exponent {level} out of range (max {})",
            crate::MAX_LEVEL
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rng_state_round_trips_and_continues() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            rng.next_u64();
        }
        let state = RngState::capture(&rng);
        let wire = serde_json::to_string(&state).unwrap();
        let back: RngState = serde_json::from_str(&wire).unwrap();
        let mut restored = back.restore();
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn corrupt_rng_states_are_rejected() {
        assert!(serde_json::from_str::<RngState>("[1,2,3]").is_err());
        assert!(serde_json::from_str::<RngState>("[1,2,3,4,5]").is_err());
        assert!(serde_json::from_str::<RngState>("[0,0,0,0]").is_err());
        assert!(serde_json::from_str::<RngState>("\"zebra\"").is_err());
        assert!(serde_json::from_str::<RngState>("[1,2,3,4]").is_ok());
    }

    #[test]
    fn level_guard_rejects_unrepresentable_rates() {
        assert!(check_level(0).is_ok());
        assert!(check_level(63).is_ok());
        assert!(matches!(
            check_level(64),
            Err(RdsError::Checkpoint { .. })
        ));
    }
}
