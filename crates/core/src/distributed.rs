//! Distributed robust distinct sampling: one sample over the *union* of
//! several streams.
//!
//! The paper's related-work section cites distributed ℓ0-sampling
//! (Chung & Tirthapura) and the distributed noisy-data model (Zhang,
//! SPAA 2015) and notes that the existing distributed algorithms cannot
//! handle near-duplicates. Because Algorithm 1's state is a function of
//! a shared hash/grid plus the observed points, robust samplers *merge*:
//! sites run ordinary [`RobustL0Sampler`]s built from the **same
//! configuration** (hence identical grid and hash), and the coordinator
//! unifies the site summaries at the coarsest rate, refilters with the
//! shared hash (Fact 1b makes this sound), and deduplicates groups whose
//! points were split across sites.
//!
//! Two summary flavours exist:
//!
//! * [`SiteSummary`] — the minimal wire format a site ships to a
//!   coordinator (candidate sets + rate + config seed);
//! * [`MergedSummary`] — the queryable, *self-mergeable* summary (it
//!   carries the full [`SamplerConfig`], so two merged summaries combine
//!   without out-of-band context). This is the associated
//!   [`SamplerSummary`] type of [`RobustL0Sampler`] and what the sharded
//!   engine reduces over; it also serializes, so coordinators can be
//!   chained across the wire.
//!
//! The merged summary answers the same queries as a single sampler that
//! had seen the concatenation of all site streams, up to the choice of
//! representative for cross-site groups.

use crate::config::{SamplerConfig, SamplerContext};
use crate::error::RdsError;
use crate::infinite::{GroupRecord, RobustL0Sampler};
use crate::sampler::{derived_rng, SamplerSummary};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rds_geometry::Point;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A serializable snapshot of one site's sampler state — what a site
/// ships to the coordinator over the wire.
///
/// Produced by [`DistributedSampling::summarize`]; any number of
/// summaries with the same `config_seed` can be merged with
/// [`DistributedSampling::merge_summaries`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiteSummary {
    /// The site's current rate exponent (`R = 2^level`).
    pub level: u32,
    /// The site's accept set.
    pub acc: Vec<GroupRecord>,
    /// The site's reject set.
    pub rej: Vec<GroupRecord>,
    /// Seed of the shared configuration (grids/hashes must agree).
    pub config_seed: u64,
}

/// The coordinator-side result of merging site summaries: queryable,
/// serializable, and mergeable with other summaries of the same
/// configuration ([`SamplerSummary::merge`]).
/// The candidate sets live behind [`Arc`] handles so that snapshot
/// publication can share ("copy-on-write") the sets of an unchanged
/// sampler across epochs instead of deep-copying them; `Arc` serializes
/// transparently, so the JSON shape is the same as a plain `Vec`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MergedSummary {
    cfg: SamplerConfig,
    level: u32,
    acc: Arc<Vec<GroupRecord>>,
    rej: Arc<Vec<GroupRecord>>,
}

impl RobustL0Sampler {
    /// Snapshots the sampler's state as a [`SiteSummary`] (clones both
    /// candidate sets; the sampler keeps running).
    pub fn site_summary(&self) -> SiteSummary {
        SiteSummary {
            level: self.level(),
            acc: self.accept_set(),
            rej: self.reject_set(),
            config_seed: self.context().cfg().seed,
        }
    }

    /// Consumes the sampler and extracts its [`SiteSummary`] without
    /// cloning the candidate sets — the cheap end-of-stream path for
    /// sites that are done ingesting.
    pub fn into_site_summary(self) -> SiteSummary {
        let level = self.level();
        let config_seed = self.context().cfg().seed;
        let (acc, rej) = self.into_sets();
        SiteSummary {
            level,
            acc,
            rej,
            config_seed,
        }
    }
}

impl MergedSummary {
    /// Builds a summary directly from a sampler's parts (a "merge" of one
    /// site).
    pub(crate) fn from_parts(
        cfg: SamplerConfig,
        level: u32,
        acc: Vec<GroupRecord>,
        rej: Vec<GroupRecord>,
    ) -> Self {
        Self::from_shared(cfg, level, Arc::new(acc), Arc::new(rej))
    }

    /// Builds a summary around already-shared candidate sets without
    /// copying them — the copy-on-write publication path.
    pub(crate) fn from_shared(
        cfg: SamplerConfig,
        level: u32,
        acc: Arc<Vec<GroupRecord>>,
        rej: Arc<Vec<GroupRecord>>,
    ) -> Self {
        Self {
            cfg,
            level,
            acc,
            rej,
        }
    }

    fn rng_for(&self, draw: u64) -> StdRng {
        derived_rng(self.cfg.seed, draw, 0xD157)
    }

    /// Draws a robust ℓ0-sample of the union of the site streams: the
    /// representative of a uniformly random sampled group. All randomness
    /// comes from `draw`; pass distinct tokens for independent draws.
    pub fn query(&self, draw: u64) -> Option<Point> {
        let mut rng = self.rng_for(draw);
        self.acc.choose(&mut rng).map(|r| r.rep.clone())
    }

    /// Draws the full record of a uniformly random sampled group,
    /// deterministically in `draw`.
    pub fn query_record(&self, draw: u64) -> Option<GroupRecord> {
        let mut rng = self.rng_for(draw);
        self.acc.choose(&mut rng).cloned()
    }

    /// Draws `min(k, |Sacc|)` *distinct* sampled groups of the union
    /// (sampling without replacement, the Section 2.3 extension lifted to
    /// the coordinator), deterministically in `draw`.
    pub fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        let mut rng = self.rng_for(draw);
        let mut idx: Vec<usize> = (0..self.acc.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(k);
        idx.into_iter().map(|i| self.acc[i].clone()).collect()
    }

    /// `|Sacc| * R`: the robust F0 estimate for the union.
    pub fn f0_estimate(&self) -> f64 {
        self.acc.len() as f64 * (1u64 << self.level) as f64
    }

    /// Accepted groups of the union.
    pub fn accept_set(&self) -> &[GroupRecord] {
        &self.acc
    }

    /// Rejected groups of the union.
    pub fn reject_set(&self) -> &[GroupRecord] {
        &self.rej
    }

    /// The merge's common rate exponent.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The shared duplicate threshold.
    pub fn alpha(&self) -> f64 {
        self.cfg.alpha
    }

    /// The shared configuration the summary was built under.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }
}

impl SamplerSummary for MergedSummary {
    /// Combines two summaries: unifies at the coarser rate, refilters
    /// every record with the shared hash (Fact 1b) and deduplicates
    /// cross-summary groups.
    fn merge(self, other: Self) -> Result<Self, RdsError> {
        // lint:allow(L1) merge_many of a two-element vec always returns
        // Some; config-mismatch errors propagate through the `?`
        Ok(Self::merge_many(vec![self, other])?.expect("two summaries merged"))
    }

    /// Single-pass N-way merge: one shared context, one deduplication
    /// sweep over all records — the engine's query path, deliberately not
    /// the quadratic pairwise fold.
    fn merge_many(summaries: Vec<Self>) -> Result<Option<Self>, RdsError> {
        let Some(first_cfg) = summaries.first().map(|s| s.cfg.clone()) else {
            return Ok(None);
        };
        // Full-config equality, not just the seed: same-seed summaries
        // with different alpha/dim must not silently merge.
        if let Some(bad) = summaries.iter().find(|s| s.cfg != first_cfg) {
            return Err(RdsError::ConfigMismatch {
                expected_seed: first_cfg.seed,
                actual_seed: bad.cfg.seed,
            });
        }
        if summaries.len() == 1 {
            return Ok(summaries.into_iter().next());
        }
        let cfg = first_cfg;
        let ctx = SamplerContext::new(cfg.clone());
        let level = summaries.iter().map(|s| s.level).max().unwrap_or(0);
        let alpha = cfg.alpha;
        let mut acc: Vec<GroupRecord> = Vec::new();
        let mut rej: Vec<GroupRecord> = Vec::new();
        for summary in &summaries {
            for rec in summary.acc.iter() {
                let sampled = rds_hashing::level_sampled(rec.cell_hash, level);
                absorb_record(rec, sampled, level, alpha, &mut acc, &mut rej, &ctx);
            }
            for rec in summary.rej.iter() {
                absorb_record(rec, false, level, alpha, &mut acc, &mut rej, &ctx);
            }
        }
        Ok(Some(MergedSummary::from_parts(cfg, level, acc, rej)))
    }

    fn f0_estimate(&self) -> f64 {
        MergedSummary::f0_estimate(self)
    }

    fn query_record(&self, draw: u64) -> Option<GroupRecord> {
        MergedSummary::query_record(self, draw)
    }

    fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        MergedSummary::query_k(self, k, draw)
    }
}

/// Places one record into the merged accept/reject sets, combining it
/// with an existing record of the same group if the group was observed
/// by several sites/shards.
fn absorb_record(
    rec: &GroupRecord,
    own_cell_sampled: bool,
    level: u32,
    alpha: f64,
    acc: &mut Vec<GroupRecord>,
    rej: &mut Vec<GroupRecord>,
    ctx: &SamplerContext,
) {
    // cross-site duplicate? combine counts into the existing record
    if let Some(existing) = acc.iter_mut().find(|g| g.rep.within(&rec.rep, alpha)) {
        existing.count += rec.count;
        return;
    }
    if let Some(pos) = rej.iter().position(|g| g.rep.within(&rec.rep, alpha)) {
        if own_cell_sampled {
            // the group is sampled through this site's representative:
            // promote the combined record to the accept set
            let mut combined = rec.clone();
            combined.count += rej.remove(pos).count;
            acc.push(combined);
        } else {
            rej[pos].count += rec.count;
        }
        return;
    }
    // fresh group at the coordinator
    if own_cell_sampled {
        acc.push(rec.clone());
    } else if ctx.any_adjacent_sampled(&rec.rep, level) {
        rej.push(rec.clone());
    }
    // else: not a candidate at the common rate; dropped
}

/// Builds per-site samplers sharing one configuration, and merges their
/// summaries.
///
/// # Examples
///
/// ```
/// use rds_core::{DistributedSampling, SamplerConfig};
/// use rds_geometry::Point;
///
/// let dist = DistributedSampling::new(SamplerConfig::builder(1, 0.5).seed(9).build().unwrap());
/// let mut a = dist.new_site();
/// let mut b = dist.new_site();
/// a.process(&Point::new(vec![0.0]));
/// b.process(&Point::new(vec![50.0]));
/// let merged = dist.merge([&a, &b]).expect("same config");
/// // summaries are immutable: the draw token supplies the randomness
/// assert!(merged.query(1).is_some());
/// assert_eq!(merged.f0_estimate(), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct DistributedSampling {
    cfg: SamplerConfig,
}

impl DistributedSampling {
    /// Creates the coordinator for a given shared configuration. The
    /// configuration's seed determines the common grid and hash: all
    /// sites **must** be created through [`Self::new_site`] (or with a
    /// byte-identical configuration).
    pub fn new(cfg: SamplerConfig) -> Self {
        Self { cfg }
    }

    /// Creates a site-local sampler (identical grid/hash across sites).
    pub fn new_site(&self) -> RobustL0Sampler {
        // lint:allow(L1) the stored config came from the validating
        // builder and its fields are not mutable from outside the crate
        RobustL0Sampler::try_new(self.cfg.clone()).unwrap()
    }

    /// Snapshots a site sampler's state for shipping to the coordinator
    /// (e.g. via `serde_json`).
    pub fn summarize(site: &RobustL0Sampler) -> SiteSummary {
        site.site_summary()
    }

    /// Merges site summaries into a coordinator summary over the union
    /// of the streams.
    ///
    /// Returns `None` when the sites disagree on the configuration seed
    /// (they would have incompatible grids/hashes).
    pub fn merge<'a, I>(&self, sites: I) -> Option<MergedSummary>
    where
        I: IntoIterator<Item = &'a RobustL0Sampler>,
    {
        let summaries: Vec<SiteSummary> = sites.into_iter().map(Self::summarize).collect();
        self.merge_summaries(&summaries)
    }

    /// Merges deserialized [`SiteSummary`] snapshots (the wire-format
    /// variant of [`Self::merge`]).
    pub fn merge_summaries(&self, summaries: &[SiteSummary]) -> Option<MergedSummary> {
        if summaries.iter().any(|s| s.config_seed != self.cfg.seed) {
            return None;
        }
        // The coordinator rebuilds the shared context from the seed; it
        // is identical to every site's (same deterministic construction).
        let ctx = SamplerContext::new(self.cfg.clone());
        // Unify at the coarsest rate present among the sites.
        let level = summaries.iter().map(|s| s.level).max().unwrap_or(0);
        let mut acc: Vec<GroupRecord> = Vec::new();
        let mut rej: Vec<GroupRecord> = Vec::new();
        let alpha = self.cfg.alpha;

        // Refilter every site record at the common rate (Fact 1b: only
        // removals), then deduplicate across sites by group membership.
        for site in summaries {
            for rec in &site.acc {
                let sampled = rds_hashing::level_sampled(rec.cell_hash, level);
                absorb_record(rec, sampled, level, alpha, &mut acc, &mut rej, &ctx);
            }
            for rec in &site.rej {
                absorb_record(rec, false, level, alpha, &mut acc, &mut rej, &ctx);
            }
        }
        Some(MergedSummary::from_parts(self.cfg.clone(), level, acc, rej))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![
            (i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 3) as f64,
        ])
    }

    #[test]
    fn merge_of_disjoint_sites_counts_all_groups() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(1).expected_len(200).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        for i in 0..100u64 {
            a.process(&grouped_point(i, 10)); // groups 0..10
            b.process(&grouped_point(i, 20)); // groups 0..20 (overlap!)
        }
        let merged = dist.merge([&a, &b]).expect("same cfg");
        // 20 distinct groups in the union; generous thresholds mean no
        // subsampling happened
        assert_eq!(merged.level(), 0);
        assert_eq!(merged.f0_estimate(), 20.0);
    }

    #[test]
    fn cross_site_groups_are_deduplicated() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(2).expected_len(64).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        // the same single group observed at both sites
        for i in 0..32u64 {
            a.process(&Point::new(vec![0.01 * (i % 3) as f64]));
            b.process(&Point::new(vec![0.02]));
        }
        let merged = dist.merge([&a, &b]).expect("same cfg");
        assert_eq!(merged.accept_set().len(), 1);
        assert_eq!(merged.accept_set()[0].count, 64, "counts must add up");
    }

    #[test]
    fn merge_unifies_mismatched_levels() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5)
                .seed(3)
                .expected_len(4096)
                .kappa0(0.5).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        // site a sees many groups (forces doublings); b sees few
        for i in 0..2000u64 {
            a.process(&grouped_point(i, 512));
        }
        for i in 0..20u64 {
            b.process(&grouped_point(i, 4));
        }
        assert!(a.level() > b.level());
        let merged = dist.merge([&a, &b]).expect("same cfg");
        assert_eq!(merged.level(), a.level());
        // every merged accepted record passes the common rate
        for rec in merged.accept_set() {
            assert!(rds_hashing::level_sampled(rec.cell_hash, merged.level()));
        }
    }

    #[test]
    fn merged_query_is_some_when_any_site_nonempty() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(4).expected_len(16).build().unwrap(),
        );
        let a = dist.new_site();
        let mut b = dist.new_site();
        b.process(&Point::new(vec![5.0]));
        let merged = dist.merge([&a, &b]).expect("same cfg");
        assert_eq!(merged.query(1), Some(Point::new(vec![5.0])));
    }

    #[test]
    fn into_site_summary_agrees_with_cloning_site_summary() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(31).expected_len(128).build().unwrap(),
        );
        let mut site = dist.new_site();
        for i in 0..64u64 {
            site.process(&grouped_point(i, 16));
        }
        let cloned = site.site_summary();
        let moved = site.into_site_summary();
        assert_eq!(moved.level, cloned.level);
        assert_eq!(moved.config_seed, cloned.config_seed);
        assert_eq!(moved.acc.len(), cloned.acc.len());
        assert_eq!(moved.rej.len(), cloned.rej.len());
        for (a, b) in moved.acc.iter().zip(cloned.acc.iter()) {
            assert_eq!(a.rep, b.rep);
            assert_eq!(a.count, b.count);
        }
    }

    #[test]
    fn merged_query_k_returns_distinct_groups() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(32).expected_len(256).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        for i in 0..128u64 {
            a.process(&grouped_point(i, 8));
            b.process(&grouped_point(i, 16));
        }
        let merged = dist.merge([&a, &b]).expect("same cfg");
        let picks = merged.query_k(3, 1);
        assert_eq!(picks.len(), 3);
        for i in 0..picks.len() {
            for j in (i + 1)..picks.len() {
                assert!(!picks[i].rep.within(&picks[j].rep, 0.5));
            }
        }
        // asking for more than |Sacc| returns everything once
        let n_acc = merged.accept_set().len();
        assert_eq!(merged.query_k(usize::MAX, 2).len(), n_acc);
    }

    #[test]
    fn mismatched_configs_are_rejected() {
        let dist = DistributedSampling::new(SamplerConfig::builder(1, 0.5).seed(5).build().unwrap());
        let alien = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).seed(6).build().unwrap()).unwrap();
        assert!(dist.merge([&alien]).is_none());
    }

    #[test]
    fn pairwise_merge_agrees_with_coordinator_merge() {
        // MergedSummary::merge (the trait path the sharded engine reduces
        // over) must agree with DistributedSampling::merge_summaries.
        use crate::sampler::DistinctSampler;
        let cfg = SamplerConfig::builder(1, 0.5).seed(41).expected_len(512).build().unwrap();
        let dist = DistributedSampling::new(cfg.clone());
        let mut sites: Vec<RobustL0Sampler> = (0..3).map(|_| dist.new_site()).collect();
        for i in 0..300u64 {
            sites[(i % 3) as usize].process(&grouped_point(i, 30));
        }
        let coordinator = dist.merge(sites.iter()).expect("same cfg");
        let pairwise = sites
            .iter()
            .map(DistinctSampler::summary)
            .reduce(|a, b| a.merge(b).expect("same cfg"))
            .expect("non-empty");
        assert_eq!(pairwise.f0_estimate(), coordinator.f0_estimate());
        assert_eq!(pairwise.level(), coordinator.level());
        assert_eq!(pairwise.accept_set().len(), coordinator.accept_set().len());
    }

    #[test]
    fn pairwise_merge_rejects_config_mismatch() {
        use crate::sampler::{DistinctSampler, SamplerSummary};
        let a = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).seed(1).build().unwrap()).unwrap();
        let b = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).seed(2).build().unwrap()).unwrap();
        assert!(matches!(
            DistinctSampler::summary(&a).merge(DistinctSampler::summary(&b)),
            Err(RdsError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn merged_sampling_is_roughly_uniform_over_union() {
        let n_union = 16u64;
        let mut hist = rds_metrics::SampleHistogram::new(n_union as usize);
        for run in 0..400u64 {
            let dist = DistributedSampling::new(
                SamplerConfig::builder(1, 0.5)
                    .seed(run * 97 + 7)
                    .expected_len(256)
                    .kappa0(1.0).build().unwrap(),
            );
            let mut a = dist.new_site();
            let mut b = dist.new_site();
            for i in 0..128u64 {
                a.process(&grouped_point(i, 8)); // groups 0..8
                b.process(&Point::new(vec![(8 + (i % 8)) as f64 * 10.0])); // groups 8..16
            }
            let merged = dist.merge([&a, &b]).expect("same cfg");
            let q = merged.query(1).expect("non-empty");
            hist.record((q.get(0) / 10.0).round() as usize);
        }
        assert!(
            hist.std_dev_nm() < 0.5,
            "distributed sampling biased: {:?}",
            hist.counts()
        );
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::sampler::SamplerSummary;

    #[test]
    fn site_summary_round_trips_through_json() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(2, 0.5).seed(21).expected_len(64).build().unwrap(),
        );
        let mut site = dist.new_site();
        for i in 0..40u64 {
            site.process(&Point::new(vec![(i % 8) as f64 * 10.0, 0.0]));
        }
        let summary = DistributedSampling::summarize(&site);
        let wire = serde_json::to_string(&summary).expect("serializes");
        let back: SiteSummary = serde_json::from_str(&wire).expect("deserializes");
        assert_eq!(back.level, summary.level);
        assert_eq!(back.acc.len(), summary.acc.len());
        assert_eq!(back.config_seed, summary.config_seed);
        // merging the deserialized summary works like merging the site
        let merged = dist.merge_summaries(&[back]).expect("same seed");
        assert!(merged.query(1).is_some());
        assert_eq!(merged.f0_estimate(), 8.0);
    }

    #[test]
    fn summaries_from_multiple_sites_merge_after_the_wire() {
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(22).expected_len(64).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        for i in 0..20u64 {
            a.process(&Point::new(vec![(i % 4) as f64 * 10.0]));
            b.process(&Point::new(vec![(4 + i % 4) as f64 * 10.0]));
        }
        let wire_a = serde_json::to_vec(&DistributedSampling::summarize(&a)).expect("ser");
        let wire_b = serde_json::to_vec(&DistributedSampling::summarize(&b)).expect("ser");
        let sa: SiteSummary = serde_json::from_slice(&wire_a).expect("de");
        let sb: SiteSummary = serde_json::from_slice(&wire_b).expect("de");
        let merged = dist.merge_summaries(&[sa, sb]).expect("same seed");
        assert_eq!(merged.f0_estimate(), 8.0);
    }

    #[test]
    fn merged_summary_round_trips_through_json() {
        // The wire format the chained-coordinator path depends on: a
        // MergedSummary survives serialization with its query and merge
        // capabilities intact.
        let dist = DistributedSampling::new(
            SamplerConfig::builder(1, 0.5).seed(25).expected_len(128).build().unwrap(),
        );
        let mut a = dist.new_site();
        let mut b = dist.new_site();
        for i in 0..64u64 {
            a.process(&Point::new(vec![(i % 6) as f64 * 10.0]));
            b.process(&Point::new(vec![(6 + i % 6) as f64 * 10.0]));
        }
        let merged = dist.merge([&a, &b]).expect("same cfg");
        let wire = serde_json::to_string(&merged).expect("serializes");
        let back: MergedSummary = serde_json::from_str(&wire).expect("deserializes");
        assert_eq!(back.f0_estimate(), merged.f0_estimate());
        assert_eq!(back.level(), merged.level());
        assert_eq!(back.alpha(), merged.alpha());
        assert_eq!(back.accept_set().len(), merged.accept_set().len());
        for (x, y) in back.accept_set().iter().zip(merged.accept_set()) {
            assert_eq!(x.rep, y.rep);
            assert_eq!(x.count, y.count);
            assert_eq!(x.cell_hash, y.cell_hash);
        }
        assert!(back.query(1).is_some());
        // still mergeable after the wire
        let mut c = dist.new_site();
        c.process(&Point::new(vec![500.0]));
        let other = dist.merge([&c]).expect("same cfg");
        let combined = back.merge(other).expect("same cfg");
        assert_eq!(combined.f0_estimate(), 13.0);
    }

    #[test]
    fn wire_summary_with_wrong_seed_is_rejected() {
        let dist = DistributedSampling::new(SamplerConfig::builder(1, 0.5).seed(23).build().unwrap());
        let other = RobustL0Sampler::try_new(SamplerConfig::builder(1, 0.5).seed(24).build().unwrap()).unwrap();
        let summary = DistributedSampling::summarize(&other);
        assert!(dist.merge_summaries(&[summary]).is_none());
    }
}
