//! Remark 2 of Section 4: robust sampling in very high dimension via
//! Johnson–Lindenstrauss dimension reduction.
//!
//! For `(alpha, beta)`-sparse data with `beta >= c * log^{1.5} m * alpha`,
//! project every point into `k = O(log m / eps^2)` dimensions first; the
//! projection preserves the sparsity structure up to `1 ± eps` w.h.p., so
//! the core sampler can run in the reduced space with a slightly widened
//! threshold `alpha' = (1 + eps) * alpha`.

use crate::checkpoint::{check_dims, checkpoint_err, Checkpointable};
use crate::config::SamplerConfig;
use crate::distributed::MergedSummary;
use crate::error::RdsError;
use crate::infinite::{GroupRecord, ProcessOutcome, RobustL0State, RobustL0Sampler};
use crate::sampler::{DistinctSampler, SamplerSummary};
use serde::{Deserialize, Serialize};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_geometry::{JlProjection, Point};
use rds_stream::StreamItem;

/// A robust ℓ0-sampler for high-dimensional data that projects each point
/// with a JL map before feeding the core Algorithm 1 structure.
///
/// The sampler keeps the group decision in the projected space; queries
/// return the *original* high-dimensional points.
#[derive(Debug)]
pub struct JlRobustSampler {
    projection: JlProjection,
    inner: RobustL0Sampler,
    /// original points of the accepted representatives, parallel to the
    /// inner accept set is not possible (the inner structure reorders), so
    /// we map projected reps back via exact match on demand.
    originals: Vec<(Point, Point)>, // (projected rep, original rep)
    eps: f64,
    /// The ambient-space group threshold and base configuration the
    /// sampler was constructed from, kept verbatim so a checkpoint can
    /// rebuild the projection and the inner configuration exactly
    /// (deriving them back from the inner state would round through
    /// `(1 + eps) * alpha` and can drift by an ulp).
    alpha: f64,
    base_cfg: SamplerConfig,
}

impl JlRobustSampler {
    /// Creates the sampler.
    ///
    /// * `in_dim` — the ambient dimension of the stream;
    /// * `alpha` — the group threshold in the *original* space;
    /// * `eps` — JL distortion; the projected space uses
    ///   `alpha' = (1 + eps) * alpha` and dimension
    ///   `k = ceil(8 ln m / eps^2)` (capped at `in_dim`).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidDistortion`] unless `0 < eps < 1`,
    /// [`RdsError::InvalidDimension`] when the configured dimension does
    /// not match `in_dim`, or any [`SamplerConfig::validate`] failure.
    pub fn try_new(
        in_dim: usize,
        alpha: f64,
        eps: f64,
        cfg: SamplerConfig,
    ) -> Result<Self, RdsError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(RdsError::InvalidDistortion { eps });
        }
        if cfg.dim != in_dim {
            return Err(RdsError::InvalidDimension { dim: cfg.dim });
        }
        cfg.validate()?;
        let out_dim = JlProjection::suggested_dim(cfg.expected_len, eps).min(in_dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4A4C_5EED);
        let projection = JlProjection::new(in_dim, out_dim, &mut rng);
        let inner_cfg = SamplerConfig {
            dim: out_dim,
            alpha: (1.0 + eps) * alpha,
            ..cfg.clone()
        };
        Ok(Self {
            projection,
            inner: RobustL0Sampler::try_new(inner_cfg)?,
            originals: Vec::new(),
            eps,
            alpha,
            base_cfg: cfg,
        })
    }

    /// Feeds one high-dimensional point.
    pub fn process(&mut self, p: &Point) -> ProcessOutcome {
        let projected = self.projection.project(p);
        let outcome = self.inner.process(&projected);
        if matches!(outcome, ProcessOutcome::Accepted | ProcessOutcome::Rejected) {
            self.originals.push((projected, p.clone()));
        }
        outcome
    }

    /// Draws a robust ℓ0-sample and maps it back to the original space.
    pub fn query(&mut self) -> Option<&Point> {
        let rep = self.inner.query()?.clone();
        self.originals
            .iter()
            .find(|(proj, _)| *proj == rep)
            .map(|(_, orig)| orig)
    }

    /// The projected dimension in use.
    pub fn projected_dim(&self) -> usize {
        self.projection.out_dim()
    }

    /// The JL distortion parameter.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The inner (projected-space) sampler.
    pub fn inner(&self) -> &RobustL0Sampler {
        &self.inner
    }

    /// Number of points processed.
    pub fn seen(&self) -> u64 {
        self.inner.seen()
    }

}

/// Maps a projected-space record back to the ambient space: the original
/// representative doubles as the reservoir member (the reservoir is only
/// tracked in the projected space). Records with no registered original
/// (never the case for accepted representatives) pass through unchanged.
fn lift_record(originals: &[(Point, Point)], rec: GroupRecord) -> GroupRecord {
    match originals
        .iter()
        .find(|(proj, _)| *proj == rec.rep)
        .map(|(_, orig)| orig.clone())
    {
        Some(orig) => GroupRecord {
            reservoir: orig.clone(),
            rep: orig,
            cell_hash: rec.cell_hash,
            count: rec.count,
        },
        None => rec,
    }
}

/// The serializable full state of a [`JlRobustSampler`]: the construction
/// parameters (the projection matrix is a deterministic function of them
/// and is rebuilt, not stored), the inner projected-space sampler state,
/// and the projected→original representative map.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JlSamplerState {
    in_dim: usize,
    alpha: f64,
    eps: f64,
    base_cfg: SamplerConfig,
    inner: RobustL0State,
    originals: Vec<(Point, Point)>,
}

impl JlSamplerState {
    /// The ambient dimension of the checkpointed sampler.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The base configuration the checkpointed sampler was built from.
    pub fn base_cfg(&self) -> &SamplerConfig {
        &self.base_cfg
    }
}

impl Checkpointable for JlRobustSampler {
    type State = JlSamplerState;

    fn checkpoint_state(&self) -> JlSamplerState {
        JlSamplerState {
            in_dim: self.projection.in_dim(),
            alpha: self.alpha,
            eps: self.eps,
            base_cfg: self.base_cfg.clone(),
            inner: self.inner.checkpoint_state(),
            originals: self.originals.clone(),
        }
    }

    fn try_from_state(state: JlSamplerState) -> Result<Self, RdsError> {
        // Rebuild the projection (and re-validate the construction
        // parameters) exactly as `try_new` does, then swap in the
        // captured inner state.
        let mut s = Self::try_new(state.in_dim, state.alpha, state.eps, state.base_cfg)?;
        if s.inner.context().cfg() != state.inner.cfg() {
            return Err(checkpoint_err(
                "inner sampler state does not match the projected-space \
                 configuration derived from the JL construction parameters",
            ));
        }
        let ambient = SamplerConfig {
            dim: state.in_dim,
            ..state.inner.cfg().clone()
        };
        let projected = state.inner.cfg().clone();
        check_dims(
            &projected,
            state.originals.iter().map(|(proj, _)| proj),
            "projected representatives",
        )?;
        check_dims(
            &ambient,
            state.originals.iter().map(|(_, orig)| orig),
            "original representatives",
        )?;
        s.inner = RobustL0Sampler::try_from_state(state.inner)?;
        s.originals = state.originals;
        Ok(s)
    }

    fn state_config(state: &JlSamplerState) -> Option<&SamplerConfig> {
        Some(&state.base_cfg)
    }
}

/// The [`crate::SamplerSummary`] of the JL sampler: the projected-space
/// merged summary plus the projected→original representative map, so
/// queries after a merge still return points of the ambient space.
#[derive(Clone, Debug)]
pub struct JlSummary {
    inner: MergedSummary,
    originals: Vec<(Point, Point)>,
}

impl JlSummary {
    /// The projected-space summary.
    pub fn inner(&self) -> &MergedSummary {
        &self.inner
    }
}

impl SamplerSummary for JlSummary {
    fn merge(self, other: Self) -> Result<Self, RdsError> {
        let mut originals = self.originals;
        originals.extend(other.originals);
        Ok(Self {
            inner: self.inner.merge(other.inner)?,
            originals,
        })
    }

    /// Single-pass N-way merge, delegating to the projected-space
    /// [`MergedSummary::merge_many`].
    fn merge_many(summaries: Vec<Self>) -> Result<Option<Self>, RdsError> {
        let mut inners = Vec::with_capacity(summaries.len());
        let mut originals = Vec::new();
        for s in summaries {
            inners.push(s.inner);
            originals.extend(s.originals);
        }
        Ok(MergedSummary::merge_many(inners)?.map(|inner| JlSummary { inner, originals }))
    }

    fn f0_estimate(&self) -> f64 {
        self.inner.f0_estimate()
    }

    fn query_record(&self, draw: u64) -> Option<GroupRecord> {
        self.inner
            .query_record(draw)
            .map(|rec| lift_record(&self.originals, rec))
    }

    fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        let recs = self.inner.query_k(k, draw);
        recs.into_iter()
            .map(|rec| lift_record(&self.originals, rec))
            .collect()
    }
}

impl DistinctSampler for JlRobustSampler {
    type Summary = JlSummary;

    /// Projects the item's point and feeds the inner sampler; the stamp
    /// is ignored (infinite window).
    fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
        JlRobustSampler::process(self, &item.point)
    }

    fn query_record(&mut self) -> Option<GroupRecord> {
        let rec = DistinctSampler::query_record(&mut self.inner)?;
        Some(lift_record(&self.originals, rec))
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        let recs = DistinctSampler::query_k(&mut self.inner, k);
        recs.into_iter()
            .map(|rec| lift_record(&self.originals, rec))
            .collect()
    }

    fn f0_estimate(&self) -> f64 {
        self.inner.f0_estimate()
    }

    fn seen(&self) -> u64 {
        self.inner.seen()
    }

    fn words(&self) -> usize {
        let map: usize = self
            .originals
            .iter()
            .map(|(a, b)| a.words() + b.words())
            .sum();
        self.inner.words() + map
    }

    fn summary(&self) -> JlSummary {
        JlSummary {
            inner: DistinctSampler::summary(&self.inner),
            originals: self.originals.clone(),
        }
    }

    fn into_summary(self) -> JlSummary {
        JlSummary {
            inner: DistinctSampler::into_summary(self.inner),
            originals: self.originals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_geometry::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Well-separated groups in high dimension: centers on a scaled
    /// simplex, members jittered within alpha/2.
    fn hd_stream(n_groups: usize, per_group: usize, dim: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point> = (0..n_groups)
            .map(|g| {
                let mut c = vec![0.0; dim];
                c[g % dim] = 100.0 * (1.0 + (g / dim) as f64);
                Point::new(c)
            })
            .collect();
        let mut out = Vec::new();
        for (g, c) in centers.iter().enumerate() {
            for _ in 0..per_group {
                let jitter: Vec<f64> = (0..dim)
                    .map(|_| standard_normal(&mut rng) * 0.002)
                    .collect();
                out.push((c.add(&Point::new(jitter)), g));
            }
        }
        out
    }

    #[test]
    fn projected_sampler_returns_original_points() {
        let dim = 128;
        let stream = hd_stream(10, 6, dim, 1);
        let cfg = SamplerConfig::builder(dim, 0.5)
            .seed(9)
            .expected_len(stream.len() as u64).build().unwrap();
        let mut s = JlRobustSampler::try_new(dim, 0.5, 0.5, cfg).unwrap();
        for (p, _) in &stream {
            s.process(p);
        }
        let q = s.query().expect("non-empty");
        assert_eq!(q.dim(), dim);
        assert!(stream.iter().any(|(p, _)| p == q));
    }

    #[test]
    fn projection_reduces_dimension() {
        let dim = 512;
        let cfg = SamplerConfig::builder(dim, 0.5)
            .seed(10)
            .expected_len(1 << 10).build().unwrap();
        let s = JlRobustSampler::try_new(dim, 0.5, 0.5, cfg).unwrap();
        assert!(s.projected_dim() < dim);
        assert!(s.projected_dim() > 0);
    }

    #[test]
    fn groups_survive_projection() {
        // all points of a group must stay near-duplicates in the
        // projected space (distance <= (1+eps) alpha)
        let dim = 128;
        let stream = hd_stream(8, 8, dim, 2);
        let cfg = SamplerConfig::builder(dim, 0.5)
            .seed(11)
            .expected_len(stream.len() as u64).build().unwrap();
        let mut s = JlRobustSampler::try_new(dim, 0.5, 0.5, cfg).unwrap();
        let mut accepted_or_rejected = 0;
        for (p, _) in &stream {
            match s.process(p) {
                ProcessOutcome::Accepted | ProcessOutcome::Rejected => accepted_or_rejected += 1,
                _ => {}
            }
        }
        // exactly one representative per group => at most 8 registrations
        assert!(accepted_or_rejected <= 8, "groups fragmented after JL");
    }

    #[test]
    fn mismatched_dim_rejected() {
        let err =
            JlRobustSampler::try_new(64, 0.5, 0.5, SamplerConfig::builder(32, 0.5).build().unwrap())
                .unwrap_err();
        assert!(matches!(err, RdsError::InvalidDimension { dim: 32 }));
    }
}
