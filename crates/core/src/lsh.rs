//! Section 7 (future work) implemented: robust ℓ0-sampling in general
//! metric spaces via locality-sensitive partitions.
//!
//! The paper observes that the random grid is "a particular
//! locality-sensitive hash function, and it is possible to generalize our
//! algorithms to general metric spaces that are equipped with efficient
//! locality-sensitive hash functions", leaving the generalization as
//! future work. This module provides that generalization:
//!
//! * [`LshPartitioner`] — the interface a space must offer: a bucket
//!   (cell) per point, enumeration of all buckets that could contain a
//!   near-duplicate (the analogue of `adj(p)`), and the duplicate
//!   predicate itself;
//! * [`SimHashPartitioner`] — sign-random-projection (SimHash) buckets
//!   for the **angular** metric. The analogue of the `SearchAdj` DFS is
//!   exact here too: a point within angle `theta` of `p` can flip only
//!   the hyperplane bits whose angular margin at `p` is at most `theta`,
//!   so adjacency enumerates sign patterns over the low-margin bits with
//!   early exit;
//! * [`MetricRobustSampler`] — Algorithm 1 re-done over an arbitrary
//!   partitioner.

use crate::checkpoint::{check_level, Checkpointable, RngState};
use crate::error::RdsError;
use crate::infinite::{BatchStats, GroupRecord};
use crate::sampler::{derived_rng, DistinctSampler, SamplerSummary};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;
use rds_geometry::{standard_normal, Point};
use rds_hashing::{level_sampled, splitmix64, KWiseHash};
use rds_stream::StreamItem;

/// A locality-sensitive partition of a metric space: the generalization
/// of the random grid that Algorithm 1 needs.
pub trait LshPartitioner {
    /// Stable 64-bit key of the bucket containing `p`.
    fn bucket_key(&self, p: &Point) -> u64;

    /// The ambient dimension the partitioner expects, when it has a
    /// fixed one (`None` for dimension-agnostic partitioners). Checkpoint
    /// restore uses this to reject states whose stored representatives
    /// cannot belong to this space.
    fn dim(&self) -> Option<usize> {
        None
    }

    /// Visits the key of every bucket that could contain a point of
    /// `p`'s group (including `p`'s own bucket); stops early when `visit`
    /// returns `true` and reports whether it did.
    fn for_each_adjacent_bucket(&self, p: &Point, visit: &mut dyn FnMut(u64) -> bool) -> bool;

    /// Whether two points are near-duplicates (same group).
    fn same_group(&self, a: &Point, b: &Point) -> bool;
}

/// SimHash (sign random projection) partitioner for the angular metric:
/// two unit vectors are near-duplicates when their angle is at most
/// `theta` radians.
///
/// # Examples
///
/// ```
/// use rds_core::{LshPartitioner, SimHashPartitioner};
/// use rds_geometry::Point;
///
/// let part = SimHashPartitioner::try_new(16, 8, 0.05, 3).unwrap();
/// let p = Point::new(vec![1.0; 16]);
/// assert!(part.same_group(&p, &p));
/// let key = part.bucket_key(&p);
/// // own bucket is always adjacent
/// let mut found = false;
/// part.for_each_adjacent_bucket(&p, &mut |k| { found |= k == key; false });
/// assert!(found);
/// ```
#[derive(Clone, Debug)]
pub struct SimHashPartitioner {
    dim: usize,
    theta: f64,
    /// `n_bits` random unit normals, row-major.
    normals: Vec<Point>,
    seed: u64,
}

impl SimHashPartitioner {
    /// Creates a partitioner over `R^dim` with `n_bits` hyperplanes and
    /// group threshold `theta` (radians).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidDimension`] when `dim == 0`;
    /// [`RdsError::InvalidTheta`] unless `0 < theta < pi/8`;
    /// [`RdsError::InvalidBits`] unless `1 <= n_bits <= 24` (more bits
    /// would make the adjacency enumeration explode in the worst case).
    pub fn try_new(dim: usize, n_bits: usize, theta: f64, seed: u64) -> Result<Self, RdsError> {
        if dim == 0 {
            return Err(RdsError::InvalidDimension { dim });
        }
        if !(theta > 0.0 && theta < std::f64::consts::FRAC_PI_8) {
            return Err(RdsError::InvalidTheta { theta });
        }
        if !(1..=24).contains(&n_bits) {
            return Err(RdsError::InvalidBits { n_bits });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let normals = (0..n_bits)
            .map(|_| {
                let v = Point::new((0..dim).map(|_| standard_normal(&mut rng)).collect());
                v.scale(1.0 / v.norm().max(f64::MIN_POSITIVE))
            })
            .collect();
        Ok(Self {
            dim,
            theta,
            normals,
            seed,
        })
    }

    /// The group threshold in radians.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Angle between two vectors.
    fn angle(a: &Point, b: &Point) -> f64 {
        let dot: f64 = a
            .coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| x * y)
            .sum();
        let denom = (a.norm() * b.norm()).max(f64::MIN_POSITIVE);
        (dot / denom).clamp(-1.0, 1.0).acos()
    }

    /// Sign bits and angular margins of `p` against every hyperplane.
    fn signature(&self, p: &Point) -> (u32, Vec<f64>) {
        let norm = p.norm().max(f64::MIN_POSITIVE);
        let mut bits = 0u32;
        let mut margins = Vec::with_capacity(self.normals.len());
        for (i, h) in self.normals.iter().enumerate() {
            let proj: f64 = h
                .coords()
                .iter()
                .zip(p.coords().iter())
                .map(|(x, y)| x * y)
                .sum();
            if proj >= 0.0 {
                bits |= 1 << i;
            }
            // angular distance of p to the hyperplane boundary
            margins.push((proj.abs() / norm).clamp(-1.0, 1.0).asin());
        }
        (bits, margins)
    }

    fn key_of_bits(&self, bits: u32) -> u64 {
        splitmix64(self.seed ^ 0x5161_u64 ^ bits as u64)
    }
}

impl LshPartitioner for SimHashPartitioner {
    fn bucket_key(&self, p: &Point) -> u64 {
        assert_eq!(p.dim(), self.dim, "dimension mismatch");
        let (bits, _) = self.signature(p);
        self.key_of_bits(bits)
    }

    fn dim(&self) -> Option<usize> {
        Some(self.dim)
    }

    /// Exact adjacency for the angular metric: a point `q` with
    /// `angle(p, q) <= theta` can disagree with `p` only on hyperplanes
    /// whose boundary lies within angle `theta` of `p`; enumerate all
    /// sign patterns over that (small) set of flippable bits.
    fn for_each_adjacent_bucket(&self, p: &Point, visit: &mut dyn FnMut(u64) -> bool) -> bool {
        let (bits, margins) = self.signature(p);
        let flippable: Vec<usize> = margins
            .iter()
            .enumerate()
            .filter(|(_, &m)| m <= self.theta)
            .map(|(i, _)| i)
            .collect();
        // enumerate subsets of flippable bits (like SearchAdj's 3^d walk,
        // but over 2^|flippable| patterns), visiting each resulting bucket
        let n = flippable.len();
        debug_assert!(n <= 32);
        for mask in 0..(1u64 << n) {
            let mut b = bits;
            for (j, &bit) in flippable.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    b ^= 1 << bit;
                }
            }
            if visit(self.key_of_bits(b)) {
                return true;
            }
        }
        false
    }

    fn same_group(&self, a: &Point, b: &Point) -> bool {
        Self::angle(a, b) <= self.theta
    }
}

// The partitioner is a deterministic function of (dim, n_bits, theta,
// seed): serialize those four parameters and rebuild the hyperplanes on
// restore. Validation happens before `new` so a corrupt file surfaces as
// a deserialization error, never as one of the constructor's panics.
impl serde::Serialize for SimHashPartitioner {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("n_bits".to_string(), self.normals.len().to_value()),
            ("theta".to_string(), self.theta.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl serde::Deserialize for SimHashPartitioner {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| value.get(name).unwrap_or(&serde::Value::Null);
        let err = |name: &str, e: serde::DeError| {
            serde::DeError::custom(format!("field `{name}`: {e}"))
        };
        let dim = usize::from_value(field("dim")).map_err(|e| err("dim", e))?;
        let n_bits = usize::from_value(field("n_bits")).map_err(|e| err("n_bits", e))?;
        let theta = f64::from_value(field("theta")).map_err(|e| err("theta", e))?;
        let seed = u64::from_value(field("seed")).map_err(|e| err("seed", e))?;
        if dim == 0 {
            return Err(serde::DeError::custom("dimension must be positive"));
        }
        if !(theta > 0.0 && theta < std::f64::consts::FRAC_PI_8) {
            return Err(serde::DeError::custom("theta must be in (0, pi/8)"));
        }
        if !(1..=24).contains(&n_bits) {
            return Err(serde::DeError::custom("n_bits must be in 1..=24"));
        }
        Self::try_new(dim, n_bits, theta, seed).map_err(|e| serde::DeError::custom(e.to_string()))
    }
}

/// What [`MetricRobustSampler::process`] did with a point (mirrors
/// [`crate::ProcessOutcome`]).
pub use crate::infinite::ProcessOutcome as MetricProcessOutcome;

/// Algorithm 1 generalized to any [`LshPartitioner`]: buckets play the
/// role of grid cells, `for_each_adjacent_bucket` plays `adj(p)`.
#[derive(Debug)]
pub struct MetricRobustSampler<P: LshPartitioner> {
    partitioner: P,
    hash: KWiseHash,
    level: u32,
    threshold: usize,
    acc: Vec<MetricGroup>,
    rej: Vec<MetricGroup>,
    rng: StdRng,
    seen: u64,
    seed: u64,
}

/// A tracked group in the metric sampler.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetricGroup {
    /// The group's first point.
    pub rep: Point,
    /// Hash of the representative's bucket.
    pub bucket_hash: u64,
    /// Points observed in the group.
    pub count: u64,
}

impl<P: LshPartitioner> MetricRobustSampler<P> {
    /// Creates the sampler; `threshold` bounds `|Sacc|` as in Algorithm 1
    /// (use `kappa_0 log m`).
    ///
    /// # Errors
    ///
    /// [`RdsError::InvalidThreshold`] when `threshold == 0`.
    pub fn try_new(partitioner: P, threshold: usize, seed: u64) -> Result<Self, RdsError> {
        if threshold == 0 {
            return Err(RdsError::InvalidThreshold);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x004C_5348);
        let hash = KWiseHash::new(16, &mut rng);
        Ok(Self {
            partitioner,
            hash,
            level: 0,
            threshold,
            acc: Vec::new(),
            rej: Vec::new(),
            rng,
            seen: 0,
            seed,
        })
    }

    /// Feeds one point.
    pub fn process(&mut self, p: &Point) -> MetricProcessOutcome {
        self.seen += 1;
        if let Some(g) = self
            .acc
            .iter_mut()
            .chain(self.rej.iter_mut())
            .find(|g| self.partitioner.same_group(&g.rep, p))
        {
            g.count += 1;
            return MetricProcessOutcome::Duplicate;
        }
        let h = self.hash.hash(self.partitioner.bucket_key(p));
        let outcome = if level_sampled(h, self.level) {
            self.acc.push(MetricGroup {
                rep: p.clone(),
                bucket_hash: h,
                count: 1,
            });
            MetricProcessOutcome::Accepted
        } else if self.any_adjacent_sampled(p) {
            self.rej.push(MetricGroup {
                rep: p.clone(),
                bucket_hash: h,
                count: 1,
            });
            MetricProcessOutcome::Rejected
        } else {
            MetricProcessOutcome::Ignored
        };
        while self.acc.len() > self.threshold && self.level < crate::MAX_LEVEL {
            self.double_rate();
        }
        outcome
    }

    fn any_adjacent_sampled(&self, p: &Point) -> bool {
        let hash = &self.hash;
        let level = self.level;
        self.partitioner
            .for_each_adjacent_bucket(p, &mut |key| level_sampled(hash.hash(key), level))
    }

    fn double_rate(&mut self) {
        self.level += 1;
        let level = self.level;
        let mut demoted = Vec::new();
        self.acc.retain_mut(|g| {
            if level_sampled(g.bucket_hash, level) {
                true
            } else {
                demoted.push(g.clone());
                false
            }
        });
        // borrow dance: collect reps first, then test adjacency
        for g in demoted {
            if self.any_adjacent_sampled_at(&g.rep, level) {
                self.rej.push(g);
            }
        }
        let keep: Vec<bool> = self
            .rej
            .iter()
            .map(|g| self.any_adjacent_sampled_at(&g.rep, level))
            .collect();
        let mut idx = 0usize;
        self.rej.retain(|_| {
            let k = keep.get(idx).copied().unwrap_or(false);
            idx += 1;
            k
        });
    }

    fn any_adjacent_sampled_at(&self, p: &Point, level: u32) -> bool {
        let hash = &self.hash;
        self.partitioner
            .for_each_adjacent_bucket(p, &mut |key| level_sampled(hash.hash(key), level))
    }

    /// Draws a uniformly random sampled group's representative.
    pub fn query(&mut self) -> Option<&Point> {
        self.acc.choose(&mut self.rng).map(|g| &g.rep)
    }

    /// The accept set.
    pub fn accept_set(&self) -> &[MetricGroup] {
        &self.acc
    }

    /// The reject set.
    pub fn reject_set(&self) -> &[MetricGroup] {
        &self.rej
    }

    /// Points processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Current rate exponent (`R = 2^level`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The estimate `|Sacc| * R` of the number of distinct groups.
    pub fn f0_estimate(&self) -> f64 {
        self.acc.len() as f64 * 2f64.powi(self.level as i32)
    }

    /// Current footprint in machine words (hash description + tracked
    /// groups).
    pub fn words(&self) -> usize {
        let groups: usize = self
            .acc
            .iter()
            .chain(self.rej.iter())
            .map(|g| g.rep.words() + 2)
            .sum();
        self.hash.words() + groups + 4
    }
}

/// The serializable full state of a [`MetricRobustSampler`]: the
/// partitioner's serialized form (its own `Serialize` impl; for
/// [`SimHashPartitioner`] the four construction parameters), the rate
/// exponent, both candidate sets and the PRNG position. The bucket hash
/// function is a deterministic function of the seed and is rebuilt on
/// restore.
#[derive(Clone, Debug)]
pub struct MetricSamplerState<P> {
    partitioner: P,
    seed: u64,
    threshold: usize,
    level: u32,
    acc: Vec<MetricGroup>,
    rej: Vec<MetricGroup>,
    seen: u64,
    rng: RngState,
}

impl<P> MetricSamplerState<P> {
    /// The partitioner the checkpointed sampler was built around.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Number of items the checkpointed sampler had processed.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

// Manual impls: the vendored derive does not handle generic structs.
impl<P: serde::Serialize> serde::Serialize for MetricSamplerState<P> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("partitioner".to_string(), self.partitioner.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("threshold".to_string(), self.threshold.to_value()),
            ("level".to_string(), self.level.to_value()),
            ("acc".to_string(), self.acc.to_value()),
            ("rej".to_string(), self.rej.to_value()),
            ("seen".to_string(), self.seen.to_value()),
            ("rng".to_string(), self.rng.to_value()),
        ])
    }
}

impl<P: serde::Deserialize> serde::Deserialize for MetricSamplerState<P> {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        fn get<T: serde::Deserialize>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::DeError> {
            T::from_value(value.get(name).unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::custom(format!("field `{name}`: {e}")))
        }
        Ok(Self {
            partitioner: get(value, "partitioner")?,
            seed: get(value, "seed")?,
            threshold: get(value, "threshold")?,
            level: get(value, "level")?,
            acc: get(value, "acc")?,
            rej: get(value, "rej")?,
            seen: get(value, "seen")?,
            rng: get(value, "rng")?,
        })
    }
}

impl<P> Checkpointable for MetricRobustSampler<P>
where
    P: LshPartitioner + Clone + serde::Serialize + serde::Deserialize + Send + 'static,
{
    type State = MetricSamplerState<P>;

    fn checkpoint_state(&self) -> MetricSamplerState<P> {
        MetricSamplerState {
            partitioner: self.partitioner.clone(),
            seed: self.seed,
            threshold: self.threshold,
            level: self.level,
            acc: self.acc.clone(),
            rej: self.rej.clone(),
            seen: self.seen,
            rng: RngState::capture(&self.rng),
        }
    }

    fn try_from_state(state: MetricSamplerState<P>) -> Result<Self, RdsError> {
        check_level(state.level)?;
        // Every stored representative must live in the partitioner's
        // space: against the partitioner's dimension when it declares one
        // ([`LshPartitioner::dim`]), and at minimum consistently with
        // each other — otherwise the restored sampler's distance/bucket
        // computations would panic (debug) or silently truncate over the
        // shorter vector (wrong groups, wrong estimates).
        let mut dims = state
            .acc
            .iter()
            .chain(state.rej.iter())
            .map(|g| g.rep.dim());
        let reference = state.partitioner.dim().or_else(|| dims.next());
        if let Some(d0) = reference {
            if dims.any(|d| d != d0) {
                return Err(crate::checkpoint::checkpoint_err(format!(
                    "metric sampler state holds representatives outside the \
                     partitioner's dimension-{d0} space"
                )));
            }
        }
        // `try_new` rebuilds the bucket hash deterministically from the
        // seed; the RNG position is then overwritten with the captured
        // one.
        let mut s = Self::try_new(state.partitioner, state.threshold, state.seed)?;
        s.level = state.level;
        s.acc = state.acc;
        s.rej = state.rej;
        s.seen = state.seen;
        s.rng = state.rng.restore();
        Ok(s)
    }
}

/// The [`crate::SamplerSummary`] of the metric sampler: carries a clone
/// of the partitioner and the shared hash so summaries merge
/// self-sufficiently (refilter by cached bucket hash, deduplicate by the
/// partitioner's `same_group` predicate).
#[derive(Clone, Debug)]
pub struct MetricSummary<P: LshPartitioner> {
    partitioner: P,
    hash: KWiseHash,
    level: u32,
    acc: Vec<MetricGroup>,
    rej: Vec<MetricGroup>,
    seed: u64,
}

impl<P: LshPartitioner> MetricSummary<P> {
    /// The merged accept set.
    pub fn accept_set(&self) -> &[MetricGroup] {
        &self.acc
    }

    /// The common rate exponent.
    pub fn level(&self) -> u32 {
        self.level
    }

    fn rng_for(&self, draw: u64) -> StdRng {
        derived_rng(self.seed, draw, 0x4C53_D157)
    }

    fn any_adjacent_sampled(&self, p: &Point, level: u32) -> bool {
        let hash = &self.hash;
        self.partitioner
            .for_each_adjacent_bucket(p, &mut |key| level_sampled(hash.hash(key), level))
    }

    /// Places one group into the merged sets, deduplicating against
    /// groups already absorbed (the metric analogue of the grid merge).
    fn absorb(
        &self,
        g: &MetricGroup,
        own_bucket_sampled: bool,
        level: u32,
        acc: &mut Vec<MetricGroup>,
        rej: &mut Vec<MetricGroup>,
    ) {
        if let Some(existing) = acc
            .iter_mut()
            .find(|e| self.partitioner.same_group(&e.rep, &g.rep))
        {
            existing.count += g.count;
            return;
        }
        if let Some(pos) = rej
            .iter()
            .position(|e| self.partitioner.same_group(&e.rep, &g.rep))
        {
            if own_bucket_sampled {
                let mut combined = g.clone();
                combined.count += rej.remove(pos).count;
                acc.push(combined);
            } else {
                rej[pos].count += g.count;
            }
            return;
        }
        if own_bucket_sampled {
            acc.push(g.clone());
        } else if self.any_adjacent_sampled(&g.rep, level) {
            rej.push(g.clone());
        }
    }
}

fn metric_record(g: &MetricGroup) -> GroupRecord {
    GroupRecord {
        rep: g.rep.clone(),
        cell_hash: g.bucket_hash,
        count: g.count,
        reservoir: g.rep.clone(),
    }
}

impl<P: LshPartitioner + Clone> SamplerSummary for MetricSummary<P> {
    fn merge(self, other: Self) -> Result<Self, RdsError> {
        // lint:allow(L1) merge_many of a two-element vec always returns
        // Some; config-mismatch errors propagate through the `?`
        Ok(Self::merge_many(vec![self, other])?.expect("two summaries merged"))
    }

    /// Single-pass N-way merge: one deduplication sweep over all groups —
    /// the engine's query path, deliberately not the quadratic pairwise
    /// fold (the pairwise merge re-absorbs the accumulated state).
    fn merge_many(summaries: Vec<Self>) -> Result<Option<Self>, RdsError> {
        let Some(expected_seed) = summaries.first().map(|s| s.seed) else {
            return Ok(None);
        };
        if let Some(bad) = summaries.iter().find(|s| s.seed != expected_seed) {
            return Err(RdsError::ConfigMismatch {
                expected_seed,
                actual_seed: bad.seed,
            });
        }
        if summaries.len() == 1 {
            return Ok(summaries.into_iter().next());
        }
        let level = summaries.iter().map(|s| s.level).max().unwrap_or(0);
        let Some(first) = summaries.first() else {
            // unreachable: the empty case returned None above
            return Ok(None);
        };
        let mut acc = Vec::new();
        let mut rej = Vec::new();
        for summary in &summaries {
            for g in &summary.acc {
                let sampled = level_sampled(g.bucket_hash, level);
                first.absorb(g, sampled, level, &mut acc, &mut rej);
            }
            for g in &summary.rej {
                first.absorb(g, false, level, &mut acc, &mut rej);
            }
        }
        Ok(Some(Self {
            partitioner: first.partitioner.clone(),
            hash: first.hash.clone(),
            level,
            acc,
            rej,
            seed: expected_seed,
        }))
    }

    fn f0_estimate(&self) -> f64 {
        self.acc.len() as f64 * 2f64.powi(self.level as i32)
    }

    fn query_record(&self, draw: u64) -> Option<GroupRecord> {
        let mut rng = self.rng_for(draw);
        self.acc.choose(&mut rng).map(metric_record)
    }

    fn query_k(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        let mut rng = self.rng_for(draw);
        let mut idx: Vec<usize> = (0..self.acc.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(k);
        idx.into_iter().map(|i| metric_record(&self.acc[i])).collect()
    }
}

impl<P: LshPartitioner + Clone> DistinctSampler for MetricRobustSampler<P> {
    type Summary = MetricSummary<P>;

    /// Feeds the item's point; the stamp is ignored (infinite window).
    fn process(&mut self, item: &StreamItem) -> MetricProcessOutcome {
        MetricRobustSampler::process(self, &item.point)
    }

    fn process_batch(&mut self, items: &[StreamItem]) -> BatchStats {
        let mut stats = BatchStats::default();
        for item in items {
            stats.record(MetricRobustSampler::process(self, &item.point));
        }
        stats
    }

    fn query_record(&mut self) -> Option<GroupRecord> {
        self.acc.choose(&mut self.rng).map(metric_record)
    }

    fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        let mut idx: Vec<usize> = (0..self.acc.len()).collect();
        idx.shuffle(&mut self.rng);
        idx.truncate(k);
        idx.into_iter().map(|i| metric_record(&self.acc[i])).collect()
    }

    fn f0_estimate(&self) -> f64 {
        MetricRobustSampler::f0_estimate(self)
    }

    fn seen(&self) -> u64 {
        MetricRobustSampler::seen(self)
    }

    fn words(&self) -> usize {
        MetricRobustSampler::words(self)
    }

    fn summary(&self) -> MetricSummary<P> {
        MetricSummary {
            partitioner: self.partitioner.clone(),
            hash: self.hash.clone(),
            level: self.level,
            acc: self.acc.clone(),
            rej: self.rej.clone(),
            seed: self.seed,
        }
    }

    fn into_summary(self) -> MetricSummary<P> {
        MetricSummary {
            partitioner: self.partitioner,
            hash: self.hash,
            level: self.level,
            acc: self.acc,
            rej: self.rej,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Unit vectors clustered around well-separated directions.
    fn angular_stream(
        n_groups: usize,
        per_group: usize,
        dim: usize,
        jitter: f64,
        seed: u64,
    ) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point> = (0..n_groups)
            .map(|_| {
                let v = Point::new((0..dim).map(|_| standard_normal(&mut rng)).collect());
                v.scale(1.0 / v.norm())
            })
            .collect();
        let mut out = Vec::new();
        for (g, c) in centers.iter().enumerate() {
            for _ in 0..per_group {
                let noise = Point::new(
                    (0..dim)
                        .map(|_| standard_normal(&mut rng) * jitter)
                        .collect(),
                );
                let v = c.add(&noise);
                out.push((v.scale(1.0 / v.norm()), g));
            }
        }
        for i in (1..out.len()).rev() {
            let j = rng.random_range(0..=i);
            out.swap(i, j);
        }
        out
    }

    #[test]
    fn identical_vectors_share_bucket() {
        let part = SimHashPartitioner::try_new(8, 12, 0.05, 1).unwrap();
        let p = Point::new(vec![0.5; 8]);
        assert_eq!(part.bucket_key(&p), part.bucket_key(&p));
        assert!(part.same_group(&p, &p.scale(3.0)), "angle 0 regardless of norm");
    }

    #[test]
    fn opposite_vectors_are_different_groups() {
        let part = SimHashPartitioner::try_new(4, 8, 0.1, 2).unwrap();
        let p = Point::new(vec![1.0, 0.0, 0.0, 0.0]);
        assert!(!part.same_group(&p, &p.scale(-1.0)));
    }

    #[test]
    fn near_duplicates_bucket_is_adjacent() {
        // any q within theta of p must land in a bucket enumerated by
        // for_each_adjacent_bucket(p) — the exactness property the grid
        // version has via SearchAdj
        let dim = 16;
        let theta = 0.05;
        let part = SimHashPartitioner::try_new(dim, 12, theta, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let p = Point::new((0..dim).map(|_| standard_normal(&mut rng)).collect());
            let p = p.scale(1.0 / p.norm());
            // random perturbation inside the theta-cone
            let noise = Point::new(
                (0..dim)
                    .map(|_| standard_normal(&mut rng) * theta / (3.0 * (dim as f64).sqrt()))
                    .collect(),
            );
            let q = p.add(&noise);
            let q = q.scale(1.0 / q.norm());
            if !part.same_group(&p, &q) {
                continue; // perturbation overshot the cone
            }
            let qk = part.bucket_key(&q);
            let mut found = false;
            part.for_each_adjacent_bucket(&p, &mut |k| {
                found |= k == qk;
                found
            });
            assert!(found, "near-duplicate bucket missed by adjacency");
        }
    }

    #[test]
    fn metric_sampler_tracks_groups_once() {
        let stream = angular_stream(15, 8, 24, 0.003, 5);
        let part = SimHashPartitioner::try_new(24, 12, 0.05, 6).unwrap();
        let mut s = MetricRobustSampler::try_new(part, 64, 7).unwrap();
        for (p, _) in &stream {
            s.process(p);
        }
        assert_eq!(s.accept_set().len() + s.reject_set().len(), 15);
        assert!(s.query().is_some());
        // counts cover the stream
        let total: u64 = s
            .accept_set()
            .iter()
            .chain(s.reject_set().iter())
            .map(|g| g.count)
            .sum();
        assert_eq!(total, stream.len() as u64);
    }

    #[test]
    fn metric_sampler_subsamples_under_tight_threshold() {
        let stream = angular_stream(60, 3, 24, 0.002, 8);
        let part = SimHashPartitioner::try_new(24, 14, 0.04, 9).unwrap();
        let mut s = MetricRobustSampler::try_new(part, 8, 10).unwrap();
        for (p, _) in &stream {
            s.process(p);
        }
        assert!(s.accept_set().len() <= 8);
        assert!(!s.accept_set().is_empty());
    }

    #[test]
    fn metric_sampling_is_roughly_uniform() {
        let stream = angular_stream(12, 6, 16, 0.003, 11);
        let mut hist = rds_metrics::SampleHistogram::new(12);
        // With a threshold this small the "Sacc never empties" guarantee
        // (Lemma 2.5) only holds with probability 1 - 2^-threshold per
        // doubling; tolerate the occasional empty accept set.
        let mut misses = 0u32;
        for run in 0..400u64 {
            let part = SimHashPartitioner::try_new(16, 12, 0.05, run * 13 + 1).unwrap();
            let mut s = MetricRobustSampler::try_new(part, 6, run * 17 + 3).unwrap();
            for (p, _) in &stream {
                s.process(p);
            }
            let Some(q) = s.query().cloned() else {
                misses += 1;
                continue;
            };
            let g = stream
                .iter()
                .find(|(p, _)| *p == q)
                .map(|(_, g)| *g)
                .expect("from stream");
            hist.record(g);
        }
        assert!(misses < 30, "accept set emptied {misses}/400 times");
        assert!(
            hist.std_dev_nm() < 0.6,
            "angular sampling biased: {:?}",
            hist.counts()
        );
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(matches!(
            SimHashPartitioner::try_new(4, 30, 0.05, 1),
            Err(RdsError::InvalidBits { n_bits: 30 })
        ));
        assert!(matches!(
            SimHashPartitioner::try_new(0, 8, 0.05, 1),
            Err(RdsError::InvalidDimension { dim: 0 })
        ));
        assert!(matches!(
            SimHashPartitioner::try_new(4, 8, 1.0, 1),
            Err(RdsError::InvalidTheta { .. })
        ));
    }

    #[test]
    fn restore_rejects_mixed_dimension_representatives() {
        // Regression: a corrupted state whose candidate sets mix
        // dimensions used to restore Ok and silently truncate every
        // subsequent angle/bucket computation.
        use crate::checkpoint::Checkpointable;
        let part = SimHashPartitioner::try_new(4, 8, 0.05, 1).unwrap();
        let mut s = MetricRobustSampler::try_new(part, 8, 2).unwrap();
        s.process(&Point::new(vec![1.0, 0.0, 0.0, 0.0]));
        s.process(&Point::new(vec![0.0, 1.0, 0.0, 0.0]));
        let mut state = s.checkpoint_state();
        state.acc.push(MetricGroup {
            rep: Point::new(vec![1.0, 2.0]), // wrong dimension
            bucket_hash: 7,
            count: 1,
        });
        assert!(matches!(
            MetricRobustSampler::<SimHashPartitioner>::try_from_state(state),
            Err(RdsError::Checkpoint { .. })
        ));
    }

    #[test]
    fn restore_rejects_representatives_outside_the_partitioner_space() {
        // Regression: representatives that are *mutually* consistent but
        // disagree with the partitioner's own dimension used to restore
        // Ok and then panic (debug) or silently truncate (release).
        use crate::checkpoint::Checkpointable;
        let mut donor = MetricRobustSampler::try_new(
            SimHashPartitioner::try_new(2, 8, 0.05, 3).unwrap(),
            8,
            4,
        )
        .unwrap();
        donor.process(&Point::new(vec![1.0, 0.0]));
        donor.process(&Point::new(vec![0.0, 1.0]));
        let mut state = donor.checkpoint_state();
        // swap in a dim-4 partitioner: every dim-2 rep is now foreign
        state.partitioner = SimHashPartitioner::try_new(4, 8, 0.05, 3).unwrap();
        assert!(matches!(
            MetricRobustSampler::<SimHashPartitioner>::try_from_state(state),
            Err(RdsError::Checkpoint { .. })
        ));
    }
}
