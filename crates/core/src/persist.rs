//! The blessed atomic-write helper: every durable write in the workspace
//! goes through [`write_atomic`] (rds-lint rule L2 rejects raw
//! `std::fs::write`/`File::create` anywhere else).
//!
//! The commit protocol is write-to-sibling-temp-then-rename: a crash or
//! full disk mid-write leaves any previous file at `path` intact — the
//! one moment a durability subsystem must not destroy its own prior
//! state is while persisting the next one. The temp name embeds the
//! process id so concurrent writers of *different* checkpoints never
//! collide on the temp file (last rename still wins the final path, as
//! with any shared file).

use std::io;
use std::path::{Path, PathBuf};

/// Atomically replaces `path` with `bytes`.
///
/// Writes a sibling temp file (`<path>.tmp-<pid>`) and renames it over
/// `path`. On any error the temp file is removed and `path` is left as
/// it was.
///
/// # Errors
///
/// Propagates the underlying I/O error from the write or the rename.
pub fn write_atomic(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    // lint:allow(L2) this module IS the blessed helper; the raw write
    // lands on the temp sibling, never the destination
    std::fs::write(&tmp, bytes.as_ref())?;
    // lint:allow(L2) the rename is the atomic commit of the protocol
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rds-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("state.json");
        write_atomic(&path, b"one").expect("first write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"one");
        write_atomic(&path, b"two").expect("second write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let dir = tmp_dir("clean");
        let path = dir.join("state.json");
        write_atomic(&path, b"payload").expect("write");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["state.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_commit_preserves_previous_file() {
        let dir = tmp_dir("preserve");
        let path = dir.join("state.json");
        write_atomic(&path, b"good").expect("write");
        // a directory at the destination makes the rename fail on Linux
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(&blocked).expect("create blocker");
        assert!(write_atomic(&blocked, b"clobber").is_err());
        assert_eq!(std::fs::read(&path).expect("read back"), b"good");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
