//! Robust distinct sampling on streams with near-duplicates.
//!
//! Implementation of Chen & Zhang, *"Distinct Sampling on Streaming Data
//! with Near-Duplicates"* (PODS 2018).

#![warn(missing_docs)]

mod checkpoint;
mod config;
mod distributed;
mod error;
mod heavy;
mod infinite;
mod sampler;
mod store;
mod sw_fixed;
mod f0;
mod jl_adapter;
mod ksample;
mod lsh;
pub mod persist;
mod sw_hier;

pub use checkpoint::{Checkpointable, RngState};
pub use config::{SamplerConfig, SamplerConfigBuilder, SamplerContext, MAX_LEVEL};
pub use distributed::{DistributedSampling, MergedSummary, SiteSummary};
pub use error::RdsError;
pub use heavy::{HeavyGroup, RobustHeavyHitters};
pub use infinite::{BatchStats, GroupRecord, ProcessOutcome, RobustL0Sampler, RobustL0State};
pub use sampler::{DistinctSampler, SamplerSummary, WindowSummary};
pub use store::CandidateStore;
pub use sw_fixed::{
    FixedRateLevelState, FixedRateWindowSampler, FixedRateWindowState, WindowGroupEntry,
};
pub use f0::{RobustF0Estimator, SlidingWindowF0, DEFAULT_KAPPA_B, FM_PHI};
pub use jl_adapter::{JlRobustSampler, JlSamplerState, JlSummary};
pub use ksample::{
    KDistinctSampler, KDistinctState, KWithReplacementSampler, KWithReplacementState,
};
pub use lsh::{
    LshPartitioner, MetricGroup, MetricRobustSampler, MetricSamplerState, MetricSummary,
    SimHashPartitioner,
};
pub use sw_hier::{GroupSample, SlidingWindowSampler, SlidingWindowState};
