//! Fixture-driven integration tests: every rule gets at least one true
//! positive and one false-positive guard, the allow comment gets its
//! full matrix, and the lexer edge cases prove strings/comments/test
//! regions never leak findings.

use rds_lint::{check_file, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Scans a fixture as if it lived at `path` in the workspace.
fn scan_as(name: &str, path: &str) -> Vec<Finding> {
    check_file(path, &fixture(name))
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

const CORE_PATH: &str = "crates/core/src/fixture_under_test.rs";

#[test]
fn l1_flags_panicking_constructs_and_spares_the_guards() {
    let f = scan_as("l1_cases.rs", CORE_PATH);
    assert_eq!(
        lines_of(&f, "L1"),
        vec![5, 9, 13, 19, 24],
        "unwrap/expect/panic!/unreachable!/xs[0]: {f:?}"
    );
    // nothing else fires: the .get(0), the pattern, the array type and
    // the whole #[cfg(test)] mod are guards
    assert_eq!(f.len(), 5, "{f:?}");
}

#[test]
fn l1_is_scoped_to_core_engine_and_facade() {
    // same content in a non-serving crate or a test tree: silent
    assert!(scan_as("l1_cases.rs", "crates/hashing/src/lib.rs").is_empty());
    assert!(scan_as("l1_cases.rs", "tests/integration.rs").is_empty());
    assert!(scan_as("l1_cases.rs", "crates/core/benches/speed.rs").is_empty());
    // ... but the engine and the umbrella facade are serving paths
    assert_eq!(lines_of(&scan_as("l1_cases.rs", "crates/engine/src/lib.rs"), "L1").len(), 5);
    assert_eq!(lines_of(&scan_as("l1_cases.rs", "src/facade.rs"), "L1").len(), 5);
}

#[test]
fn allow_comments_suppress_bind_and_misfire_exactly_as_specified() {
    let f = scan_as("l1_allow_cases.rs", CORE_PATH);
    // trailing, standalone and multi-line-standalone allows suppress
    // their target; the empty-justification and unknown-rule allows are
    // themselves L0 findings AND leave the violation standing; an allow
    // for the wrong rule suppresses nothing
    assert_eq!(lines_of(&f, "L0"), vec![20, 25], "{f:?}");
    assert_eq!(lines_of(&f, "L1"), vec![21, 26, 31], "{f:?}");
    assert_eq!(f.len(), 5, "{f:?}");
}

#[test]
fn l2_flags_raw_writes_everywhere_but_the_blessed_module() {
    let f = scan_as("l2_cases.rs", CORE_PATH);
    assert_eq!(lines_of(&f, "L2"), vec![7, 11, 15, 19], "{f:?}");
    // the CLI is in scope for L2 even though it is exempt from L1
    assert_eq!(lines_of(&scan_as("l2_cases.rs", "crates/cli/src/lib.rs"), "L2").len(), 4);
    // the blessed atomic-write helper is the one file allowed to do this
    assert!(scan_as("l2_cases.rs", "crates/core/src/persist.rs").is_empty());
}

#[test]
fn l3_flags_ambient_time_and_entropy() {
    let f = scan_as("l3_cases.rs", CORE_PATH);
    assert_eq!(lines_of(&f, "L3"), vec![6, 10, 14, 19], "{f:?}");
    // seeded RNGs, our own clock type and test timing are guards
    assert_eq!(f.len(), 4, "{f:?}");
}

#[test]
fn l4_requires_a_fallible_sibling_and_a_panic_free_body() {
    let missing = scan_as("l4_missing_sibling.rs", CORE_PATH);
    assert_eq!(lines_of(&missing, "L4"), vec![8], "{missing:?}");

    let with = scan_as("l4_with_sibling.rs", CORE_PATH);
    // the sibling exists, so only the assert! in the body fires; the
    // panic-free delegating new is a guard
    assert_eq!(lines_of(&with, "L4"), vec![10], "{with:?}");

    // L4 is a core-only contract
    assert!(scan_as("l4_missing_sibling.rs", "crates/engine/src/lib.rs").is_empty());
}

#[test]
fn l5_flags_literal_construction_but_not_patterns() {
    let f = scan_as("l5_cases.rs", CORE_PATH);
    assert_eq!(lines_of(&f, "L5"), vec![5, 9], "{f:?}");
    assert_eq!(f.len(), 2, "matches!/match-arm/if-let are guards: {f:?}");
    // the error module itself defines RdsError::checkpoint() and is blessed
    assert!(scan_as("l5_cases.rs", "crates/core/src/error.rs").is_empty());
}

#[test]
fn l6_flags_locks_in_frozen_impls_and_the_publication_path() {
    let f = scan_as("l6_cases.rs", CORE_PATH);
    // 11/25/26: locks inside frozen reader impls; 52/53: locks inside
    // impl SnapshotCell; 59/65/74: full-summary clones inside
    // SnapshotCell, fn freeze and RdsWriter::publish
    assert_eq!(lines_of(&f, "L6"), vec![11, 25, 26, 52, 53, 59, 65, 74], "{f:?}");
    // guards: WriterCell::publish locks freely (not RdsWriter), and
    // summary clones outside the publication path never fire
    assert_eq!(f.len(), 8, "{f:?}");
}

#[test]
fn l7_flags_narrowing_casts_of_protected_names_only() {
    let f = scan_as("l7_cases.rs", CORE_PATH);
    assert_eq!(lines_of(&f, "L7"), vec![4, 8, 12, 16], "{f:?}");
    // widening, float conversion and unprotected names are guards
    assert_eq!(f.len(), 4, "{f:?}");
}

#[test]
fn l8_flags_panicking_constructs_on_the_server_request_path() {
    let f = scan_as("l8_cases.rs", "crates/server/src/handlers/ingest.rs");
    assert_eq!(lines_of(&f, "L8"), vec![5, 9, 13, 17], "{f:?}");
    // the allow comment, the .get() spelling and the test mod are guards
    assert_eq!(f.len(), 4, "{f:?}");
    // the remedy clause names the envelope contract, not RdsError
    assert!(
        f.iter()
            .filter(|x| x.line != 17) // the indexing message is rule-neutral
            .all(|x| x.message.contains("4xx error envelope")),
        "{f:?}"
    );
}

#[test]
fn l8_is_scoped_to_the_server_crate_and_l1_stays_off_it() {
    // the same content elsewhere is L1 territory (or silent), never L8
    assert!(lines_of(&scan_as("l8_cases.rs", CORE_PATH), "L8").is_empty());
    assert!(scan_as("l8_cases.rs", "crates/hashing/src/lib.rs").is_empty());
    // server test trees and the http robustness suite may panic freely
    assert!(scan_as("l8_cases.rs", "crates/server/tests/http_robustness.rs").is_empty());
    // L1 does not double-report the server crate
    let server = scan_as("l1_cases.rs", "crates/server/src/http.rs");
    assert!(lines_of(&server, "L1").is_empty(), "{server:?}");
    assert_eq!(lines_of(&server, "L8").len(), 5, "{server:?}");
}

#[test]
fn l9_flags_spill_io_under_registry_wide_guards_and_tenant_panics() {
    let f = scan_as("l9_cases.rs", "crates/tenant/src/registry.rs");
    // 7: write_container under the map guard; 13: spill_slot under the
    // ring guard; 42: .unwrap() on the tenant path. Guards: I/O after
    // drop(guard), outside a scoped temporary, under a per-tenant slot
    // lock, after the guard's block closes, the allow'd expect and the
    // test mod.
    assert_eq!(lines_of(&f, "L9"), vec![7, 13, 42], "{f:?}");
    assert_eq!(f.len(), 3, "{f:?}");
    // the lock-discipline message names the remedy
    assert!(
        f.iter()
            .filter(|x| x.line != 42)
            .all(|x| x.message.contains("drop the guard")),
        "{f:?}"
    );
}

#[test]
fn l9_is_scoped_to_the_tenant_crate() {
    // the same content in core is L1 territory (the two panics), never L9
    let core = scan_as("l9_cases.rs", CORE_PATH);
    assert!(lines_of(&core, "L9").is_empty(), "{core:?}");
    assert_eq!(lines_of(&core, "L1"), vec![42, 47], "{core:?}");
    // tenant test trees and unrelated crates stay silent
    assert!(scan_as("l9_cases.rs", "crates/tenant/tests/registry.rs").is_empty());
    assert!(scan_as("l9_cases.rs", "crates/hashing/src/lib.rs").is_empty());
    // L1/L8 do not double-report the tenant crate
    let tenant = scan_as("l1_cases.rs", "crates/tenant/src/registry.rs");
    assert!(lines_of(&tenant, "L1").is_empty(), "{tenant:?}");
    assert!(lines_of(&tenant, "L8").is_empty(), "{tenant:?}");
    assert_eq!(lines_of(&tenant, "L9").len(), 5, "{tenant:?}");
}

#[test]
fn l10_flags_maps_and_allocation_in_hot_path_fns_only() {
    let f = scan_as("l10_cases.rs", CORE_PATH);
    // 5/6: std maps; 7: Vec::new; 8: vec!; 13: format!; 14: .collect();
    // 20: Box::new; 21: .to_vec(). Guards: the p.clone() on the hot
    // path, the allocating process_batch_keyed and double_rate bodies
    // (cold/amortized paths, not in the scanned name set) and the test
    // mod.
    assert_eq!(lines_of(&f, "L10"), vec![5, 6, 7, 8, 13, 14, 20, 21], "{f:?}");
    assert_eq!(f.len(), 8, "{f:?}");
    // the map message names the blessed index, the allocation messages
    // name the remedy
    assert!(
        f.iter().all(|x| {
            x.message.contains("CandidateStore") || x.message.contains("the sampler")
        }),
        "{f:?}"
    );
}

#[test]
fn l10_is_scoped_to_core_library_code() {
    // the same content outside rds-core, or in any test tree, is silent
    assert!(lines_of(&scan_as("l10_cases.rs", "crates/engine/src/lib.rs"), "L10").is_empty());
    assert!(scan_as("l10_cases.rs", "crates/hashing/src/lib.rs").is_empty());
    assert!(scan_as("l10_cases.rs", "crates/core/tests/hot_path.rs").is_empty());
    assert!(scan_as("l10_cases.rs", "crates/core/benches/speed.rs").is_empty());
}

#[test]
fn l2_covers_the_tenant_crate() {
    // raw writes in the tenant crate would bypass the atomic helper the
    // spill containers depend on
    assert_eq!(
        lines_of(&scan_as("l2_cases.rs", "crates/tenant/src/spill.rs"), "L2").len(),
        4
    );
}

#[test]
fn l2_covers_the_server_crate() {
    // a server handler writing raw files would bypass the atomic helper
    assert_eq!(
        lines_of(&scan_as("l2_cases.rs", "crates/server/src/handlers/admin.rs"), "L2").len(),
        4
    );
}

#[test]
fn lexer_edges_hide_everything_except_the_live_violation() {
    let f = scan_as("lexer_edges.rs", CORE_PATH);
    // raw/nested-raw/byte strings, block comments, lifetimes, char
    // literals, raw identifiers and the test mod all stay silent; the
    // unwrap under the multi-line attribute is the one real finding
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "L1");
    assert_eq!(f[0].line, 54);
}

#[test]
fn fixture_paths_are_exempt_wholesale() {
    // the fixtures directory itself is never scanned as library code
    for name in [
        "l1_cases.rs",
        "l2_cases.rs",
        "l3_cases.rs",
        "l5_cases.rs",
        "l7_cases.rs",
        "l9_cases.rs",
        "l10_cases.rs",
    ] {
        let path = format!("crates/lint/tests/fixtures/{name}");
        assert!(scan_as(name, &path).is_empty(), "{name} leaked findings");
    }
}

#[test]
fn findings_render_as_file_line_col_diagnostics() {
    let f = scan_as("l1_cases.rs", CORE_PATH);
    let text = rds_lint::report::render_text(&f);
    assert!(
        text.lines().next().unwrap_or_default().starts_with("crates/core/src/fixture_under_test.rs:5:"),
        "{text}"
    );
    let json = rds_lint::report::render_json("/root/repo", 1, &f);
    assert!(json.contains("\"finding_count\": 5"), "{json}");
}
