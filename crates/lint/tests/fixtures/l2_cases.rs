// L2 fixture: raw filesystem writes outside the blessed atomic helper.

use std::fs::File;
use std::path::Path;

pub fn bad_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn bad_create(path: &Path) -> std::io::Result<File> {
    File::create(path)
}

pub fn bad_rename(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::rename(from, to)
}

pub fn bad_open_options(path: &Path) -> std::io::Result<File> {
    std::fs::OpenOptions::new().write(true).open(path)
}

// guard: reading is unrestricted
pub fn good_read(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

// guard: a local identifier merely named `write` is not a filesystem call
pub fn good_local_write(out: &mut String, s: &str) {
    out.push_str(s);
    let write = s.len();
    let _ = write;
}

#[cfg(test)]
mod tests {
    // guard: tests may scribble on disk directly
    #[test]
    fn tests_write_freely() {
        std::fs::write("/tmp/x", b"ok").unwrap();
    }
}
