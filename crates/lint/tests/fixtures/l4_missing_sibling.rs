// L4 fixture: a pub fn new with no try_new/builder sibling in the file.

pub struct Widget {
    size: usize,
}

impl Widget {
    pub fn new(size: usize) -> Self {
        Self { size }
    }

    pub fn size(&self) -> usize {
        self.size
    }
}
