// L1 fixture: panicking constructs in library code, plus the guards that
// must NOT fire.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_unreachable(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn bad_index(xs: &[u32]) -> u32 {
    xs[0]
}

// guard: .get() is the sanctioned spelling
pub fn good_get(xs: &[u32]) -> Option<&u32> {
    xs.get(0)
}

// guard: a tuple-struct pattern `Some(0)` is not indexing
pub fn good_pattern(v: Option<u32>) -> bool {
    matches!(v, Some(0))
}

// guard: array type and array literal are not indexing
pub struct Buf {
    pub words: [u64; 4],
}

#[cfg(test)]
mod tests {
    // guard: test regions may panic freely
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let xs = [1u32];
        assert_eq!(xs[0], 1);
        panic!("even this");
    }
}
