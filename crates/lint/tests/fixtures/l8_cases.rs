// L8 fixture: panicking constructs on the rds-server request path, plus
// the guards that must NOT fire.

pub fn bad_unwrap(body: Option<String>) -> String {
    body.unwrap()
}

pub fn bad_expect(header: Option<u64>) -> u64 {
    header.expect("content-length present")
}

pub fn bad_panic(route: &str) {
    panic!("no handler for {route}");
}

pub fn bad_index(parts: &[&str]) -> &str {
    parts[0]
}

// guard: a documented invariant is allowed through the escape hatch
pub fn allowed_unwrap(status: Option<u16>) -> u16 {
    status.unwrap() // lint:allow(L8) set unconditionally two lines above
}

// guard: .get() + error mapping is the sanctioned spelling
pub fn good_get(parts: &[&str]) -> Option<&str> {
    parts.get(0).copied()
}

#[cfg(test)]
mod tests {
    // guard: test regions may panic freely
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        panic!("even this");
    }
}
