//! L9 fixture: spill/restore I/O under registry-wide lock guards, and
//! the panic-free tenant serving path. Lines are load-bearing.

fn io_under_a_map_guard(&self) {
    let mut map = self.map.lock();
    map.insert(id, entry);
    write_container(&self.spill_dir, id, &json);
}

fn io_under_a_ring_guard(&self) {
    let ring = self.ring.lock();
    let victim = ring.front();
    self.spill_slot(&victim, &mut slot);
}

fn io_after_the_guard_drops(&self) {
    let mut ring = self.ring.lock();
    let cand = ring.pop_front();
    drop(ring);
    write_container(&self.spill_dir, &cand.id, &json);
}

fn io_outside_a_scoped_temporary(&self) {
    let cand = { self.ring.lock().pop_front() };
    read_container(&self.spill_dir, &cand.id);
}

fn io_under_a_slot_guard_is_fine(&self, entry: &TenantEntry) {
    let mut slot = entry.slot.lock();
    write_container(&self.spill_dir, &entry.id, &json);
}

fn guard_dies_with_its_block(&self) {
    {
        let map = self.map.lock();
        let n = map.len();
    }
    ensure_resident(&entry, &mut slot);
}

fn panics_on_the_tenant_path(x: Option<u64>) -> u64 {
    x.unwrap()
}

fn documented_invariant(x: Option<u64>) -> u64 {
    // lint:allow(L9) infallible by construction: x is Some on this path
    x.expect("infallible")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_lock_and_panic_freely() {
        let map = self.map.lock();
        write_container(&dir, "x", "y").unwrap();
    }
}
