// L6 fixture: lock acquisition inside frozen reader impls.

use std::sync::{Mutex, RwLock};

pub struct Snapshot {
    cell: Mutex<u64>,
}

impl Snapshot {
    pub fn bad_read(&self) -> u64 {
        let guard = self.cell.lock();
        match guard {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }
}

pub struct MergedSummary {
    inner: RwLock<Vec<u64>>,
}

impl MergedSummary {
    pub fn bad_len(&self) -> usize {
        let lock: &RwLock<Vec<u64>> = &self.inner;
        match lock.read() {
            Ok(v) => v.len(),
            Err(_) => 0,
        }
    }
}

// guard: the writer side may lock all it wants (not RdsWriter)
pub struct WriterCell {
    cell: Mutex<u64>,
}

impl WriterCell {
    pub fn publish(&self, v: u64) {
        if let Ok(mut g) = self.cell.lock() {
            *g = v;
        }
    }
}

// publication path: the lock-free cell, freeze, and RdsWriter::publish
pub struct SnapshotCell {
    slot: u64,
}

impl SnapshotCell {
    pub fn bad_load(&self, lock: &RwLock<u64>) -> u64 {
        match lock.read() {
            Ok(v) => *v,
            Err(_) => self.slot,
        }
    }
    pub fn bad_store(&mut self, summary: &MergedSummary) {
        let _deep = summary.clone();
        self.slot += 1;
    }
}

pub fn freeze(window_summary: &MergedSummary) -> MergedSummary {
    window_summary.clone()
}

pub struct RdsWriter {
    current: MergedSummary,
}

impl RdsWriter {
    pub fn publish(&mut self) -> MergedSummary {
        self.summary().clone()
    }
    fn summary(&self) -> &MergedSummary {
        &self.current
    }
    // guard: clones outside `publish` are not publication
    pub fn checkpoint_copy(&self) -> MergedSummary {
        self.summary().clone()
    }
}

// guard: summary clones outside freeze/publish/SnapshotCell are fine
pub fn merge_all(summary: &MergedSummary) -> MergedSummary {
    summary.clone()
}
