// L6 fixture: lock acquisition inside frozen reader impls.

use std::sync::{Mutex, RwLock};

pub struct Snapshot {
    cell: Mutex<u64>,
}

impl Snapshot {
    pub fn bad_read(&self) -> u64 {
        let guard = self.cell.lock();
        match guard {
            Ok(g) => *g,
            Err(_) => 0,
        }
    }
}

pub struct MergedSummary {
    inner: RwLock<Vec<u64>>,
}

impl MergedSummary {
    pub fn bad_len(&self) -> usize {
        let lock: &RwLock<Vec<u64>> = &self.inner;
        match lock.read() {
            Ok(v) => v.len(),
            Err(_) => 0,
        }
    }
}

// guard: the writer side may lock all it wants
pub struct WriterCell {
    cell: Mutex<u64>,
}

impl WriterCell {
    pub fn publish(&self, v: u64) {
        if let Ok(mut g) = self.cell.lock() {
            *g = v;
        }
    }
}
