//! L10 fixture: std maps and per-point heap allocation inside the core
//! arrival hot path. Lines are load-bearing.

fn process(&mut self, item: &StreamItem) -> ProcessOutcome {
    let mut groups = HashMap::new();
    let mut order = BTreeMap::new();
    let mut demoted = Vec::new();
    let keys = vec![cell_key(&item.point)];
    ProcessOutcome::Ignored
}

fn process_inner(&mut self, p: &Point) -> ProcessOutcome {
    let label = format!("cell-{p:?}");
    let kept: Vec<u64> = self.keys.iter().copied().collect();
    self.store.push_acc(0, 0, p.clone());
    ProcessOutcome::Ignored
}

fn process_point(&mut self, p: &Point, own: Option<(u64, u64)>) -> ProcessOutcome {
    let boxed = Box::new(own);
    let copied = self.scratch.to_vec();
    ProcessOutcome::Ignored
}

fn process_batch_keyed(&mut self, points: &[Point]) {
    let mut keys = Vec::new();
    let labels: Vec<String> = points.iter().map(|p| format!("{p:?}")).collect();
}

fn double_rate(&mut self) {
    let mut demoted = Vec::new();
    let keep: Vec<bool> = self.rej.iter().map(|_| true).collect();
}

#[cfg(test)]
mod tests {
    #[test]
    fn hot_path_tests_may_allocate() {
        fn process(xs: &mut Vec<u64>) {
            let mut m = HashMap::new();
            m.insert(0u64, xs.to_vec());
        }
    }
}
