// L3 fixture: ambient time and entropy in deterministic code.

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now()
}

pub fn bad_thread_rng() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn bad_entropy() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}

// guard: a seeded RNG is the sanctioned construction
pub fn good_seeded(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next_u64()
}

// guard: a method named `now` on our own clock type is fine
pub fn good_own_clock(clock: &StreamClock) -> u64 {
    clock.now()
}

#[cfg(test)]
mod tests {
    // guard: wall-clock timing in tests is fine
    #[test]
    fn timing_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
