// L5 fixture: literal construction of RdsError::Checkpoint vs the
// pattern positions that must stay legal.

pub fn bad_literal(msg: String) -> RdsError {
    RdsError::Checkpoint { msg }
}

pub fn bad_field_init(s: &str) -> RdsError {
    RdsError::Checkpoint {
        msg: s.to_string(),
    }
}

// guard: matches! with a rest pattern
pub fn good_matches(e: &RdsError) -> bool {
    matches!(e, RdsError::Checkpoint { .. })
}

// guard: a match arm binding the field
pub fn good_match_arm(e: RdsError) -> String {
    match e {
        RdsError::Checkpoint { msg } => msg,
        _ => String::new(),
    }
}

// guard: if-let with a rest pattern
pub fn good_if_let(e: &RdsError) -> bool {
    if let RdsError::Checkpoint { .. } = e {
        return true;
    }
    false
}
