// Allow-comment fixture: trailing and standalone allows, empty
// justifications, unknown rules.

pub fn trailing_allow(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(L1) the caller checked is_some on the line above
}

pub fn standalone_allow(v: Option<u32>) -> u32 {
    // lint:allow(L1) construction validated this invariant; see try_new
    v.unwrap()
}

pub fn multiline_standalone_allow(v: Option<u32>) -> u32 {
    // lint:allow(L1) the comment explaining the invariant keeps going on
    // a second line, and the allow must still bind to the code below
    v.unwrap()
}

pub fn empty_justification(v: Option<u32>) -> u32 {
    // lint:allow(L1)
    v.unwrap()
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // lint:allow(L99) no such rule
    v.unwrap()
}

pub fn wrong_rule(v: Option<u32>) -> u32 {
    // lint:allow(L2) justified but aimed at the wrong rule
    v.unwrap()
}
