// Lexer edge cases: every panic-looking construct below hides inside a
// string or comment and must produce NO findings; the single real
// violation at the end proves the scan is still live after them.

pub fn raw_string_mentions_unwrap() -> &'static str {
    r#"calling .unwrap() here would panic!("but this is just text")"#
}

pub fn nested_raw_string() -> &'static str {
    r##"outer r#"inner .expect("nope")"# still one string"##
}

pub fn byte_and_c_strings() -> (&'static [u8], &'static str) {
    (b"panic!(\"bytes\")", "xs[0] inside a plain string")
}

/* a block comment with .unwrap() and panic!("x")
   /* nested block comments stay comments: unreachable!() */
   still commented out: SystemTime::now() */
pub fn after_block_comment() -> u32 {
    1
}

pub fn lifetimes_are_not_chars<'a>(x: &'a u32) -> &'a u32 {
    // 'a above must not open a char literal that swallows the file
    x
}

pub fn char_literals(c: char) -> bool {
    c == '\'' || c == '"' || c == '{'
}

pub fn raw_identifier() -> u32 {
    let r#match = 2u32;
    r#match
}

#[cfg(test)]
mod boundary {
    #[test]
    fn unwraps_inside_the_test_mod() {
        Some(1u32).unwrap();
    }
}

#[rustfmt::skip]
#[allow(
    clippy::needless_return,
)]
pub fn multi_line_attribute(v: Option<u32>) -> u32 {
    // a multi-line attribute above must not confuse region tracking:
    // this fn is NOT a test region, so the unwrap below is the one
    // real finding in this file
    v.unwrap()
}
