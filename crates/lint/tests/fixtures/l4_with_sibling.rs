// L4 fixture: a try_new sibling exists, but the infallible new still
// asserts in its body — the body check must fire on its own.

pub struct Gauge {
    limit: usize,
}

impl Gauge {
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "limit must be positive");
        Self { limit }
    }

    pub fn try_new(limit: usize) -> Result<Self, String> {
        if limit == 0 {
            return Err("limit must be positive".into());
        }
        Ok(Self { limit })
    }
}

// guard: a second type whose new is a pure panic-free delegation passes
pub struct Meter {
    inner: Gauge,
}

impl Meter {
    pub fn new(limit: usize) -> Self {
        Self {
            inner: Gauge {
                limit,
            },
        }
    }
}
