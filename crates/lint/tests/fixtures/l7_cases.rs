// L7 fixture: lossy casts of clock/accounting values.

pub fn bad_stamp_narrow(item_stamp: u64) -> u32 {
    item_stamp as u32
}

pub fn bad_epoch_to_usize(epoch: u64) -> usize {
    epoch as usize
}

pub fn bad_method_result(s: &Sampler) -> u32 {
    s.peak_words() as u32
}

pub fn bad_field(rec: &Entry) -> i32 {
    rec.rep_stamp as i32
}

// guard: widening to u64/u128 never truncates
pub fn good_widen(seen_lo: u32) -> u64 {
    seen_lo as u64
}

// guard: floats are for estimates, not accounting
pub fn good_float(words: usize) -> f64 {
    words as f64
}

// guard: unprotected names may narrow (the cast is the caller's business)
pub fn good_unprotected(count: u64) -> u32 {
    count as u32
}
