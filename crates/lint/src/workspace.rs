//! Workspace discovery: finds every first-party `.rs` file under the
//! repo root, driven by the `[workspace] members` list in the root
//! `Cargo.toml` so the scan and the build agree on what the workspace is.
//!
//! The vendored shims under `vendor/` are third-party API surface and are
//! not held to the repo's invariants; `crates/lint/tests/fixtures/` holds
//! deliberate violations and must never be scanned as library code.

use std::fs;
use std::path::{Path, PathBuf};

/// Reads the `members = [...]` array of the root manifest. Deliberately
/// minimal TOML handling: the array is a flat list of quoted strings,
/// which is all this workspace uses.
fn workspace_members(root: &Path) -> Vec<String> {
    let manifest = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(s) => s,
        Err(_) => return Vec::new(),
    };
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if !in_members {
            if line.starts_with("members") && line.contains('[') {
                in_members = true;
            } else {
                continue;
            }
        }
        for part in line.split(',') {
            if let Some(open) = part.find('"') {
                if let Some(close) = part[open + 1..].find('"') {
                    members.push(part[open + 1..open + 1 + close].to_string());
                }
            }
        }
        if in_members && line.contains(']') {
            break;
        }
    }
    members
}

fn is_excluded(rel: &str) -> bool {
    rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with(".git/")
        || rel.starts_with("crates/lint/tests/fixtures/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                walk(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every first-party `.rs` file, as (workspace-relative path with `/`
/// separators, absolute path), sorted for deterministic reports. Scans
/// each workspace member's directory plus the umbrella crate's root
/// `src/`, `tests/`, `benches/` and `examples/`.
pub fn source_files(root: &Path) -> Vec<(String, PathBuf)> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for member in workspace_members(root) {
        if member.starts_with("vendor/") {
            continue;
        }
        dirs.push(root.join(member));
    }
    for top in ["src", "tests", "benches", "examples"] {
        dirs.push(root.join(top));
    }

    let mut files = Vec::new();
    for dir in dirs {
        walk(&dir, &mut files);
    }

    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            if is_excluded(&rel) {
                None
            } else {
                Some((rel, abs))
            }
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
