//! The rule engine: ten repo-specific lints over the lexed token
//! stream, with `#[cfg(test)]`/`#[test]` region tracking and the
//! `// lint:allow(<rule>) <justification>` escape hatch.
//!
//! Every rule encodes an invariant a previous PR established by
//! convention; the rule id, the invariant and the establishing PR are
//! listed in [`RULES`] (and in the README's "Static analysis &
//! invariants" section).

use crate::lexer::{lex, Comment, Token, TokenKind};

/// One diagnostic: `path:line:col: rule message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule id (`L1`..`L10`, or `L0` for a malformed allow comment).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The rule catalog: id, one-line description. Rendered by `--list` and
/// kept in sync with the README.
pub const RULES: &[(&str, &str)] = &[
    (
        "L0",
        "lint:allow comments must name a known rule and carry a non-empty justification",
    ),
    (
        "L1",
        "no .unwrap()/.expect()/panic!/unreachable!/indexing-by-literal in non-test \
         rds-core/rds-engine/facade code (PR 3/4: typed errors on the serving path)",
    ),
    (
        "L2",
        "no std::fs::write/File::create/OpenOptions/fs::rename outside the blessed \
         atomic-write helper (PR 5: checkpoint containers stay crash-atomic)",
    ),
    (
        "L3",
        "no Instant::now/SystemTime::now/ambient entropy in deterministic sampler or \
         checkpoint code (PR 5: exact-PRNG-position restore)",
    ),
    (
        "L4",
        "every pub fn new in rds-core needs a try_new/builder sibling and a panic-free \
         body (PR 3: fallible construction contract)",
    ),
    (
        "L5",
        "RdsError::Checkpoint may only be constructed through RdsError::checkpoint() \
         (PR 5: one checkpoint-error constructor)",
    ),
    (
        "L6",
        "no Mutex/RwLock acquisition inside Snapshot/summary read impls or \
         SnapshotCell, and no lock or full-summary clone inside the publication \
         path (freeze/RdsWriter::publish) — O(changes) copy-on-write contract \
         (PR 4/7)",
    ),
    (
        "L7",
        "no lossy `as` casts of stamp/epoch/seen/word-accounting values to narrower \
         integers (use try_into or a checked helper)",
    ),
    (
        "L8",
        "no .unwrap()/.expect()/panic!/unreachable!/indexing-by-literal in non-test \
         rds-server code (PR 8: a malformed request is a 4xx envelope, never a dead \
         worker thread)",
    ),
    (
        "L9",
        "no spill/restore I/O while a registry-wide (map/ring) lock guard is live, and \
         no panicking constructs in non-test rds-tenant code (PR 9: the tenant path \
         stays lock-light and panic-free; only per-tenant slot locks may span I/O)",
    ),
    (
        "L10",
        "no HashMap/BTreeMap and no per-point heap allocation inside the rds-core \
         arrival hot path (fn process/process_inner/process_point) — duplicate \
         detection goes through the cell-indexed CandidateStore and scratch buffers \
         live on the sampler (PR 10: cell-indexed store data-layout pass)",
    ),
];

/// The file blessed to contain raw filesystem writes: the atomic
/// temp-file + rename helper every durable write must go through.
pub const BLESSED_WRITE_MODULE: &str = "crates/core/src/persist.rs";

/// The file blessed to construct `RdsError::Checkpoint` literally: the
/// module defining `RdsError::checkpoint()`.
pub const BLESSED_CHECKPOINT_MODULE: &str = "crates/core/src/error.rs";

/// Types whose impl blocks are frozen read paths: readers query them
/// concurrently with `&self`, so they must never acquire a lock.
const LOCK_FREE_READ_TYPES: &[&str] = &[
    "Snapshot",
    "MergedSummary",
    "WindowSummary",
    "MetricSummary",
    "JlSummary",
    "SiteSummary",
];

/// Identifier substrings marking clock/accounting values whose silent
/// truncation corrupts windows, epochs or space metering.
const PROTECTED_CAST_NAMES: &[&str] = &["stamp", "epoch", "seen", "word", "draw", "routed"];

/// Integer targets an `as` cast can truncate into (u64 sources; `u64`,
/// `u128`, `i128` and float targets are exempt).
const NARROWING_INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "usize", "isize",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Which crate (and therefore which rule set) a workspace-relative path
/// belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CrateKind {
    Core,
    Engine,
    Umbrella,
    Cli,
    Server,
    Tenant,
    Other,
}

fn crate_kind(path: &str) -> CrateKind {
    if path.starts_with("crates/core/") {
        CrateKind::Core
    } else if path.starts_with("crates/engine/") {
        CrateKind::Engine
    } else if path.starts_with("crates/cli/") {
        CrateKind::Cli
    } else if path.starts_with("crates/server/") {
        CrateKind::Server
    } else if path.starts_with("crates/tenant/") {
        CrateKind::Tenant
    } else if path.starts_with("crates/") {
        CrateKind::Other
    } else {
        CrateKind::Umbrella
    }
}

/// Whole-file test scope: integration tests, benches, examples and lint
/// fixtures are not library code.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"))
}

fn keyword_cannot_index(t: &Token) -> bool {
    matches!(
        t.text.as_str(),
        "let" | "in" | "return" | "match" | "if" | "else" | "move" | "mut" | "ref" | "break"
            | "continue" | "where" | "use" | "for" | "while" | "loop" | "unsafe" | "as"
            | "const" | "static" | "dyn" | "impl" | "fn" | "pub" | "crate" | "mod" | "enum"
            | "struct" | "trait" | "type" | "extern" | "box" | "yield" | "await"
    )
}

/// One parsed `lint:allow(<rule>) <justification>` escape hatch.
struct Allow {
    rule: String,
    /// The line of code the allow suppresses (its own line for trailing
    /// comments, the next code line after it for standalone ones —
    /// further comment lines in between don't break the binding).
    target_line: u32,
    comment_line: u32,
    justified: bool,
    known: bool,
}

fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            // only `L<digits>` is an allow attempt; this keeps prose like
            // `lint:allow(<rule>)` in docs from parsing as an allow
            let looks_like_rule = rule
                .strip_prefix('L')
                .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()));
            if !looks_like_rule {
                rest = &rest[close + 1..];
                continue;
            }
            let after = rest[close + 1..]
                .trim_start_matches([':', '-', ' '])
                .trim_end_matches("*/")
                .trim();
            let known = RULES.iter().any(|(id, _)| *id == rule && *id != "L0");
            let target_line = if c.trailing {
                c.line
            } else {
                // first code line after the comment (token lines are
                // non-decreasing)
                tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.end_line)
                    .unwrap_or(u32::MAX)
            };
            out.push(Allow {
                rule,
                target_line,
                comment_line: c.line,
                justified: !after.is_empty(),
                known,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

/// Marks every token inside a `#[cfg(test)]` item or `#[test]` function
/// body. Attribute chains are handled (`#[cfg(test)] #[allow(…)] mod t`),
/// `cfg(not(test))` is *not* a test region.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        // inner attribute `#![…]`: skip it, it scopes the whole file and
        // the file-level scope already came from the path
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct("!") {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct("[") {
            i += 1;
            continue;
        }
        // find the matching `]` of the attribute
        let attr_start = j;
        let mut depth = 0i32;
        let mut attr_end = None;
        for (k, t) in tokens.iter().enumerate().skip(attr_start) {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    attr_end = Some(k);
                    break;
                }
            }
        }
        let Some(attr_end) = attr_end else { break };
        let attr = &tokens[attr_start..=attr_end];
        let is_test_attr = attr.iter().any(|t| t.is_ident("test"))
            && !attr.iter().any(|t| t.is_ident("not"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // consume any further attributes on the same item
        let mut k = attr_end + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct("#") && tokens[k + 1].is_punct("[") {
            let mut d = 0i32;
            let mut m = k + 1;
            while m < tokens.len() {
                if tokens[m].is_punct("[") {
                    d += 1;
                } else if tokens[m].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // the item: ends at the first top-level `;` (no body) or at the
        // matching `}` of its first top-level `{`
        let mut brace = 0i32;
        let mut end = tokens.len().saturating_sub(1);
        let mut saw_brace = false;
        for (m, t) in tokens.iter().enumerate().skip(k) {
            if t.is_punct("{") {
                brace += 1;
                saw_brace = true;
            } else if t.is_punct("}") {
                brace -= 1;
                if saw_brace && brace == 0 {
                    end = m;
                    break;
                }
            } else if t.is_punct(";") && !saw_brace {
                end = m;
                break;
            }
            if m + 1 == tokens.len() {
                end = m;
            }
        }
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Finds the matching close for the open delimiter at `open` (which must
/// hold an opening token of `kind`); returns the index of the close, or
/// the last token on unbalanced input.
fn matching(tokens: &[Token], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

struct Ctx<'a> {
    path: &'a str,
    tokens: &'a [Token],
    in_test: &'a [bool],
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn emit(&mut self, rule: &'static str, at: &Token, message: String) {
        self.findings.push(Finding {
            rule,
            path: self.path.to_string(),
            line: at.line,
            col: at.col,
            message,
        });
    }
}

/// Runs every rule on one file and applies the allow comments. `path`
/// must be workspace-relative with `/` separators — rule scoping is
/// path-based.
pub fn check_file(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let in_test = mark_test_regions(&lexed.tokens);
    let allows = parse_allows(&lexed.comments, &lexed.tokens);
    let kind = crate_kind(path);
    let test_file = is_test_path(path);

    let mut ctx = Ctx {
        path,
        tokens: &lexed.tokens,
        in_test: &in_test,
        findings: Vec::new(),
    };

    let lib_scope = !test_file;
    let panic_scope =
        lib_scope && matches!(kind, CrateKind::Core | CrateKind::Engine | CrateKind::Umbrella);
    if panic_scope {
        rule_l1(&mut ctx);
        rule_l3(&mut ctx);
        rule_l7(&mut ctx);
    }
    if lib_scope && kind == CrateKind::Server {
        rule_l8(&mut ctx);
    }
    if lib_scope && kind == CrateKind::Tenant {
        rule_l9(&mut ctx);
        // the tenant path is deterministic (seeded per-tenant PRNGs,
        // word accounting) — the clock/entropy and cast rules apply
        rule_l3(&mut ctx);
        rule_l7(&mut ctx);
    }
    if lib_scope
        && matches!(
            kind,
            CrateKind::Core
                | CrateKind::Engine
                | CrateKind::Umbrella
                | CrateKind::Cli
                | CrateKind::Server
                | CrateKind::Tenant
        )
        && path != BLESSED_WRITE_MODULE
    {
        rule_l2(&mut ctx);
    }
    if lib_scope && kind == CrateKind::Core {
        rule_l4(&mut ctx);
        rule_l10(&mut ctx);
    }
    if lib_scope && path != BLESSED_CHECKPOINT_MODULE {
        rule_l5(&mut ctx);
    }
    if lib_scope {
        rule_l6(&mut ctx);
    }

    // apply the allow comments, then report the malformed ones
    let mut findings: Vec<Finding> = ctx
        .findings
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.known && a.justified && a.rule == f.rule && a.target_line == f.line
            })
        })
        .collect();
    for a in &allows {
        if !a.known {
            findings.push(Finding {
                rule: "L0",
                path: path.to_string(),
                line: a.comment_line,
                col: 1,
                message: format!("lint:allow names unknown rule `{}`", a.rule),
            });
        } else if !a.justified {
            findings.push(Finding {
                rule: "L0",
                path: path.to_string(),
                line: a.comment_line,
                col: 1,
                message: format!(
                    "lint:allow({}) needs a non-empty justification; the allow is ignored",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// The shared panic-free scan behind L1 (core/engine/facade) and L8
/// (rds-server): flags `.unwrap()`/`.expect()`, the aborting macros and
/// indexing-by-literal, attributing each hit to `rule` with the
/// rule-specific `remedy` clause.
fn rule_panic_free(ctx: &mut Ctx<'_>, rule: &'static str, remedy: &str) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            let prev_dot = i > 0 && toks[i - 1].is_punct(".");
            let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct("(");
            if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
                ctx.emit(
                    rule,
                    &toks[i].clone(),
                    format!(".{}() can panic on the serving path; {remedy}", t.text),
                );
                continue;
            }
            let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct("!");
            if next_bang && PANIC_MACROS.contains(&t.text.as_str()) {
                ctx.emit(
                    rule,
                    &toks[i].clone(),
                    format!("{}! aborts the serving path; {remedy}", t.text),
                );
                continue;
            }
        }
        // indexing by integer literal: `xs[0]`
        if t.is_punct("[")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokenKind::Int
            && toks[i + 2].is_punct("]")
            && i > 0
        {
            let prev = &toks[i - 1];
            let indexable = (prev.kind == TokenKind::Ident && !keyword_cannot_index(prev))
                || prev.is_punct(")")
                || prev.is_punct("]");
            if indexable {
                ctx.emit(
                    rule,
                    &toks[i + 1].clone(),
                    format!(
                        "indexing by literal `[{}]` panics when the container is shorter; \
                         use .get({}) or .first()",
                        toks[i + 1].text, toks[i + 1].text
                    ),
                );
            }
        }
    }
}

/// L1: panic-free serving path in core/engine/facade code.
fn rule_l1(ctx: &mut Ctx<'_>) {
    rule_panic_free(
        ctx,
        "L1",
        "return a typed RdsError (or document the invariant with lint:allow(L1))",
    );
}

/// L8: panic-free request handling in rds-server — a worker thread that
/// dies on a malformed request takes every queued connection with it.
fn rule_l8(ctx: &mut Ctx<'_>) {
    rule_panic_free(
        ctx,
        "L8",
        "answer a 4xx error envelope (or document the invariant with lint:allow(L8))",
    );
}

/// Identifier substrings marking a registry-wide lock receiver: the
/// tenant map and the eviction ring serialize *every* tenant, so
/// holding one across disk I/O stalls the whole registry.
const REGISTRY_WIDE_LOCKS: &[&str] = &["map", "ring", "registry"];

/// Spill/restore I/O entry points that must never run under a
/// registry-wide lock (per-tenant slot locks may span them).
const SPILL_IO_CALLS: &[&str] = &[
    "write_container",
    "read_container",
    "write_atomic",
    "read_to_string",
    "create_dir_all",
    "spill_slot",
    "ensure_resident",
];

/// L9: the tenant registry's locking discipline. Panic-free serving
/// path (shared scan with L1/L8), plus: a guard let-bound from
/// `.lock()` on a map/ring/registry receiver must not have any
/// spill/restore I/O call inside its live range (which ends at the
/// enclosing block's close or an explicit `drop(guard)`). The scoped
/// temporary form `{ self.map.lock().len() }` releases at the
/// expression and is always fine.
fn rule_l9(ctx: &mut Ctx<'_>) {
    rule_panic_free(
        ctx,
        "L9",
        "answer a typed RdsError (or document the invariant with lint:allow(L9))",
    );
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        // a `.lock()` call whose guard is let-bound: the whole RHS is
        // the lock call, so the statement ends right after the `()`
        let is_lock = toks[i].is_ident("lock")
            && i > 0
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(");
        if !is_lock {
            continue;
        }
        let close = matching(toks, i + 1, "(", ")");
        if !toks.get(close + 1).map(|t| t.is_punct(";")).unwrap_or(false) {
            continue; // scoped temporary: released within the expression
        }
        // the receiver chain: idents walking back over `recv.field.`
        let mut j = i - 1;
        let mut registry_wide = false;
        while j > 0 {
            let t = &toks[j - 1];
            if t.kind == TokenKind::Ident {
                let lower = t.text.to_lowercase();
                if REGISTRY_WIDE_LOCKS.iter().any(|p| lower.contains(p)) {
                    registry_wide = true;
                }
                j -= 1;
            } else if t.is_punct(".") {
                j -= 1;
            } else {
                break;
            }
        }
        if !registry_wide {
            continue;
        }
        // the binding: `let [mut] <guard> = <recv>.lock();`
        if j == 0 || !toks[j - 1].is_punct("=") {
            continue;
        }
        let Some(guard) = toks.get(j.wrapping_sub(2)) else { continue };
        if guard.kind != TokenKind::Ident {
            continue; // destructuring patterns don't bind a lone guard
        }
        let guard_name = guard.text.clone();
        // the guard's live range: scan until the enclosing block closes
        // or the guard is explicitly dropped
        let mut depth = 0i32;
        let mut m = close + 2;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_ident("drop")
                && m + 2 < toks.len()
                && toks[m + 1].is_punct("(")
                && toks[m + 2].is_ident(&guard_name)
            {
                break;
            } else if !ctx.in_test[m]
                && t.kind == TokenKind::Ident
                && SPILL_IO_CALLS.contains(&t.text.as_str())
                && m + 1 < toks.len()
                && toks[m + 1].is_punct("(")
            {
                let name = t.text.clone();
                ctx.emit(
                    "L9",
                    &t.clone(),
                    format!(
                        "`{name}` while registry-wide guard `{guard_name}` is live: \
                         spill/restore I/O under the map/ring lock stalls every tenant; \
                         drop the guard first (only per-tenant slot locks may span I/O)"
                    ),
                );
            }
            m += 1;
        }
    }
}

/// L2: all durable writes go through the blessed atomic helper.
fn rule_l2(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(window) = toks.get(i..i + 3) else { break };
        if !window[1].is_punct("::") {
            continue;
        }
        let pair = (window[0].text.as_str(), window[2].text.as_str());
        let hit = matches!(
            pair,
            ("fs", "write") | ("fs", "rename") | ("File", "create") | ("OpenOptions", "new")
        ) && window[0].kind == TokenKind::Ident
            && window[2].kind == TokenKind::Ident;
        if hit {
            ctx.emit(
                "L2",
                &window[0].clone(),
                format!(
                    "raw `{}::{}` can destroy a good checkpoint on crash; write through \
                     rds_core::persist (temp file + rename)",
                    pair.0, pair.1
                ),
            );
        }
    }
}

/// L3: deterministic code paths take no ambient time or entropy.
fn rule_l3(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let now_call = i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("now")
            && (t.text == "Instant" || t.text == "SystemTime");
        if now_call {
            ctx.emit(
                "L3",
                &toks[i].clone(),
                format!(
                    "{}::now() makes restored runs diverge from the original; thread an \
                     explicit Stamp through instead",
                    t.text
                ),
            );
            continue;
        }
        if matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng" | "from_os_rng") {
            ctx.emit(
                "L3",
                &toks[i].clone(),
                format!(
                    "`{}` is ambient entropy; every RNG must be seeded from the \
                     SamplerConfig so exact-PRNG-position restore holds",
                    t.text
                ),
            );
        }
    }
}

/// L4: fallible construction — `pub fn new` needs a `try_new`/builder
/// sibling and a panic-free body.
fn rule_l4(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    let has_sibling = toks.iter().any(|t| t.is_ident("try_new"))
        || toks
            .windows(2)
            .any(|w| w[0].is_ident("fn") && w[1].is_ident("builder"));
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let hit = toks[i].is_ident("pub")
            && i + 3 < toks.len()
            && toks[i + 1].is_ident("fn")
            && toks[i + 2].is_ident("new")
            && toks[i + 3].is_punct("(");
        if !hit {
            continue;
        }
        let new_tok = toks[i + 2].clone();
        if !has_sibling {
            ctx.emit(
                "L4",
                &new_tok,
                "pub fn new without a try_new/builder sibling; construction must have a \
                 fallible path (PR 3 contract)"
                    .to_string(),
            );
        }
        // body: skip the parameter list, then the first `{ … }` (a `;`
        // first means a bodyless trait method)
        let params_end = matching(toks, i + 3, "(", ")");
        let mut body_open = None;
        for (m, t) in toks.iter().enumerate().skip(params_end + 1) {
            if t.is_punct("{") {
                body_open = Some(m);
                break;
            }
            if t.is_punct(";") {
                break;
            }
        }
        let Some(open) = body_open else { continue };
        let close = matching(toks, open, "{", "}");
        for m in open..=close {
            let t = &toks[m];
            let next_bang = m + 1 < toks.len() && toks[m + 1].is_punct("!");
            if next_bang
                && (PANIC_MACROS.contains(&t.text.as_str())
                    || ASSERT_MACROS.contains(&t.text.as_str()))
            {
                ctx.emit(
                    "L4",
                    &t.clone(),
                    format!(
                        "{}! inside pub fn new; validation belongs in try_new, which \
                         returns a typed RdsError",
                        t.text
                    ),
                );
            }
        }
    }
}

/// L5: `RdsError::Checkpoint` is constructed only via
/// `RdsError::checkpoint()`. Patterns (`matches!`, match arms, `if let`)
/// are allowed; struct-literal construction is not.
fn rule_l5(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let hit = toks[i].is_ident("RdsError")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("Checkpoint")
            && toks[i + 3].is_punct("{");
        if !hit {
            continue;
        }
        let open = i + 3;
        let close = matching(toks, open, "{", "}");
        let body = &toks[open + 1..close];
        let has_field_init = body.iter().any(|t| t.is_punct(":"));
        let has_rest = body.iter().any(|t| t.is_punct(".."));
        let after = toks.get(close + 1);
        let pattern_position = after
            .map(|t| t.is_punct(")") || t.is_punct("=>") || t.is_punct("|"))
            .unwrap_or(false);
        if has_field_init || (!has_rest && !pattern_position) {
            ctx.emit(
                "L5",
                &toks[i].clone(),
                "RdsError::Checkpoint constructed literally; RdsError::checkpoint() is \
                 the sole constructor (PR 5 contract)"
                    .to_string(),
            );
        }
    }
}

/// Reports every lock type, lock-acquisition call and (optionally)
/// full-summary `.clone()` in `toks[lo..=hi]`, attributing it to
/// `site` in the message. Shared by the L6 scans over frozen reader
/// impls, `SnapshotCell` impls and the publication path.
fn l6_scan_range(ctx: &mut Ctx<'_>, lo: usize, hi: usize, site: &str, summary_clones: bool) {
    let toks = ctx.tokens;
    for m in lo..=hi.min(toks.len() - 1) {
        if ctx.in_test[m] {
            continue;
        }
        let t = &toks[m];
        let method_call = |name: &str| {
            t.is_ident(name)
                && m > 0
                && toks[m - 1].is_punct(".")
                && m + 1 < toks.len()
                && toks[m + 1].is_punct("(")
        };
        let lock_type = t.kind == TokenKind::Ident && (t.text == "Mutex" || t.text == "RwLock");
        let lock_call = method_call("lock") || method_call("read") || method_call("write");
        if lock_type || lock_call {
            ctx.emit(
                "L6",
                &t.clone(),
                format!(
                    "`{}` inside {site}: readers are lock-free and publication swaps \
                     one atomic pointer — no lock is ever acquired here (PR 4/7 \
                     contract)",
                    t.text
                ),
            );
            continue;
        }
        if summary_clones && m >= 2 && method_call("clone") {
            // the receiver: the identifier (or callee) just before `.`
            let mut j = m - 2;
            if toks[j].is_punct(")") {
                let mut depth = 0i32;
                loop {
                    if toks[j].is_punct(")") {
                        depth += 1;
                    } else if toks[j].is_punct("(") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                j = j.saturating_sub(1);
            }
            let recv = &toks[j];
            if recv.kind == TokenKind::Ident && recv.text.to_lowercase().contains("summary") {
                ctx.emit(
                    "L6",
                    &t.clone(),
                    format!(
                        "`{}.clone()` inside {site}: a full-summary deep copy defeats \
                         O(changes) publication; Arc-share untouched levels instead \
                         (PR 7 contract)",
                        recv.text
                    ),
                );
            }
        }
    }
}

/// Scans the body of every `fn {name}` between `lo` and `hi` with the
/// publication-path checks (locks *and* full-summary clones).
fn l6_scan_fn_bodies(ctx: &mut Ctx<'_>, lo: usize, hi: usize, name: &str, site: &str) {
    let toks = ctx.tokens;
    let mut i = lo;
    while i + 1 < hi.min(toks.len()) {
        if !(toks[i].is_ident("fn") && toks[i + 1].is_ident(name)) {
            i += 1;
            continue;
        }
        // the body runs from the first `{` after the signature
        let mut open = None;
        for (m, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(i + 2) {
            if t.is_punct("{") {
                open = Some(m);
                break;
            }
            if t.is_punct(";") {
                break; // a trait method signature has no body
            }
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = matching(toks, open, "{", "}");
        l6_scan_range(ctx, open, close, site, true);
        i = close + 1;
    }
}

/// L6: lock-free publication contract — no lock types or acquisition
/// calls (`.lock()`/`.read()`/`.write()`) inside impl blocks of the
/// frozen snapshot/summary types or `SnapshotCell`, and no lock
/// acquisition *or full-summary `.clone()`* inside the copy-on-write
/// publication path (`fn freeze`, `RdsWriter::publish`,
/// `SnapshotCell`): publication must stay O(changes) + one atomic swap.
fn rule_l6(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    // Free-standing `fn freeze` anywhere in the file (the facade's
    // snapshot builder) gets the full publication-path scan.
    l6_scan_fn_bodies(ctx, 0, toks.len(), "freeze", "fn freeze");
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // header runs to the block's `{`
        let mut open = None;
        for (m, t) in toks.iter().enumerate().skip(i + 1) {
            if t.is_punct("{") {
                open = Some(m);
                break;
            }
            if t.is_punct(";") {
                break;
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let header = &toks[i + 1..open];
        // the implemented type: the path after `for` if present, else the
        // first path after the (optional) generic parameter list
        let after_for = header.iter().position(|t| t.is_ident("for"));
        let type_region: &[Token] = match after_for {
            Some(p) => &header[p + 1..],
            None => {
                let mut start = 0usize;
                if header.first().map(|t| t.is_punct("<")).unwrap_or(false) {
                    let mut depth = 0i32;
                    for (m, t) in header.iter().enumerate() {
                        if t.is_punct("<") {
                            depth += 1;
                        } else if t.is_punct(">") {
                            depth -= 1;
                            if depth == 0 {
                                start = m + 1;
                                break;
                            }
                        }
                    }
                }
                &header[start..]
            }
        };
        // last ident of the leading path, stopping at `<` (generic args)
        let mut target: Option<&str> = None;
        for t in type_region {
            if t.is_punct("<") || t.is_punct("{") {
                break;
            }
            if t.kind == TokenKind::Ident {
                target = Some(t.text.as_str());
            }
        }
        let close = matching(toks, open, "{", "}");
        match target {
            // The lock-free cell itself: locks and summary deep-clones
            // are both contract violations anywhere in its impls.
            Some("SnapshotCell") => {
                l6_scan_range(ctx, open, close, "impl SnapshotCell", true);
            }
            // The writer's publish path: only `fn publish` bodies are
            // publication; other writer methods may lock freely.
            Some("RdsWriter") => {
                l6_scan_fn_bodies(ctx, open, close, "publish", "RdsWriter::publish");
            }
            // Frozen reader types: readers query them concurrently with
            // `&self`, so no lock is ever acquired (clones are fine —
            // `Arc`-backed levels make them cheap by construction).
            Some(n) if LOCK_FREE_READ_TYPES.contains(&n) => {
                let site = format!("impl {n}");
                l6_scan_range(ctx, open, close, &site, false);
            }
            _ => {}
        }
        i = close + 1;
    }
}

/// Fn names forming the per-point arrival hot path in rds-core: a map
/// lookup or heap allocation in one of these bodies runs once per
/// stream point.
const HOT_PATH_FNS: &[&str] = &["process", "process_inner", "process_point"];

/// Map types with no place on the arrival path: the cell-indexed
/// `CandidateStore` is the blessed per-point index.
const HOT_PATH_MAP_TYPES: &[&str] = &["HashMap", "BTreeMap"];

/// Allocation entry points flagged inside hot-path bodies. `.clone()`
/// is deliberately absent: representatives and reservoirs must be
/// stored, and those clones are per-new-group, not per-point.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_PATH_TYPES: &[&str] = &["Vec", "String", "Box", "VecDeque"];
const ALLOC_PATH_FNS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string"];

/// L10: the arrival hot path allocates nothing and consults no std map
/// — duplicate detection goes through the cell-indexed store and every
/// scratch buffer is preallocated on the sampler, so processing a point
/// costs O(probe) with no allocator traffic (PR 10 contract). Scans the
/// bodies of core fns named `process`/`process_inner`/`process_point`;
/// cold paths (`double_rate`, queries, checkpointing) may allocate
/// freely.
fn rule_l10(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    let mut i = 0usize;
    while i + 1 < toks.len() {
        let is_hot = toks[i].is_ident("fn")
            && toks[i + 1].kind == TokenKind::Ident
            && HOT_PATH_FNS.contains(&toks[i + 1].text.as_str());
        if !is_hot || ctx.in_test[i] {
            i += 1;
            continue;
        }
        let fn_name = toks[i + 1].text.clone();
        // body: skip to the parameter list, then the first `{ … }` (a
        // `;` first means a bodyless trait method)
        let mut params_open = i + 2;
        while params_open < toks.len() && !toks[params_open].is_punct("(") {
            params_open += 1;
        }
        let params_end = matching(toks, params_open, "(", ")");
        let mut body_open = None;
        for (m, t) in toks.iter().enumerate().skip(params_end + 1) {
            if t.is_punct("{") {
                body_open = Some(m);
                break;
            }
            if t.is_punct(";") {
                break;
            }
        }
        let Some(open) = body_open else {
            i = params_end + 1;
            continue;
        };
        let close = matching(toks, open, "{", "}");
        for m in open..=close.min(toks.len().saturating_sub(1)) {
            if ctx.in_test[m] {
                continue;
            }
            let t = &toks[m];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let next_is = |s: &str| toks.get(m + 1).map(|n| n.is_punct(s)).unwrap_or(false);
            if HOT_PATH_MAP_TYPES.contains(&t.text.as_str()) {
                ctx.emit(
                    "L10",
                    &t.clone(),
                    format!(
                        "`{}` inside fn {fn_name}: the arrival path indexes groups \
                         through the cell-keyed CandidateStore, never a std map \
                         (PR 10 contract)",
                        t.text
                    ),
                );
                continue;
            }
            if next_is("!") && ALLOC_MACROS.contains(&t.text.as_str()) {
                ctx.emit(
                    "L10",
                    &t.clone(),
                    format!(
                        "`{}!` allocates once per point inside fn {fn_name}; hoist \
                         the buffer onto the sampler (PR 10 contract)",
                        t.text
                    ),
                );
                continue;
            }
            let path_alloc = ALLOC_PATH_TYPES.contains(&t.text.as_str())
                && next_is("::")
                && toks
                    .get(m + 2)
                    .map(|n| n.kind == TokenKind::Ident && ALLOC_PATH_FNS.contains(&n.text.as_str()))
                    .unwrap_or(false);
            if path_alloc {
                ctx.emit(
                    "L10",
                    &t.clone(),
                    format!(
                        "`{}::{}` allocates once per point inside fn {fn_name}; hoist \
                         the buffer onto the sampler (PR 10 contract)",
                        t.text, toks[m + 2].text
                    ),
                );
                continue;
            }
            let method_alloc = m > 0
                && toks[m - 1].is_punct(".")
                && next_is("(")
                && ALLOC_METHODS.contains(&t.text.as_str());
            if method_alloc {
                ctx.emit(
                    "L10",
                    &t.clone(),
                    format!(
                        "`.{}()` allocates once per point inside fn {fn_name}; reuse \
                         a scratch buffer on the sampler (PR 10 contract)",
                        t.text
                    ),
                );
            }
        }
        i = close + 1;
    }
}

/// L7: clock/accounting values never truncate through `as`.
fn rule_l7(ctx: &mut Ctx<'_>) {
    let toks = ctx.tokens;
    for i in 1..toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let cast = toks[i].is_ident("as")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && NARROWING_INT_TYPES.contains(&toks[i + 1].text.as_str());
        if !cast {
            continue;
        }
        // the source expression's trailing identifier: `x.last_stamp as
        // u32` or `self.words() as u32`
        let mut j = i - 1;
        if toks[j].is_punct(")") {
            // step back over the call's argument list to the callee name
            let mut depth = 0i32;
            loop {
                if toks[j].is_punct(")") {
                    depth += 1;
                } else if toks[j].is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j == 0 {
                continue;
            }
            j -= 1;
        }
        let src = &toks[j];
        if src.kind != TokenKind::Ident {
            continue;
        }
        let lower = src.text.to_lowercase();
        if PROTECTED_CAST_NAMES.iter().any(|p| lower.contains(p)) {
            ctx.emit(
                "L7",
                &toks[i].clone(),
                format!(
                    "`{} as {}` silently truncates a clock/accounting value; use \
                     u64::try_from or a checked helper",
                    src.text, toks[i + 1].text
                ),
            );
        }
    }
}
