//! A hand-rolled, dependency-free Rust lexer — just enough fidelity for
//! the lint rules: it must never mistake the *contents* of a string,
//! comment or doc example for code, and it must keep exact line/column
//! positions so diagnostics are clickable.
//!
//! Handled precisely:
//!
//! * raw strings `r"…"`, `r#"…"#` (any number of hashes), byte and raw
//!   byte strings, and raw identifiers `r#match`;
//! * nested block comments `/* /* … */ */` and line comments (doc
//!   comments are comments — code inside them is doctest text, not
//!   library code);
//! * lifetimes (`'a`, `'static`) vs. char literals (`'a'`, `'\''`);
//! * numeric literals including suffixes (`1u64`), hex/octal/binary, and
//!   the `0..10` range ambiguity (`..` is never swallowed into a float);
//! * multi-char punctuation the rules care about (`::`, `=>`, `..`,
//!   `->`); everything else is emitted one char at a time.
//!
//! The lexer is total: any byte sequence produces a token stream, never a
//! panic — unterminated literals simply extend to end of file.

/// What a token is; the rule engine mostly switches on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are not distinguished — rules
    /// match on the text where it matters).
    Ident,
    /// A lifetime such as `'a` (without the quote in `text`? no — `text`
    /// keeps the leading quote, e.g. `'a`).
    Lifetime,
    /// Integer literal, suffix included (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`).
    Float,
    /// String, byte-string, or C-string literal (escaped form).
    Str,
    /// Raw (byte) string literal, any hash depth.
    RawStr,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Punctuation; `text` is the operator (`::`, `=>`, `..`, `->`, or a
    /// single character).
    Punct,
}

/// One lexed token with its exact source position (1-based line/col).
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True iff the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// True iff the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A comment (line or block) with its position — kept out of the code
/// token stream but scanned for `lint:allow` escape hatches.
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment text including its delimiters.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for line
    /// comments).
    pub end_line: u32,
    /// True iff code precedes the comment on its starting line (a
    /// trailing comment annotates its own line, a standalone one the
    /// next).
    pub trailing: bool,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<u8> {
        self.src.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // count characters, not continuation bytes
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if f(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn slice(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes a complete source file. Total: never fails, never panics.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    let mut line_has_code = false;
    let mut last_line = 1u32;
    while let Some(b) = c.peek() {
        if c.line != last_line {
            line_has_code = false;
            last_line = c.line;
        }
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                c.eat_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: c.slice(start),
                    line,
                    end_line: line,
                    trailing: line_has_code,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break, // unterminated: runs to EOF
                    }
                }
                out.comments.push(Comment {
                    text: c.slice(start),
                    line,
                    end_line: c.line,
                    trailing: line_has_code,
                });
            }
            b'r' | b'b' | b'c' if starts_raw_or_byte(&c) => {
                let kind = lex_prefixed_literal(&mut c);
                out.tokens.push(Token {
                    kind,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            b'r' if c.peek_at(1) == Some(b'#')
                && c.peek_at(2).is_some_and(is_ident_start) =>
            {
                // raw identifier `r#match`: one Ident token, `#` included
                c.bump();
                c.bump();
                c.eat_while(is_ident_continue);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            _ if is_ident_start(b) => {
                c.eat_while(is_ident_continue);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            b'0'..=b'9' => {
                let kind = lex_number(&mut c);
                out.tokens.push(Token {
                    kind,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            b'"' => {
                lex_string(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                out.tokens.push(Token {
                    kind,
                    text: c.slice(start),
                    line,
                    col,
                });
                line_has_code = true;
            }
            _ => {
                let text = lex_punct(&mut c);
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                    col,
                });
                line_has_code = true;
            }
        }
    }
    out
}

/// Does the cursor sit on a prefixed literal (`r"`, `r#"`, `b"`, `b'`,
/// `br"`, `br#"`, `c"`, …) rather than a plain identifier starting with
/// `r`/`b`/`c`? Raw identifiers (`r#match`) are *not* literals.
fn starts_raw_or_byte(c: &Cursor<'_>) -> bool {
    let b0 = c.peek();
    let b1 = c.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) => true,
        (Some(b'r'), Some(b'#')) => {
            // r#"…"# is a raw string; r#ident is a raw identifier
            let mut n = 2;
            while c.peek_at(n) == Some(b'#') {
                n += 1;
            }
            c.peek_at(n) == Some(b'"')
        }
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) | (Some(b'c'), Some(b'"')) => true,
        (Some(b'b'), Some(b'r')) => match c.peek_at(2) {
            Some(b'"') => true,
            Some(b'#') => {
                let mut n = 3;
                while c.peek_at(n) == Some(b'#') {
                    n += 1;
                }
                c.peek_at(n) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Lexes a literal with an `r`/`b`/`br`/`c` prefix (the cursor sits on
/// the prefix and `starts_raw_or_byte` returned true).
fn lex_prefixed_literal(c: &mut Cursor<'_>) -> TokenKind {
    let mut raw = false;
    // consume the prefix letters
    while matches!(c.peek(), Some(b'r' | b'b' | b'c')) {
        if c.peek() == Some(b'r') {
            raw = true;
        }
        c.bump();
        if matches!(c.peek(), Some(b'"' | b'#' | b'\'')) {
            break;
        }
    }
    if raw {
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        c.bump(); // opening quote
        // scan to `"` followed by `hashes` hashes
        loop {
            match c.peek() {
                None => break,
                Some(b'"') => {
                    c.bump();
                    let mut seen = 0usize;
                    while seen < hashes && c.peek() == Some(b'#') {
                        c.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {
                    c.bump();
                }
            }
        }
        TokenKind::RawStr
    } else if c.peek() == Some(b'\'') {
        lex_quote(c)
    } else {
        lex_string(c);
        TokenKind::Str
    }
}

/// Lexes a `"…"` string with escapes; the cursor sits on the opening
/// quote.
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.peek() {
            None => break, // unterminated: runs to EOF
            Some(b'\\') => {
                c.bump();
                c.bump(); // the escaped char (fine for \", \\, \n, …)
            }
            Some(b'"') => {
                c.bump();
                break;
            }
            Some(_) => {
                c.bump();
            }
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal); the
/// cursor sits on the quote.
fn lex_quote(c: &mut Cursor<'_>) -> TokenKind {
    c.bump(); // the quote
    match c.peek() {
        Some(b'\\') => {
            // escape: definitely a char literal
            c.bump();
            c.bump();
            c.eat_while(|b| b != b'\'');
            c.bump();
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // could be 'a' (char) or 'a / 'static (lifetime): scan the
            // identifier run and look for a closing quote
            c.eat_while(is_ident_continue);
            if c.peek() == Some(b'\'') {
                c.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // e.g. '(' — a plain char literal
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Lifetime,
    }
}

/// Lexes a numeric literal; the cursor sits on its first digit. Careful
/// with `0..10` (range, not float) and `1.max(2)` (method call on an
/// integer).
fn lex_number(c: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if c.peek() == Some(b'0') && matches!(c.peek_at(1), Some(b'x' | b'o' | b'b')) {
        c.bump();
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokenKind::Int;
    }
    c.eat_while(|b| b.is_ascii_digit() || b == b'_');
    if c.peek() == Some(b'.') {
        match c.peek_at(1) {
            // `0..10`: the dot belongs to the range operator
            Some(b'.') => {}
            // `1.max(2)`: the dot is a method call
            Some(b) if is_ident_start(b) => {}
            _ => {
                float = true;
                c.bump();
                c.eat_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
    }
    if matches!(c.peek(), Some(b'e' | b'E'))
        && (matches!(c.peek_at(1), Some(b'+' | b'-')) || c.peek_at(1).is_some_and(|b| b.is_ascii_digit()))
    {
        float = true;
        c.bump();
        if matches!(c.peek(), Some(b'+' | b'-')) {
            c.bump();
        }
        c.eat_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // type suffix (u64, f32, …)
    let suffix_start = c.pos;
    c.eat_while(is_ident_continue);
    let had_float_suffix = {
        let s = &c.src[suffix_start..c.pos];
        s.starts_with(b"f32") || s.starts_with(b"f64")
    };
    if float || had_float_suffix {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

/// Lexes punctuation, combining only the multi-char operators the rules
/// look at (`::`, `=>`, `..`, `->`).
fn lex_punct(c: &mut Cursor<'_>) -> String {
    let two = match (c.peek(), c.peek_at(1)) {
        (Some(b':'), Some(b':')) => Some("::"),
        (Some(b'='), Some(b'>')) => Some("=>"),
        (Some(b'.'), Some(b'.')) => Some(".."),
        (Some(b'-'), Some(b'>')) => Some("->"),
        _ => None,
    };
    if let Some(op) = two {
        c.bump();
        c.bump();
        op.to_string()
    } else {
        let b = c.bump().unwrap_or(b' ');
        (b as char).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_string_contents_are_not_code() {
        let toks = kinds(r####"let s = r#"x.unwrap() /* not code */"#;"####);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_identifier_is_an_identifier_not_a_string() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("a /* outer /* inner.unwrap() */ still comment */ b");
        let idents: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 { x[i]; } let f = 1.5; let m = 2.max(3);");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Float && t == "1.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "2"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn trailing_and_standalone_comments_are_distinguished() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = br#"raw.unwrap()"#;"##);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("let s = r#\"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("'");
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// example: `x.unwrap()`\nfn f() {}");
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(lexed.comments[0].text.contains("unwrap"));
    }
}
