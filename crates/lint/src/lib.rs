//! `rds-lint`: a workspace-aware static-analysis pass that mechanically
//! enforces the repo's concurrency, durability and error-handling
//! invariants (the ones PRs 3–5 established by convention).
//!
//! The crate is deliberately dependency-free: a hand-rolled Rust lexer
//! ([`lexer`]) feeds a token-stream rule engine ([`rules`]) that knows
//! which crates each rule scopes to and which `#[cfg(test)]`/`#[test]`
//! regions are exempt. The binary (`cargo run -p rds-lint`) scans every
//! first-party `.rs` file, prints `file:line:col: rule-id message`
//! diagnostics, writes a machine-readable `LINT_report.json`, and exits
//! nonzero on any finding — `ci.sh` gates on it between clippy and the
//! doc build.
//!
//! Escape hatch: `// lint:allow(<rule>) <justification>` on the
//! offending line or the line above suppresses one rule there; an empty
//! justification invalidates the allow and is itself reported (L0).

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use rules::{check_file, Finding, RULES};

use std::path::Path;

/// Scans the workspace rooted at `root`; returns the sorted findings and
/// the number of files scanned.
pub fn scan_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let files = workspace::source_files(root);
    let n = files.len();
    let mut findings = Vec::new();
    for (rel, abs) in files {
        let Ok(src) = std::fs::read_to_string(&abs) else {
            continue;
        };
        findings.extend(check_file(&rel, &src));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    (findings, n)
}
