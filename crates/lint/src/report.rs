//! Diagnostic rendering: `path:line:col: rule message` text lines plus a
//! hand-emitted machine-readable JSON report (the crate is
//! dependency-free, so serialization is spelled out by hand).

use crate::rules::Finding;

/// One `file:line:col: rule-id message` line per finding.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {} {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    out
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable report: version, scan root, file count, findings.
pub fn render_json(root: &str, files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", json_escape(root)));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "L1",
            path: "crates/core/src/f0.rs".to_string(),
            line: 7,
            col: 13,
            message: "a \"quoted\" message".to_string(),
        }
    }

    #[test]
    fn text_format_is_clickable() {
        let text = render_text(&[finding()]);
        assert_eq!(
            text,
            "crates/core/src/f0.rs:7:13: L1 a \"quoted\" message\n"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json("/repo", 3, &[finding()]);
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 7"));
    }

    #[test]
    fn empty_report_is_well_formed() {
        let json = render_json("/repo", 0, &[]);
        assert!(json.contains("\"findings\": []"));
    }
}
