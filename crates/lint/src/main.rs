//! The `rds-lint` binary: scan the workspace, print diagnostics, write
//! `LINT_report.json`, exit nonzero on findings.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/environment error.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use rds_lint::{report, rules, scan_workspace, workspace};

/// Writes to stdout, swallowing broken-pipe errors so `rds-lint | head`
/// exits cleanly instead of panicking in `println!`.
fn out(s: impl AsRef<str>) {
    let _ = std::io::stdout().write_all(s.as_ref().as_bytes());
}

fn usage() {
    eprintln!(
        "usage: rds-lint [--root <dir>] [--report <path>] [--list]\n\
         \n\
         Scans every first-party .rs file in the workspace for violations\n\
         of the repo's invariant lints (L1..L8), prints\n\
         file:line:col: rule-id message diagnostics, and writes a\n\
         machine-readable JSON report (default: <root>/LINT_report.json)."
    );
}

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut report_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--report" => match args.next() {
                Some(v) => report_arg = Some(PathBuf::from(v)),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (id, desc) in rules::RULES {
                    out(format!("{id}: {desc}\n"));
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rds-lint: unknown argument `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rds-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg.or_else(|| workspace::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("rds-lint: no workspace Cargo.toml found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    let (findings, files_scanned) = scan_workspace(&root);
    out(report::render_text(&findings));

    let json = report::render_json(&root.to_string_lossy(), files_scanned, &findings);
    let report_path = report_arg.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&report_path, json) {
        eprintln!(
            "rds-lint: cannot write report {}: {e}",
            report_path.display()
        );
        return ExitCode::from(2);
    }

    if findings.is_empty() {
        out(format!("rds-lint: {files_scanned} files scanned, no findings\n"));
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rds-lint: {} finding(s) across {files_scanned} files (report: {})",
            findings.len(),
            report_path.display()
        );
        ExitCode::FAILURE
    }
}
