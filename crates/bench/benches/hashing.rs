//! Cost of the k-wise independent hash as a function of the independence
//! parameter, and of the combined cell-sampling path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_hashing::{CellHasher, KWiseHash};
use std::hint::black_box;

fn bench_kwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("kwise_hash");
    group.throughput(Throughput::Elements(1024));
    for k in [2usize, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(3);
        let h = KWiseHash::new(k, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for x in 0..1024u64 {
                    acc ^= h.hash(black_box(x));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_cell_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let hasher = CellHasher::new(16, &mut rng);
    let cells: Vec<[i64; 5]> = (0..1024)
        .map(|i| [i, -i, 2 * i, i % 7, i / 3])
        .collect();
    c.bench_function("cell_sampled_level6", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for cell in &cells {
                if hasher.sampled(black_box(cell), 6) {
                    count += 1;
                }
            }
            black_box(count)
        });
    });
}

criterion_group!(benches, bench_kwise, bench_cell_sampling);
criterion_main!(benches);
