//! Per-item processing cost of Algorithm 1 (the paper's Figure 13 metric)
//! on scaled-down versions of the evaluation datasets.
//!
//! The full-size measurement (paper-comparable numbers) lives in the
//! `figures` binary (`fig13`); this bench gives Criterion-quality
//! statistics on smaller streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_datasets::{rand_cloud, uniform_dups, yacht_like, Dataset};
use std::hint::black_box;

fn scaled_dataset(name: &str, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = match name {
        "Rand5" => rand_cloud(200, 5, &mut rng),
        "Rand20" => rand_cloud(200, 20, &mut rng),
        "Yacht" => yacht_like(&mut rng),
        _ => unreachable!(),
    };
    let mut ds = uniform_dups(name, &base, 10, &mut rng);
    ds.shuffle(&mut rng);
    ds
}

fn bench_ptime(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_scan");
    for name in ["Rand5", "Rand20", "Yacht"] {
        let ds = scaled_dataset(name, 42);
        group.throughput(Throughput::Elements(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &ds, |b, ds| {
            b.iter(|| {
                let mut s = RobustL0Sampler::try_new(
                    SamplerConfig::builder(ds.dim, ds.alpha)
                        .seed(7)
                        .expected_len(ds.len() as u64).build().unwrap(),
                ).unwrap();
                for lp in &ds.points {
                    s.process(black_box(&lp.point));
                }
                black_box(s.accept_set().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ptime);
criterion_main!(benches);
