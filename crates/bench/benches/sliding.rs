//! Throughput of the hierarchical sliding-window sampler (Algorithm 3) as
//! a function of the window size — the `O(log w log m)` claim of
//! Theorem 2.7 predicts a mild growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rds_core::{SamplerConfig, SlidingWindowSampler};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use std::hint::black_box;

fn stream(n: u64, n_groups: u64) -> Vec<StreamItem> {
    (0..n)
        .map(|i| {
            StreamItem::new(
                Point::new(vec![
                    ((i * 13) % n_groups) as f64 * 10.0,
                    ((i * 7) % n_groups) as f64 * 10.0,
                ]),
                Stamp::at(i),
            )
        })
        .collect()
}

fn bench_sliding(c: &mut Criterion) {
    let items = stream(8192, 1024);
    let mut group = c.benchmark_group("sliding_window_scan");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for w in [256u64, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let cfg = SamplerConfig::builder(2, 0.5)
                    .seed(11)
                    .expected_len(items.len() as u64)
                    .kappa0(2.0).build().unwrap();
                let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(w)).unwrap();
                for it in &items {
                    s.process(black_box(it));
                }
                black_box(s.query())
            });
        });
    }
    group.finish();
}

fn bench_fixed_rate_subroutine(c: &mut Criterion) {
    use rds_core::FixedRateWindowSampler;
    let items = stream(4096, 512);
    let mut group = c.benchmark_group("fixed_rate_scan");
    group.throughput(Throughput::Elements(items.len() as u64));
    for level in [0u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &lvl| {
            b.iter(|| {
                let cfg = SamplerConfig::builder(2, 0.5)
                    .seed(13)
                    .expected_len(items.len() as u64).build().unwrap();
                let mut s = FixedRateWindowSampler::new(cfg, Window::Sequence(512), lvl);
                for it in &items {
                    s.process(black_box(it));
                }
                black_box(s.accepted_len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sliding, bench_fixed_rate_subroutine);
criterion_main!(benches);
