//! Multi-tenant registry at scale: one process, a million keyed streams,
//! a global space budget — with machine-readable output.
//!
//! The workload models a serving tier in front of millions of per-key
//! samplers. Phase one touches **every** tenant in the key space once
//! (the worst case for the budget: nothing is hot yet, every admission
//! beyond the budget evicts a victim to disk). Phase two fires
//! Zipf(θ)-distributed traffic from [`rds_stream::ZipfKeys`] — a few
//! head tenants absorb most of the ops and stay resident while tail
//! touches fault spilled tenants back in — and is the steady-state
//! throughput number.
//!
//! Two claims are checked and written to `BENCH_tenants.json`:
//!
//! 1. **The budget holds.** `resident_words()` is sampled after every
//!    single op in both phases; the maximum observed must stay at or
//!    under the configured budget. `ci.sh` gates on this field.
//! 2. **Eviction is invisible.** Sentinel tenants (a head, a torso and
//!    the coldest tail rank) have their exact item sequences recorded
//!    during the run. Afterwards each sentinel is force-evicted and
//!    re-touched (faulting a restore from its spill container), and its
//!    `f0` bits, `seen` count and sample draws must equal a control
//!    registry that replayed the same items with a budget large enough
//!    to never evict.
//!
//! `RDS_BENCH_FAST=1` shrinks the key space to a smoke test (used by
//! CI); `RDS_BENCH_OUT` overrides the output path.

use rds_geometry::Point;
use rds_stream::ZipfKeys;
use rds_tenant::{TenantRegistry, TenantTemplate};
use serde::Serialize;
use std::time::Instant;

const THETA: f64 = 1.0;
const SEED: u64 = 42;
/// Tenants the budget should comfortably hold resident at once.
const RESIDENT_TARGET: usize = 1_024;

fn fast_mode() -> bool {
    std::env::var_os("RDS_BENCH_FAST").is_some_and(|v| v != "0")
}

fn template() -> TenantTemplate {
    let mut t = TenantTemplate::new(1, 0.5);
    t.seed = SEED;
    t.expected_len = 4_096;
    t
}

fn tenant_id(rank: u64) -> String {
    format!("t{rank:07}")
}

/// The item a tenant sees on its `touch`-th visit: entities are
/// well-separated on a 1-D lattice, with every fifth touch jittered
/// into a near-duplicate of an earlier entity.
fn item(touch: u64) -> Point {
    let entity = touch / 5 + touch % 5;
    let jitter = 0.01 * (touch % 5) as f64;
    Point::new(vec![entity as f64 * 10.0 + jitter])
}

#[derive(Serialize)]
struct PhaseRow {
    ops: u64,
    ops_per_sec: f64,
    max_resident_words: u64,
}

#[derive(Serialize)]
struct TenantBenchReport {
    key_space: u64,
    theta: f64,
    budget_words: u64,
    words_per_tenant_estimate: u64,
    cold_sweep: PhaseRow,
    zipf_steady_state: PhaseRow,
    tenants: u64,
    resident: u64,
    final_resident_words: u64,
    spills: u64,
    restores: u64,
    /// max(resident_words) across every op of both phases stayed at or
    /// under `budget_words` — the field `ci.sh` gates on.
    resident_bounded_by_budget: bool,
    /// Force-evicted sentinels answered bit-identically to an
    /// eviction-free control after faulting back in.
    retouch_bit_identical: bool,
}

/// Per-tenant words of a freshly built sampler after one item, measured
/// against a throwaway registry so the budget can be expressed in
/// tenants rather than raw machine words.
fn words_per_tenant(spill_dir: &std::path::Path) -> usize {
    let reg = TenantRegistry::new(template(), usize::MAX / 2, spill_dir.join("probe"))
        .expect("probe registry");
    let ack = reg
        .ingest("probe", &[item(0)], None)
        .expect("probe ingest");
    ack.words.max(1)
}

fn scratch() -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rds-bench-tenants-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

fn main() {
    let (key_space, zipf_ops) = if fast_mode() {
        (20_000u64, 20_000u64)
    } else {
        (1_000_000u64, 200_000u64)
    };
    let dir = scratch();
    let per_tenant = words_per_tenant(&dir);
    // Headroom factor 4: tenants grow past their first item as the zipf
    // head accumulates entities, and the budget must absorb that growth
    // for RESIDENT_TARGET concurrently-resident tenants.
    let budget_words = per_tenant * RESIDENT_TARGET * 4;
    let reg = TenantRegistry::new(template(), budget_words, dir.join("spill"))
        .expect("bench registry");

    // Sentinels: a head rank, a torso rank and the coldest tail rank.
    let sentinels = [3u64, key_space / 2, key_space - 1];
    let mut sentinel_log: Vec<Vec<Point>> = vec![Vec::new(); sentinels.len()];
    let mut touches: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut max_resident = 0usize;

    eprintln!(
        "group tenant_registry ({key_space} tenants, budget {budget_words} words \
         ≈ {RESIDENT_TARGET} tenants x4 headroom, zipf θ={THETA})"
    );

    // Phase 1: cold sweep — touch every tenant once.
    let start = Instant::now();
    for rank in 0..key_space {
        let p = item(0);
        reg.ingest(&tenant_id(rank), std::slice::from_ref(&p), None)
            .expect("cold-sweep ingest");
        if let Some(i) = sentinels.iter().position(|&s| s == rank) {
            sentinel_log[i].push(p);
        }
        touches.insert(rank, 1);
        max_resident = max_resident.max(reg.resident_words());
    }
    let cold_elapsed = start.elapsed().as_secs_f64();
    let cold = PhaseRow {
        ops: key_space,
        ops_per_sec: key_space as f64 / cold_elapsed.max(1e-9),
        max_resident_words: max_resident as u64,
    };
    eprintln!(
        "  cold_sweep: {:.0} ops/sec ({} tenants created, max resident {} words)",
        cold.ops_per_sec, key_space, max_resident
    );

    // Phase 2: zipf steady state — head tenants stay hot, tail touches
    // fault spilled tenants back in.
    let mut keys = ZipfKeys::try_new(key_space as usize, THETA, SEED).expect("zipf keys");
    let start = Instant::now();
    for _ in 0..zipf_ops {
        let rank = keys.next_key();
        let touch = touches.entry(rank).or_insert(0);
        let p = item(*touch);
        *touch += 1;
        reg.ingest(&tenant_id(rank), std::slice::from_ref(&p), None)
            .expect("zipf ingest");
        if let Some(i) = sentinels.iter().position(|&s| s == rank) {
            sentinel_log[i].push(p);
        }
        max_resident = max_resident.max(reg.resident_words());
    }
    let zipf_elapsed = start.elapsed().as_secs_f64();
    let zipf = PhaseRow {
        ops: zipf_ops,
        ops_per_sec: zipf_ops as f64 / zipf_elapsed.max(1e-9),
        max_resident_words: max_resident as u64,
    };
    eprintln!(
        "  zipf_steady_state: {:.0} ops/sec ({} ops, max resident {} words)",
        zipf.ops_per_sec, zipf_ops, max_resident
    );

    // Claim 2: force-evict each sentinel, fault it back, compare bits
    // against an eviction-free control that replayed the same items.
    let control = TenantRegistry::new(template(), usize::MAX / 2, dir.join("control"))
        .expect("control registry");
    let mut retouch_ok = true;
    for (i, &rank) in sentinels.iter().enumerate() {
        let id = tenant_id(rank);
        for p in &sentinel_log[i] {
            control
                .ingest(&id, std::slice::from_ref(p), None)
                .expect("control ingest");
        }
        reg.evict(&id).expect("explicit evict");
        let evicted_f0 = reg.f0_estimate(&id).expect("re-touch f0");
        let control_f0 = control.f0_estimate(&id).expect("control f0");
        // GroupRecord carries no PartialEq; project onto a comparable
        // fingerprint (rep bits, hash, count, reservoir bits).
        let fingerprint = |r: Option<rds_core::GroupRecord>| {
            r.map(|g| {
                (
                    g.rep.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                    g.cell_hash,
                    g.count,
                    g.reservoir.coords().iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                )
            })
        };
        let evicted_q: Vec<_> = (0..4)
            .map(|d| fingerprint(reg.query_at(&id, d).expect("re-touch query")))
            .collect();
        let control_q: Vec<_> = (0..4)
            .map(|d| fingerprint(control.query_at(&id, d).expect("control query")))
            .collect();
        let identical = evicted_f0.to_bits() == control_f0.to_bits() && evicted_q == control_q;
        if !identical {
            eprintln!(
                "  MISMATCH tenant {id}: f0 {evicted_f0} vs control {control_f0} \
                 (bits {:#x} vs {:#x})",
                evicted_f0.to_bits(),
                control_f0.to_bits()
            );
        }
        retouch_ok &= identical;
    }
    eprintln!(
        "  retouch_bit_identical: {retouch_ok} ({} sentinels force-evicted and faulted back)",
        sentinels.len()
    );

    let stats = reg.stats();
    let bounded = max_resident <= budget_words;
    eprintln!(
        "  budget: max resident {} / {} words (bounded: {bounded}); \
         {} spills, {} restores across {} tenants",
        max_resident, budget_words, stats.spills, stats.restores, stats.tenants
    );

    let report = TenantBenchReport {
        key_space,
        theta: THETA,
        budget_words: budget_words as u64,
        words_per_tenant_estimate: per_tenant as u64,
        cold_sweep: cold,
        zipf_steady_state: zipf,
        tenants: stats.tenants,
        resident: stats.resident,
        final_resident_words: stats.resident_words,
        spills: stats.spills,
        restores: stats.restores,
        resident_bounded_by_budget: bounded,
        retouch_bit_identical: retouch_ok,
    };
    let out = std::env::var("RDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_tenants.json".into());
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_tenants.json");
    eprintln!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(bounded, "resident_words exceeded the budget");
    assert!(retouch_ok, "a re-touched sentinel diverged from control");
}
