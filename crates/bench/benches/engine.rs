//! Throughput of the sharded ingestion engine at 1/2/4/8 shards against
//! the plain single-stream sampler, plus the concurrent serving rate of
//! the writer/reader split — with machine-readable output.
//!
//! The workload is the Section 5 F0 regime (threshold `kappa_B / eps^2`)
//! on a stream with many entities, where Algorithm 1's per-point linear
//! scan over the candidate sets dominates. Entity-affine routing gives
//! each of `N` shards `~F0 / N` candidate groups, so the aggregate scan
//! work per point drops by the shard factor — the speedup is algorithmic
//! and shows up even on a single hardware thread; multicore machines add
//! parallelism on top.
//!
//! The sharded group feeds the engine from **multiple feeder threads**
//! (one per shard) pushing pre-batched points through a bounded
//! channel, so stream generation and routing never serialize behind a
//! single producer loop; each row also reports per-shard utilization
//! (the fraction of the stream routed to each shard) so skewed routing
//! is visible in the numbers instead of silently flattening the curve.
//!
//! The concurrent group models a *serving* tier: readers issue query
//! bursts at a bounded rate (sleeping between bursts) rather than
//! spinning — a spin loop measures scheduler starvation, not snapshot
//! cost, and on small machines it starves the writer of every cycle.
//! The writer's points/sec under this load, relative to the unsharded
//! baseline, is the regression metric `ci.sh` gates on.
//!
//! Besides the human-readable lines, the bench writes `BENCH_engine.json`
//! (override the location with `RDS_BENCH_OUT`): points/sec per shard
//! count, the unsharded baseline, and — for the split facade — writer
//! points/sec with four readers querying concurrently plus the readers'
//! aggregate queries/sec during ingest. `RDS_BENCH_FAST=1` shrinks the
//! workload to a smoke test (used by CI).

use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use robust_distinct_sampling::Rds;
use serde::Serialize;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Entities on a well-separated 2-D lattice with near-duplicate jitter.
fn stream(n_points: u64, n_entities: u64) -> Vec<Point> {
    (0..n_points)
        .map(|i| {
            let e = i % n_entities;
            let jitter = 0.01 * ((i / n_entities) % 5) as f64;
            Point::new(vec![(e % 64) as f64 * 10.0 + jitter, (e / 64) as f64 * 10.0])
        })
        .collect()
}

const EPS: f64 = 0.09; // threshold 16/eps^2 ~ 1975 ≈ n_entities: no subsampling

fn fast_mode() -> bool {
    std::env::var_os("RDS_BENCH_FAST").is_some_and(|v| v != "0")
}

fn f0_threshold() -> usize {
    (rds_core::DEFAULT_KAPPA_B / (EPS * EPS)).ceil() as usize
}

fn config(n_points: u64) -> SamplerConfig {
    SamplerConfig::builder(2, 0.5)
        .seed(42)
        .expected_len(n_points)
        .build()
        .expect("valid benchmark configuration")
}

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    feeders: usize,
    points_per_sec: f64,
    /// Fraction of the stream routed to each shard (sums to 1): flat
    /// means the entity hash spread the load; a spike means one shard
    /// did the work and the scaling number is not trustworthy.
    shard_utilization: Vec<f64>,
}

#[derive(Serialize)]
struct ConcurrentRow {
    shards: usize,
    readers: usize,
    writer_points_per_sec: f64,
    reader_queries_per_sec: f64,
}

#[derive(Serialize)]
struct EngineBenchReport {
    n_points: u64,
    n_entities: u64,
    iterations: u32,
    unsharded_points_per_sec: f64,
    sharded: Vec<ShardRow>,
    concurrent: ConcurrentRow,
}

/// Best-of-`iters` throughput of `run` over `n_points` items.
fn points_per_sec(n_points: u64, iters: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    n_points as f64 / best
}

fn bench_unsharded(points: &[Point], iters: u32) -> f64 {
    let n = points.len() as u64;
    points_per_sec(n, iters, || {
        let mut s =
            RobustL0Sampler::try_with_threshold(config(n), f0_threshold()).expect("valid");
        for batch in rds_stream::batched(points.iter().cloned(), 256) {
            s.process_batch(black_box(&batch));
        }
        black_box(s.f0_estimate());
    })
}

/// Sharded ingestion fed by `shards` feeder threads: each feeder owns a
/// contiguous slice of the stream and pushes 256-point batches through
/// a bounded channel; the engine thread drains it. Returns
/// (points/sec, per-shard utilization).
fn bench_sharded(points: &[Point], shards: usize, iters: u32) -> (f64, Vec<f64>) {
    let n = points.len() as u64;
    let feeders = shards.max(2);
    let mut utilization = Vec::new();
    let pps = points_per_sec(n, iters, || {
        let mut engine = ShardedEngine::try_with_threshold(config(n), shards, f0_threshold())
            .expect("valid");
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<Point>>(feeders * 2);
        std::thread::scope(|scope| {
            let slice = points.len().div_ceil(feeders).max(1);
            for chunk in points.chunks(slice) {
                let tx = tx.clone();
                scope.spawn(move || {
                    for batch in rds_stream::batched(chunk.iter().cloned(), 256) {
                        if tx.send(batch).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            while let Ok(batch) = rx.recv() {
                engine.ingest_batch(batch);
            }
        });
        let loads = engine.shard_loads();
        let total: u64 = loads.iter().sum();
        utilization = loads
            .iter()
            .map(|&l| l as f64 / total.max(1) as f64)
            .collect();
        black_box(engine.finish().f0_estimate());
    });
    (pps, utilization)
}

/// The split facade under concurrent load: one writer ingesting the whole
/// stream, `readers` cloned readers querying in a loop the whole time.
/// Returns (writer points/sec, aggregate reader queries/sec).
fn bench_concurrent(points: &[Point], shards: usize, readers: usize) -> (f64, f64) {
    let n = points.len() as u64;
    let (mut writer, reader) = Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(42)
        .expected_len(n)
        .count_accuracy(EPS)
        .shards(shards)
        .publish_every(1024)
        .build_split()
        .expect("valid");
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        for _ in 0..readers {
            let r = reader.clone();
            let done = &done;
            let queries = &queries;
            scope.spawn(move || {
                let mut local = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // a serving burst against the current snapshot, then
                    // yield: serving tiers are rate-bound; an unbounded
                    // spin here measures scheduler starvation of the
                    // writer, not the cost of concurrent queries
                    for _ in 0..8 {
                        black_box(r.f0_estimate());
                        black_box(r.query());
                        local += 2;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                queries.fetch_add(local, Ordering::Relaxed);
            });
        }
        for p in points {
            writer.process(p.clone());
        }
        writer.publish();
        let elapsed = start.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        elapsed
    });
    let total_queries = queries.load(Ordering::Relaxed);
    (n as f64 / elapsed, total_queries as f64 / elapsed)
}

fn main() {
    let (n_points, n_entities, iters) = if fast_mode() {
        (4_000u64, 500u64, 1u32)
    } else {
        (16_000u64, 2_000u64, 3u32)
    };
    let points = stream(n_points, n_entities);

    // Untimed warm-up traversal: a fresh process pays cold-cache and
    // clock-ramp penalties on its first pass over the stream, which at
    // the smoke-test workload size would swamp the measured loop.
    let _ = bench_unsharded(&points, 1);

    eprintln!("group engine_ingest ({n_points} points, {n_entities} entities)");
    let unsharded = bench_unsharded(&points, iters);
    eprintln!("  unsharded_baseline: {unsharded:.0} points/sec");
    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (pps, shard_utilization) = bench_sharded(&points, shards, iters);
        let spread = shard_utilization
            .iter()
            .map(|u| format!("{:.0}%", u * 100.0))
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!("  shards/{shards}: {pps:.0} points/sec (utilization {spread})");
        sharded.push(ShardRow {
            shards,
            feeders: shards.max(2),
            points_per_sec: pps,
            shard_utilization,
        });
    }

    eprintln!("group split_serving (writer + 4 readers, 4 shards)");
    let (writer_pps, reader_qps) = bench_concurrent(&points, 4, 4);
    eprintln!("  writer: {writer_pps:.0} points/sec while readers query");
    eprintln!("  readers: {reader_qps:.0} queries/sec during ingest");

    let report = EngineBenchReport {
        n_points,
        n_entities,
        iterations: iters,
        unsharded_points_per_sec: unsharded,
        sharded,
        concurrent: ConcurrentRow {
            shards: 4,
            readers: 4,
            writer_points_per_sec: writer_pps,
            reader_queries_per_sec: reader_qps,
        },
    };
    let out = std::env::var("RDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    eprintln!("wrote {out}");
}
