//! Throughput of the sharded ingestion engine at 1/2/4/8 shards, against
//! the plain single-stream sampler.
//!
//! The workload is the Section 5 F0 regime (threshold `kappa_B / eps^2`)
//! on a stream with many entities, where Algorithm 1's per-point linear
//! scan over the candidate sets dominates. Entity-affine routing gives
//! each of `N` shards `~F0 / N` candidate groups, so the aggregate scan
//! work per point drops by the shard factor — the speedup is algorithmic
//! and shows up even on a single hardware thread; multicore machines add
//! parallelism on top.
//!
//! The unsharded baseline consumes the stream through
//! `rds_stream::batched` + `process_batch`, so both sides amortize
//! per-item overhead the same way and the comparison isolates sharding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use std::hint::black_box;

/// Entities on a well-separated 2-D lattice with near-duplicate jitter.
fn stream(n_points: u64, n_entities: u64) -> Vec<Point> {
    (0..n_points)
        .map(|i| {
            let e = i % n_entities;
            let jitter = 0.01 * ((i / n_entities) % 5) as f64;
            Point::new(vec![(e % 64) as f64 * 10.0 + jitter, (e / 64) as f64 * 10.0])
        })
        .collect()
}

const N_POINTS: u64 = 16_000;
const N_ENTITIES: u64 = 2_000;
const EPS: f64 = 0.09; // threshold 16/eps^2 ~ 1975 ≈ N_ENTITIES: no subsampling

fn f0_threshold() -> usize {
    (rds_core::DEFAULT_KAPPA_B / (EPS * EPS)).ceil() as usize
}

fn config() -> SamplerConfig {
    SamplerConfig::new(2, 0.5)
        .with_seed(42)
        .with_expected_len(N_POINTS)
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let points = stream(N_POINTS, N_ENTITIES);
    let mut group = c.benchmark_group("engine_ingest");
    group.throughput(Throughput::Elements(N_POINTS));

    group.bench_function("unsharded_baseline", |b| {
        b.iter(|| {
            let mut s = RobustL0Sampler::with_threshold(config(), f0_threshold());
            for batch in rds_stream::batched(points.iter().cloned(), 256) {
                s.process_batch(black_box(&batch));
            }
            black_box(s.f0_estimate())
        });
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut engine =
                        ShardedEngine::with_threshold(config(), shards, f0_threshold());
                    engine.ingest_batch(points.iter().cloned());
                    black_box(engine.finish().f0_estimate())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_ingest);
criterion_main!(benches);
