//! Throughput of the sharded ingestion engine at 1/2/4/8 shards against
//! the plain single-stream sampler, plus the concurrent serving rate of
//! the writer/reader split — with machine-readable output.
//!
//! The workload is the Section 5 F0 regime (threshold `kappa_B / eps^2`)
//! on a stream with many entities, where Algorithm 1's per-point linear
//! scan over the candidate sets dominates. Entity-affine routing gives
//! each of `N` shards `~F0 / N` candidate groups, so the aggregate scan
//! work per point drops by the shard factor — the speedup is algorithmic
//! and shows up even on a single hardware thread; multicore machines add
//! parallelism on top.
//!
//! Besides the human-readable lines, the bench writes `BENCH_engine.json`
//! (override the location with `RDS_BENCH_OUT`): points/sec per shard
//! count, the unsharded baseline, and — for the split facade — writer
//! points/sec with four readers querying concurrently plus the readers'
//! aggregate queries/sec during ingest. `RDS_BENCH_FAST=1` shrinks the
//! workload to a smoke test (used by CI).

use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use robust_distinct_sampling::Rds;
use serde::Serialize;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Entities on a well-separated 2-D lattice with near-duplicate jitter.
fn stream(n_points: u64, n_entities: u64) -> Vec<Point> {
    (0..n_points)
        .map(|i| {
            let e = i % n_entities;
            let jitter = 0.01 * ((i / n_entities) % 5) as f64;
            Point::new(vec![(e % 64) as f64 * 10.0 + jitter, (e / 64) as f64 * 10.0])
        })
        .collect()
}

const EPS: f64 = 0.09; // threshold 16/eps^2 ~ 1975 ≈ n_entities: no subsampling

fn fast_mode() -> bool {
    std::env::var_os("RDS_BENCH_FAST").is_some_and(|v| v != "0")
}

fn f0_threshold() -> usize {
    (rds_core::DEFAULT_KAPPA_B / (EPS * EPS)).ceil() as usize
}

fn config(n_points: u64) -> SamplerConfig {
    SamplerConfig::builder(2, 0.5)
        .seed(42)
        .expected_len(n_points)
        .build()
        .expect("valid benchmark configuration")
}

#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    points_per_sec: f64,
}

#[derive(Serialize)]
struct ConcurrentRow {
    shards: usize,
    readers: usize,
    writer_points_per_sec: f64,
    reader_queries_per_sec: f64,
}

#[derive(Serialize)]
struct EngineBenchReport {
    n_points: u64,
    n_entities: u64,
    iterations: u32,
    unsharded_points_per_sec: f64,
    sharded: Vec<ShardRow>,
    concurrent: ConcurrentRow,
}

/// Best-of-`iters` throughput of `run` over `n_points` items.
fn points_per_sec(n_points: u64, iters: u32, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    n_points as f64 / best
}

fn bench_unsharded(points: &[Point], iters: u32) -> f64 {
    let n = points.len() as u64;
    points_per_sec(n, iters, || {
        let mut s =
            RobustL0Sampler::try_with_threshold(config(n), f0_threshold()).expect("valid");
        for batch in rds_stream::batched(points.iter().cloned(), 256) {
            s.process_batch(black_box(&batch));
        }
        black_box(s.f0_estimate());
    })
}

fn bench_sharded(points: &[Point], shards: usize, iters: u32) -> f64 {
    let n = points.len() as u64;
    points_per_sec(n, iters, || {
        let mut engine = ShardedEngine::try_with_threshold(config(n), shards, f0_threshold())
            .expect("valid");
        engine.ingest_batch(points.iter().cloned());
        black_box(engine.finish().f0_estimate());
    })
}

/// The split facade under concurrent load: one writer ingesting the whole
/// stream, `readers` cloned readers querying in a loop the whole time.
/// Returns (writer points/sec, aggregate reader queries/sec).
fn bench_concurrent(points: &[Point], shards: usize, readers: usize) -> (f64, f64) {
    let n = points.len() as u64;
    let (mut writer, reader) = Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(42)
        .expected_len(n)
        .count_accuracy(EPS)
        .shards(shards)
        .publish_every(1024)
        .build_split()
        .expect("valid");
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        for _ in 0..readers {
            let r = reader.clone();
            let done = &done;
            let queries = &queries;
            scope.spawn(move || {
                let mut local = 0u64;
                while !done.load(Ordering::Relaxed) {
                    black_box(r.f0_estimate());
                    black_box(r.query());
                    local += 2;
                }
                queries.fetch_add(local, Ordering::Relaxed);
            });
        }
        for p in points {
            writer.process(p.clone());
        }
        writer.publish();
        let elapsed = start.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        elapsed
    });
    let total_queries = queries.load(Ordering::Relaxed);
    (n as f64 / elapsed, total_queries as f64 / elapsed)
}

fn main() {
    let (n_points, n_entities, iters) = if fast_mode() {
        (4_000u64, 500u64, 1u32)
    } else {
        (16_000u64, 2_000u64, 3u32)
    };
    let points = stream(n_points, n_entities);

    eprintln!("group engine_ingest ({n_points} points, {n_entities} entities)");
    let unsharded = bench_unsharded(&points, iters);
    eprintln!("  unsharded_baseline: {unsharded:.0} points/sec");
    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let pps = bench_sharded(&points, shards, iters);
        eprintln!("  shards/{shards}: {pps:.0} points/sec");
        sharded.push(ShardRow {
            shards,
            points_per_sec: pps,
        });
    }

    eprintln!("group split_serving (writer + 4 readers, 4 shards)");
    let (writer_pps, reader_qps) = bench_concurrent(&points, 4, 4);
    eprintln!("  writer: {writer_pps:.0} points/sec while readers query");
    eprintln!("  readers: {reader_qps:.0} queries/sec during ingest");

    let report = EngineBenchReport {
        n_points,
        n_entities,
        iterations: iters,
        unsharded_points_per_sec: unsharded,
        sharded,
        concurrent: ConcurrentRow {
            shards: 4,
            readers: 4,
            writer_points_per_sec: writer_pps,
            reader_queries_per_sec: reader_qps,
        },
    };
    let out = std::env::var("RDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH_engine.json");
    eprintln!("wrote {out}");
}
