//! Ablations of the design choices documented in DESIGN.md:
//!
//! * grid side factor (`alpha` vs `2 alpha` vs the Section 4 `d * alpha`);
//! * acceptance threshold constant `kappa_0` (space/time trade-off);
//! * hash independence `k` (theory says `Θ(log m)`; how much does it
//!   cost?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_datasets::{rand_cloud, uniform_dups, Dataset};
use std::hint::black_box;

fn dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(77);
    let base = rand_cloud(200, 5, &mut rng);
    let mut ds = uniform_dups("ablation", &base, 10, &mut rng);
    ds.shuffle(&mut rng);
    ds
}

fn scan(cfg: SamplerConfig, ds: &Dataset) -> usize {
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for lp in &ds.points {
        s.process(black_box(&lp.point));
    }
    s.peak_words()
}

fn bench_side_factor(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("ablation_side_factor");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for side in [1.0f64, 2.0, 5.0] {
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(5)
            .expected_len(ds.len() as u64)
            .side_factor(side).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(side), &cfg, |b, cfg| {
            b.iter(|| black_box(scan(cfg.clone(), &ds)));
        });
    }
    group.finish();
}

fn bench_kappa0(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("ablation_kappa0");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for kappa in [0.5f64, 4.0, 16.0] {
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(5)
            .expected_len(ds.len() as u64)
            .kappa0(kappa).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kappa), &cfg, |b, cfg| {
            b.iter(|| black_box(scan(cfg.clone(), &ds)));
        });
    }
    group.finish();
}

fn bench_independence(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("ablation_hash_independence");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for k in [2usize, 8, 32, 64] {
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(5)
            .expected_len(ds.len() as u64)
            .independence(k).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| black_box(scan(cfg.clone(), &ds)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_side_factor, bench_kappa0, bench_independence);
criterion_main!(benches);
