//! Algorithms 6/7 (`SearchAdj` DFS with pruning) vs the naive `3^d`
//! enumeration the paper's Section 6.2 argues against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rds_geometry::{adjacent_cells, Grid, Point};
use std::hint::black_box;

/// The naive enumeration: visit all 3^d neighbouring cells and test each.
fn brute_force_adj(grid: &Grid, p: &Point, alpha: f64) -> Vec<Vec<i64>> {
    let d = grid.dim();
    let base: Vec<i64> = (0..d)
        .map(|i| grid.grid_coord(p, i).floor() as i64)
        .collect();
    let mut out = Vec::new();
    let total = 3usize.pow(d as u32);
    for code in 0..total {
        let mut cell = base.clone();
        let mut x = code;
        for c in cell.iter_mut() {
            *c += (x % 3) as i64 - 1;
            x /= 3;
        }
        if grid.dist_point_cell(p, &cell) <= alpha {
            out.push(cell);
        }
    }
    out
}

fn bench_adjacency(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("adjacency");
    for d in [2usize, 5, 8, 12] {
        let alpha = 1.0 / (d as f64).powf(1.5);
        let grid = Grid::random(d, alpha, &mut rng);
        let points: Vec<Point> = (0..64)
            .map(|_| Point::new((0..d).map(|_| rng.random_range(0.0..10.0)).collect()))
            .collect();
        group.bench_with_input(BenchmarkId::new("searchadj_dfs", d), &d, |b, _| {
            b.iter(|| {
                for p in &points {
                    black_box(adjacent_cells(&grid, p, alpha));
                }
            });
        });
        if d <= 8 {
            group.bench_with_input(BenchmarkId::new("brute_3d", d), &d, |b, _| {
                b.iter(|| {
                    for p in &points {
                        black_box(brute_force_adj(&grid, p, alpha));
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adjacency);
criterion_main!(benches);
