//! Robust F0 estimation (Section 5) vs the noiseless sketches: throughput
//! and the accuracy/space trade-off in `eps`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rds_baselines::{HyperLogLog, KmvDistinctEstimator};
use rds_core::{RobustF0Estimator, SamplerConfig};
use rds_datasets::{rand_cloud, uniform_dups, Dataset};
use rds_hashing::point_identity;
use std::hint::black_box;

fn noisy_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(21);
    let base = rand_cloud(150, 5, &mut rng);
    let mut ds = uniform_dups("f0bench", &base, 12, &mut rng);
    ds.shuffle(&mut rng);
    ds
}

fn bench_robust_f0(c: &mut Criterion) {
    let ds = noisy_dataset();
    let mut group = c.benchmark_group("robust_f0_scan");
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.sample_size(10);
    for eps in [1.0f64, 0.5, 0.25] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
                        .seed(3)
                        .expected_len(ds.len() as u64).build().unwrap();
                    let mut est = RobustF0Estimator::try_new(cfg, eps, 3).unwrap();
                    for lp in &ds.points {
                        est.process(black_box(&lp.point));
                    }
                    black_box(est.estimate())
                });
            },
        );
    }
    group.finish();
}

fn bench_noiseless_sketches(c: &mut Criterion) {
    let ds = noisy_dataset();
    let ids: Vec<u64> = ds
        .points
        .iter()
        .map(|lp| point_identity(lp.point.coords(), 9))
        .collect();
    let mut group = c.benchmark_group("noiseless_f0_scan");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("kmv256", |b| {
        b.iter(|| {
            let mut e = KmvDistinctEstimator::new(256, 5);
            for &id in &ids {
                e.process(black_box(id));
            }
            black_box(e.estimate())
        });
    });
    group.bench_function("hll_b12", |b| {
        b.iter(|| {
            let mut e = HyperLogLog::new(12, 5);
            for &id in &ids {
                e.process(black_box(id));
            }
            black_box(e.estimate())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_robust_f0, bench_noiseless_sketches);
criterion_main!(benches);
