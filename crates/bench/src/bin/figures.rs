//! Regenerates every figure of the paper's evaluation (Section 6) plus the
//! extension experiments, printing the same rows/series the paper reports.
//!
//! ```text
//! cargo run -p rds-bench --release --bin figures -- <target> [options]
//!
//! targets:
//!   fig5..fig12   empirical sampling distribution of one dataset
//!   fig13         pTime (ms/item) for all eight datasets
//!   fig14         pSpace (words) for all eight datasets
//!   fig15         stdDevNm and maxDevNm for all eight datasets
//!   bias          robust sampler vs noiseless min-rank baseline
//!   sw            sliding-window sampler uniformity (Theorem 2.7)
//!   f0            robust F0 vs noiseless sketches on noisy data
//!   all           everything above
//!
//! options:
//!   --runs N      sampling runs per dataset (default 2000; 0 = the paper's
//!                 200k/500k counts; the shape is stable far earlier)
//!   --threads N   worker threads (default: available parallelism)
//!   --seed N      base seed (default 1)
//!   --scans N     timing scans per dataset for fig13/fig14 (default 5)
//!   --json PATH   also dump machine-readable results as JSON
//! ```

use rds_baselines::{HyperLogLog, KmvDistinctEstimator, PointMinRankSampler};
use rds_bench::{
    cost_measurement, figure_result, render_histogram, CostResult, FigureResult, GroupLookup,
};
use rds_core::{RobustF0Estimator, SamplerConfig, SlidingWindowSampler};
use rds_datasets::{powerlaw_dups, rand_cloud, PaperDataset};
use rds_hashing::point_identity;
use rds_metrics::SampleHistogram;
use rds_stream::{Stamp, StreamItem, Window};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct Options {
    runs: u64,
    threads: usize,
    seed: u64,
    scans: u32,
    json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            runs: 2000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 1,
            scans: 5,
            json: None,
        }
    }
}

#[derive(Default, Serialize)]
struct AllResults {
    figures: Vec<FigureResult>,
    costs: Vec<CostResult>,
    bias: Option<BiasResult>,
    sliding_window: Option<SwResult>,
    f0: Vec<F0Result>,
}

#[derive(Clone, Debug, Serialize)]
struct BiasResult {
    dataset: String,
    runs: u64,
    robust_max_dev_nm: f64,
    baseline_max_dev_nm: f64,
    baseline_top_group_freq: f64,
    top_group_share_of_points: f64,
}

#[derive(Clone, Debug, Serialize)]
struct SwResult {
    window: u64,
    n_groups: usize,
    runs: u64,
    std_dev_nm: f64,
    max_dev_nm: f64,
}

#[derive(Clone, Debug, Serialize)]
struct F0Result {
    dataset: String,
    true_groups: usize,
    total_points: usize,
    robust_estimate: f64,
    kmv_estimate: f64,
    hll_estimate: f64,
}

fn parse_args() -> (String, Options) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => opts.runs = it.next().expect("--runs N").parse().expect("number"),
            "--threads" => opts.threads = it.next().expect("--threads N").parse().expect("number"),
            "--seed" => opts.seed = it.next().expect("--seed N").parse().expect("number"),
            "--scans" => opts.scans = it.next().expect("--scans N").parse().expect("number"),
            "--json" => opts.json = Some(it.next().expect("--json PATH").clone()),
            other if !other.starts_with("--") => target = other.to_string(),
            other => panic!("unknown option {other}"),
        }
    }
    (target, opts)
}

fn dataset_for_figure(fig: u32) -> PaperDataset {
    match fig {
        5 => PaperDataset::Rand5,
        6 => PaperDataset::Rand20,
        7 => PaperDataset::Yacht,
        8 => PaperDataset::Seeds,
        9 => PaperDataset::Rand5Pl,
        10 => PaperDataset::Rand20Pl,
        11 => PaperDataset::YachtPl,
        12 => PaperDataset::SeedsPl,
        _ => unreachable!("figures 5-12 only"),
    }
}

fn run_distribution_figure(fig: u32, opts: &Options) -> FigureResult {
    let which = dataset_for_figure(fig);
    let ds = which.generate(opts.seed);
    // `--runs 0` means "use the paper's run counts" (200k / 500k).
    let runs = if opts.runs == 0 {
        which.paper_runs()
    } else {
        opts.runs
    };
    println!(
        "=== Figure {fig}: empirical sampling distribution, {} ===",
        ds.name
    );
    println!(
        "    {} groups, {} points, {} runs (paper: {} runs)",
        ds.n_groups,
        ds.len(),
        runs,
        which.paper_runs()
    );
    let res = figure_result(&ds, runs, opts.seed, opts.threads);
    let expect = res.runs as f64 / res.n_groups as f64;
    println!("    expected count/group {expect:.1}");
    println!("    counts   |{}|", render_histogram(&res.counts, 60));
    println!(
        "    stdDevNm {:.4}   maxDevNm {:.4}   (paper reports <= 0.1 / <= 0.2)",
        res.std_dev_nm, res.max_dev_nm
    );
    println!();
    res
}

fn run_costs(opts: &Options) -> Vec<CostResult> {
    println!("=== Figures 13 & 14: pTime (ms/item) and pSpace (words) ===");
    println!(
        "{:<12} {:>9} {:>14} {:>14}",
        "dataset", "points", "pTime(ms)", "pSpace(words)"
    );
    let mut out = Vec::new();
    for which in PaperDataset::ALL {
        let ds = which.generate(opts.seed);
        let cost = cost_measurement(&ds, opts.scans, opts.seed);
        println!(
            "{:<12} {:>9} {:>14.6} {:>14}",
            cost.dataset, cost.stream_len, cost.p_time_ms, cost.p_space_words
        );
        out.push(cost);
    }
    println!(
        "(paper, C++ on a Xeon E5-2667: pTime 1e-5..3.5e-5 s/item; both metrics grow with dimension)"
    );
    println!();
    out
}

fn run_fig15(results: &[FigureResult]) {
    println!("=== Figure 15: stdDevNm and maxDevNm per dataset ===");
    println!("{:<12} {:>10} {:>10}", "dataset", "stdDevNm", "maxDevNm");
    for r in results {
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            r.dataset, r.std_dev_nm, r.max_dev_nm
        );
    }
    println!("(paper: stdDevNm <= 0.1 and maxDevNm <= 0.2 on all eight datasets)");
    println!();
}

/// The Section 1 motivation experiment: standard distinct sampling is
/// biased toward heavily duplicated groups; the robust sampler is not.
fn run_bias(opts: &Options) -> BiasResult {
    println!("=== Bias: robust sampler vs noiseless min-rank baseline ===");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(opts.seed);
    let base = rand_cloud(50, 5, &mut rng);
    let mut ds = powerlaw_dups("PowerSkew", &base, &mut rng);
    ds.shuffle(&mut rng);
    let lookup = GroupLookup::new(&ds);

    // share of stream points owned by the largest group
    let mut sizes = vec![0u64; ds.n_groups];
    for lp in &ds.points {
        sizes[lp.group] += 1;
    }
    let top_group = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(g, _)| g)
        .expect("non-empty");
    let top_share = sizes[top_group] as f64 / ds.len() as f64;

    let runs = if opts.runs == 0 { 2000 } else { opts.runs.min(2000) };
    let robust = rds_bench::sampling_distribution(&ds, runs, opts.seed, opts.threads);

    let mut baseline = SampleHistogram::new(ds.n_groups);
    for i in 0..runs {
        let mut s = PointMinRankSampler::new(opts.seed ^ (i * 7919 + 3));
        for lp in &ds.points {
            s.process(&lp.point);
        }
        let g = lookup.group_of(s.sample().expect("non-empty"));
        baseline.record(g);
    }
    let res = BiasResult {
        dataset: ds.name.clone(),
        runs,
        robust_max_dev_nm: robust.max_dev_nm(),
        baseline_max_dev_nm: baseline.max_dev_nm(),
        baseline_top_group_freq: baseline.counts()[top_group] as f64 / runs as f64,
        top_group_share_of_points: top_share,
    };
    println!(
        "    {} groups; the largest group owns {:.1}% of the points",
        ds.n_groups,
        100.0 * res.top_group_share_of_points
    );
    println!(
        "    robust sampler    maxDevNm {:.3}  (uniform over groups)",
        res.robust_max_dev_nm
    );
    println!(
        "    min-rank baseline maxDevNm {:.3}; largest group sampled {:.1}% of the time (fair share {:.1}%)",
        res.baseline_max_dev_nm,
        100.0 * res.baseline_top_group_freq,
        100.0 / ds.n_groups as f64,
    );
    println!();
    res
}

/// Empirical check of Theorem 2.7 (no figure in the paper): the sliding
/// window sampler is uniform over the groups of the window.
fn run_sw(opts: &Options) -> SwResult {
    println!("=== Sliding window: uniformity over window groups (Theorem 2.7) ===");
    let n_groups = 24u64;
    let window = 3 * n_groups;
    let stream: Vec<StreamItem> = (0..(6 * n_groups))
        .map(|i| {
            StreamItem::new(
                rds_geometry::Point::new(vec![(i % n_groups) as f64 * 10.0]),
                Stamp::at(i),
            )
        })
        .collect();
    let runs = if opts.runs == 0 { 4000 } else { opts.runs.min(4000) };
    let mut hist = SampleHistogram::new(n_groups as usize);
    for run in 0..runs {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(opts.seed ^ (run * 6151 + 11))
            .expected_len(stream.len() as u64)
            .kappa0(1.0).build().unwrap();
        let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(window)).unwrap();
        for it in &stream {
            s.process(it);
        }
        let q = s.query().expect("window non-empty");
        hist.record((q.latest.get(0) / 10.0).round() as usize);
    }
    let res = SwResult {
        window,
        n_groups: n_groups as usize,
        runs,
        std_dev_nm: hist.std_dev_nm(),
        max_dev_nm: hist.max_dev_nm(),
    };
    println!(
        "    window {} over {} live groups, {} runs",
        res.window, res.n_groups, res.runs
    );
    println!(
        "    stdDevNm {:.4}   maxDevNm {:.4}",
        res.std_dev_nm, res.max_dev_nm
    );
    println!();
    res
}

/// Section 5 + Section 1 motivation: robust F0 vs noiseless sketches on
/// near-duplicate data.
fn run_f0(opts: &Options) -> Vec<F0Result> {
    println!("=== F0: robust estimator vs noiseless sketches on noisy data ===");
    println!(
        "{:<12} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "dataset", "groups", "points", "robust", "KMV", "HLL"
    );
    let mut out = Vec::new();
    for which in [PaperDataset::Rand5, PaperDataset::Seeds] {
        let ds = which.generate(opts.seed);
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(opts.seed)
            .expected_len(ds.len() as u64).build().unwrap();
        let mut robust = RobustF0Estimator::try_new(cfg, 0.3, 7).unwrap();
        let mut kmv = KmvDistinctEstimator::new(512, opts.seed);
        let mut hll = HyperLogLog::new(12, opts.seed);
        for lp in &ds.points {
            robust.process(&lp.point);
            let id = point_identity(lp.point.coords(), 17);
            kmv.process(id);
            hll.process(id);
        }
        let res = F0Result {
            dataset: ds.name.clone(),
            true_groups: ds.n_groups,
            total_points: ds.len(),
            robust_estimate: robust.estimate(),
            kmv_estimate: kmv.estimate(),
            hll_estimate: hll.estimate(),
        };
        println!(
            "{:<12} {:>8} {:>9} {:>12.1} {:>12.1} {:>12.1}",
            res.dataset,
            res.true_groups,
            res.total_points,
            res.robust_estimate,
            res.kmv_estimate,
            res.hll_estimate
        );
        out.push(res);
    }
    println!("(noiseless sketches count every near-duplicate; the robust estimator counts groups)");
    println!();
    out
}

fn main() {
    let (target, opts) = parse_args();
    let mut all = AllResults::default();

    let mut fig_range: Vec<u32> = Vec::new();
    match target.as_str() {
        "all" => fig_range.extend(5..=12),
        t if t.starts_with("fig") => {
            let n: u32 = t[3..].parse().expect("figN");
            if (5..=12).contains(&n) {
                fig_range.push(n);
            }
        }
        _ => {}
    }
    for fig in fig_range {
        all.figures.push(run_distribution_figure(fig, &opts));
    }

    if matches!(target.as_str(), "all" | "fig13" | "fig14") {
        all.costs = run_costs(&opts);
    }

    if matches!(target.as_str(), "all" | "fig15") {
        if all.figures.is_empty() {
            // fig15 needs the distributions; compute them with the
            // requested runs
            for fig in 5..=12 {
                all.figures.push(run_distribution_figure(fig, &opts));
            }
        }
        run_fig15(&all.figures);
    }

    if matches!(target.as_str(), "all" | "bias") {
        all.bias = Some(run_bias(&opts));
    }
    if matches!(target.as_str(), "all" | "sw") {
        all.sliding_window = Some(run_sw(&opts));
    }
    if matches!(target.as_str(), "all" | "f0") {
        all.f0 = run_f0(&opts);
    }

    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&all).expect("serializable");
        std::fs::write(path, json).expect("writable JSON path");
        println!("results written to {path}");
    }

    let mut census: HashMap<&str, usize> = HashMap::new();
    census.insert("figures", all.figures.len());
    census.insert("costs", all.costs.len());
    census.insert("f0", all.f0.len());
    eprintln!("done: {census:?}");
}
