//! HTTP load generator for `rds-server`: keep-alive connections firing
//! a deterministic ingest/query mix, reporting requests/sec and
//! p50/p99 latency per endpoint class to `BENCH_server.json`.
//!
//! With `--addr HOST:PORT` the target is an already-running server
//! (readiness-polled on `/healthz` first); without it an in-process
//! server is started on an ephemeral loopback port so the bin is
//! self-contained. `--shutdown` posts `/admin/shutdown` at the end and
//! requires the drain to succeed — `ci.sh` uses this as its
//! clean-shutdown gate. `RDS_BENCH_FAST=1` shrinks the request counts
//! to a smoke test; `RDS_BENCH_OUT` overrides the output path.
//!
//! `--tenants N` switches the traffic to the multi-tenant routes: every
//! request targets `/t/{tenant}/...` with the tenant drawn from a seeded
//! Zipf(θ=1) distribution over `N` keys ([`rds_stream::ZipfKeys`]), so a
//! hot head shares connections with a long faulting tail — the realistic
//! mix for the registry's eviction machinery. A self-hosted server is
//! then started with tenancy enabled (scratch spill directory, cleaned
//! up on exit); with `--addr` the remote server must have been started
//! with `--tenants`.
//!
//! Exit code 1 when any request got a 5xx or failed at the socket
//! level; 2 on usage errors.

use rds_server::client::Conn;
use rds_server::{bind, BackendConfig, ServerConfig, TenancyConfig};
use rds_stream::ZipfKeys;
use serde::Serialize;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const DIM: usize = 2;
const N_ENTITIES: u64 = 200;
const BATCH: usize = 50;

fn fast_mode() -> bool {
    std::env::var_os("RDS_BENCH_FAST").is_some_and(|v| v != "0")
}

/// One endpoint class's latency profile.
#[derive(Serialize)]
struct ClassStats {
    requests: u64,
    requests_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
}

#[derive(Serialize)]
struct ServerBenchReport {
    addr: String,
    /// Zipf key space of the tenant mix; absent in single-tenant mode.
    tenant_key_space: Option<u64>,
    writer_conns: usize,
    reader_conns: usize,
    total_requests: u64,
    requests_per_sec: f64,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    io_errors: u64,
    ingest: ClassStats,
    query: ClassStats,
    f0: ClassStats,
}

/// Shared tallies; per-request latencies stay thread-local and are
/// merged when the connection threads join.
#[derive(Default)]
struct Tallies {
    s2xx: AtomicU64,
    s4xx: AtomicU64,
    s5xx: AtomicU64,
    io_errors: AtomicU64,
}

impl Tallies {
    fn record(&self, outcome: &std::io::Result<(u16, String)>) {
        match outcome {
            Ok((s, _)) if *s < 300 => self.s2xx.fetch_add(1, Ordering::Relaxed),
            Ok((s, _)) if *s < 500 => self.s4xx.fetch_add(1, Ordering::Relaxed),
            Ok(_) => self.s5xx.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.io_errors.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Deterministic ingest body: `BATCH` points cycling `N_ENTITIES`
/// well-separated entities with near-duplicate jitter, offset by the
/// caller's position in the stream.
fn ingest_body(offset: u64) -> String {
    let rows: Vec<String> = (0..BATCH as u64)
        .map(|j| {
            let i = offset + j;
            let e = i % N_ENTITIES;
            let jitter = 0.01 * ((i / N_ENTITIES) % 5) as f64;
            format!("[{},{}]", (e % 16) as f64 * 10.0 + jitter, (e / 16) as f64 * 10.0)
        })
        .collect();
    format!("{{\"points\": [{}]}}", rows.join(","))
}

/// Runs `n` requests of one class on a fresh keep-alive connection,
/// returning the per-request latencies in microseconds. A broken
/// connection is re-dialed so one hiccup doesn't sink the whole class.
fn drive(
    addr: SocketAddr,
    n: u64,
    tallies: &Tallies,
    mut request: impl FnMut(&mut Conn, u64) -> std::io::Result<(u16, String)>,
) -> Vec<u64> {
    let mut latencies = Vec::with_capacity(n as usize);
    let mut conn = Conn::connect(addr).ok();
    for i in 0..n {
        let start = Instant::now();
        let outcome = match conn.as_mut() {
            Some(c) => request(c, i),
            None => Err(std::io::Error::other("not connected")),
        };
        latencies.push(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        if outcome.is_err() {
            conn = Conn::connect(addr).ok();
        }
        tallies.record(&outcome);
    }
    latencies
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn class_stats(mut latencies: Vec<u64>, elapsed: f64) -> ClassStats {
    latencies.sort_unstable();
    ClassStats {
        requests: latencies.len() as u64,
        requests_per_sec: latencies.len() as f64 / elapsed.max(1e-9),
        p50_micros: percentile(&latencies, 0.50),
        p99_micros: percentile(&latencies, 0.99),
    }
}

/// Polls `/healthz` until the server answers 200 (up to ~5 s).
fn wait_ready(addr: SocketAddr) -> bool {
    for _ in 0..100 {
        if let Ok(mut c) = Conn::connect(addr) {
            if matches!(c.request("GET", "/healthz", None), Ok((200, _))) {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

struct Opts {
    addr: Option<String>,
    shutdown: bool,
    tenants: Option<usize>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        shutdown: false,
        tenants: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                opts.addr = Some(it.next().ok_or("--addr expects HOST:PORT")?.clone());
            }
            "--shutdown" => opts.shutdown = true,
            "--tenants" => {
                let n: usize = it
                    .next()
                    .ok_or("--tenants expects a key-space size")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
                if n == 0 {
                    return Err("--tenants must be at least 1".into());
                }
                opts.tenants = Some(n);
            }
            other => {
                return Err(format!(
                    "unknown option {other}\n\
                     usage: loadgen [--addr HOST:PORT] [--shutdown] [--tenants N]"
                ))
            }
        }
    }
    Ok(opts)
}

/// The tenant for one request: Zipf-drawn rank formatted as a valid
/// tenant id, or `None` for the single-tenant routes.
fn tenant_path(keys: &mut Option<ZipfKeys>, suffix: &str) -> String {
    match keys {
        Some(k) => format!("/t/t{:07}/{suffix}", k.next_key()),
        None => format!("/{suffix}"),
    }
}

/// A per-thread Zipf generator (deterministic: the workload seed is
/// offset by the connection index so threads draw distinct but
/// replayable sequences), or `None` in single-tenant mode.
fn thread_keys(tenants: Option<usize>, thread: u64) -> Option<ZipfKeys> {
    tenants.map(|n| {
        ZipfKeys::try_new(n, 1.0, 42 + thread).expect("valid zipf key space")
    })
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or(format!("{addr} resolves to no address"))
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (writer_conns, reader_conns, ingests_per_conn, reads_per_conn) = if fast_mode() {
        (1usize, 2usize, 40u64, 120u64)
    } else {
        (2, 4, 200, 600)
    };

    // no --addr: self-host on an ephemeral port so the bin stands alone
    let mut local = None;
    let mut spill_dir = None;
    let addr = match &opts.addr {
        Some(a) => match resolve(a) {
            Ok(addr) => addr,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut backend = BackendConfig::new(DIM, 0.5);
            backend.seed = 42;
            backend.publish_every = Some(256);
            let mut cfg = ServerConfig::new(backend);
            if opts.tenants.is_some() {
                let dir = std::env::temp_dir()
                    .join(format!("rds-loadgen-spill-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                cfg.tenants = Some(TenancyConfig {
                    budget_words: 1 << 20,
                    spill_dir: dir.display().to_string(),
                });
                spill_dir = Some(dir);
            }
            let handle = match bind(cfg) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("failed to start in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };
    if !wait_ready(addr) {
        eprintln!("server at {addr} never answered /healthz");
        return ExitCode::FAILURE;
    }
    match opts.tenants {
        Some(n) => eprintln!(
            "group server_load ({addr}; {writer_conns} writers x {ingests_per_conn} ingests, \
             {reader_conns} readers x {reads_per_conn} reads; zipf over {n} tenants)"
        ),
        None => eprintln!(
            "group server_load ({addr}; {writer_conns} writers x {ingests_per_conn} ingests, \
             {reader_conns} readers x {reads_per_conn} reads)"
        ),
    }

    let tallies = Tallies::default();
    let start = Instant::now();
    let (ingest_lat, query_lat, f0_lat) = std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..writer_conns {
            let tallies = &tallies;
            let tenants = opts.tenants;
            writers.push(scope.spawn(move || {
                let base = w as u64 * ingests_per_conn * BATCH as u64;
                let mut keys = thread_keys(tenants, w as u64);
                drive(addr, ingests_per_conn, tallies, move |c, i| {
                    let path = tenant_path(&mut keys, "ingest");
                    c.request("POST", &path, Some(&ingest_body(base + i * BATCH as u64)))
                })
            }));
        }
        // each reader alternates query_k (with a replayable draw token
        // derived from the request index) and f0
        let mut readers = Vec::new();
        for r in 0..reader_conns {
            let tallies = &tallies;
            let tenants = opts.tenants;
            readers.push(scope.spawn(move || {
                let mut queries = Vec::new();
                let mut f0s = Vec::new();
                let half = reads_per_conn / 2;
                let mut keys = thread_keys(tenants, 1_000 + r as u64);
                queries.extend(drive(addr, half, tallies, |c, i| {
                    let seed = r as u64 * 1_000 + i;
                    let path = tenant_path(&mut keys, &format!("query_k?k=8&seed={seed}"));
                    c.request("GET", &path, None)
                }));
                f0s.extend(drive(addr, reads_per_conn - half, tallies, |c, _| {
                    let path = tenant_path(&mut keys, "f0");
                    c.request("GET", &path, None)
                }));
                (queries, f0s)
            }));
        }
        let mut ingest = Vec::new();
        for w in writers {
            ingest.extend(w.join().unwrap_or_default());
        }
        let mut query = Vec::new();
        let mut f0 = Vec::new();
        for r in readers {
            let (q, f) = r.join().unwrap_or_default();
            query.extend(q);
            f0.extend(f);
        }
        (ingest, query, f0)
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut clean_shutdown = true;
    if opts.shutdown {
        let outcome = Conn::connect(addr)
            .and_then(|mut c| c.request("POST", "/admin/shutdown", None));
        clean_shutdown = matches!(&outcome, Ok((200, _)));
        if !clean_shutdown {
            eprintln!("shutdown request failed: {outcome:?}");
        }
    }
    if let Some(handle) = local {
        if opts.shutdown {
            handle.join();
        } else {
            handle.shutdown_and_join();
        }
    }
    if let Some(dir) = &spill_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    let total = (ingest_lat.len() + query_lat.len() + f0_lat.len()) as u64;
    let report = ServerBenchReport {
        addr: addr.to_string(),
        tenant_key_space: opts.tenants.map(|n| n as u64),
        writer_conns,
        reader_conns,
        total_requests: total,
        requests_per_sec: total as f64 / elapsed.max(1e-9),
        status_2xx: tallies.s2xx.load(Ordering::Relaxed),
        status_4xx: tallies.s4xx.load(Ordering::Relaxed),
        status_5xx: tallies.s5xx.load(Ordering::Relaxed),
        io_errors: tallies.io_errors.load(Ordering::Relaxed),
        ingest: class_stats(ingest_lat, elapsed),
        query: class_stats(query_lat, elapsed),
        f0: class_stats(f0_lat, elapsed),
    };
    eprintln!(
        "  total: {:.0} requests/sec ({} requests, {} 2xx / {} 4xx / {} 5xx / {} io errors)",
        report.requests_per_sec,
        report.total_requests,
        report.status_2xx,
        report.status_4xx,
        report.status_5xx,
        report.io_errors
    );
    for (name, c) in [("ingest", &report.ingest), ("query", &report.query), ("f0", &report.f0)] {
        eprintln!(
            "  {name}: {:.0} req/sec p50 {}us p99 {}us",
            c.requests_per_sec, c.p50_micros, c.p99_micros
        );
    }

    let failed = report.status_5xx > 0 || report.io_errors > 0 || !clean_shutdown;
    let out = std::env::var("RDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    match serde_json::to_string(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}");
        }
        Err(e) => {
            eprintln!("serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failed {
        eprintln!("FAILED: the server answered 5xx, dropped connections, or did not drain");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
