//! Experiment harness shared by the `figures` binary and the Criterion
//! benches: runs the paper's Section 6 evaluation pipeline (dataset →
//! repeated sampling → empirical distribution + pTime + pSpace).

#![warn(missing_docs)]

use parking_lot::Mutex;
use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_datasets::Dataset;
use rds_geometry::Point;
use rds_hashing::point_identity;
use rds_metrics::{ItemTimer, SampleHistogram};
use serde::Serialize;
use std::collections::HashMap;

/// Result of one sampling-distribution experiment (one of Figures 5-12).
#[derive(Clone, Debug, Serialize)]
pub struct FigureResult {
    /// Dataset name.
    pub dataset: String,
    /// Number of ground-truth groups (`F0`).
    pub n_groups: usize,
    /// Stream length `m`.
    pub stream_len: usize,
    /// Number of independent sampling runs.
    pub runs: u64,
    /// `stdDevNm` of the empirical sampling distribution.
    pub std_dev_nm: f64,
    /// `maxDevNm` of the empirical sampling distribution.
    pub max_dev_nm: f64,
    /// Per-group sample counts.
    pub counts: Vec<u64>,
}

/// Result of the pTime/pSpace measurements (Figures 13-14).
#[derive(Clone, Debug, Serialize)]
pub struct CostResult {
    /// Dataset name.
    pub dataset: String,
    /// Stream length `m`.
    pub stream_len: usize,
    /// Mean per-item processing time in milliseconds (single thread).
    pub p_time_ms: f64,
    /// Peak space in machine words.
    pub p_space_words: usize,
}

/// Exact-identity lookup from stream points to ground-truth group labels.
pub struct GroupLookup {
    map: HashMap<u64, usize>,
}

impl GroupLookup {
    /// Builds the lookup from a labelled dataset.
    pub fn new(ds: &Dataset) -> Self {
        let mut map = HashMap::with_capacity(ds.len());
        for lp in &ds.points {
            map.insert(point_identity(lp.point.coords(), 0), lp.group);
        }
        Self { map }
    }

    /// The ground-truth group of a stream point.
    ///
    /// # Panics
    ///
    /// Panics if the point did not come from the dataset.
    pub fn group_of(&self, p: &Point) -> usize {
        *self
            .map
            .get(&point_identity(p.coords(), 0))
            .expect("sampled point must come from the dataset")
    }
}

/// The sampler configuration the experiments use for a dataset.
pub fn experiment_config(ds: &Dataset, seed: u64) -> SamplerConfig {
    SamplerConfig::builder(ds.dim, ds.alpha)
        .seed(seed)
        .expected_len(ds.len() as u64).build().unwrap()
}

/// One full sampling run: stream the dataset through a fresh Algorithm 1
/// instance and return the sampled group.
pub fn one_sampling_run(ds: &Dataset, lookup: &GroupLookup, seed: u64) -> usize {
    let mut sampler = RobustL0Sampler::try_new(experiment_config(ds, seed)).unwrap();
    for lp in &ds.points {
        sampler.process(&lp.point);
    }
    let sample = sampler.query().expect("dataset is non-empty").clone();
    lookup.group_of(&sample)
}

/// Repeats [`one_sampling_run`] `runs` times across `threads` workers and
/// aggregates the empirical sampling distribution (the core of
/// Figures 5-12 and 15).
pub fn sampling_distribution(
    ds: &Dataset,
    runs: u64,
    base_seed: u64,
    threads: usize,
) -> SampleHistogram {
    let threads = threads.max(1);
    let lookup = GroupLookup::new(ds);
    let global = Mutex::new(SampleHistogram::new(ds.n_groups));
    let next = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = SampleHistogram::new(ds.n_groups);
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= runs {
                        break;
                    }
                    let g = one_sampling_run(ds, &lookup, base_seed ^ (i * 0x9E37_79B9 + 1));
                    local.record(g);
                }
                global.lock().merge(&local);
            });
        }
    });
    global.into_inner()
}

/// Runs the sampling-distribution experiment and packages a figure row.
pub fn figure_result(ds: &Dataset, runs: u64, base_seed: u64, threads: usize) -> FigureResult {
    let hist = sampling_distribution(ds, runs, base_seed, threads);
    FigureResult {
        dataset: ds.name.clone(),
        n_groups: ds.n_groups,
        stream_len: ds.len(),
        runs: hist.runs(),
        std_dev_nm: hist.std_dev_nm(),
        max_dev_nm: hist.max_dev_nm(),
        counts: hist.counts().to_vec(),
    }
}

/// Measures pTime (mean per-item ms over `scans` single-threaded scans)
/// and pSpace (peak words) for a dataset — Figures 13 and 14.
pub fn cost_measurement(ds: &Dataset, scans: u32, seed: u64) -> CostResult {
    let mut timer = ItemTimer::new();
    let mut peak = 0usize;
    for s in 0..scans.max(1) {
        let mut sampler = RobustL0Sampler::try_new(experiment_config(ds, seed + s as u64)).unwrap();
        let run = timer.start();
        for lp in &ds.points {
            sampler.process(&lp.point);
        }
        timer.stop(run, ds.len() as u64);
        peak = peak.max(sampler.peak_words());
    }
    CostResult {
        dataset: ds.name.clone(),
        stream_len: ds.len(),
        p_time_ms: timer.per_item_ms(),
        p_space_words: peak,
    }
}

/// Renders a sparkline-style text histogram of per-group sampling counts
/// (the textual analogue of the paper's scatter plots).
pub fn render_histogram(counts: &[u64], buckets: usize) -> String {
    if counts.is_empty() {
        return String::new();
    }
    let max = *counts.iter().max().expect("non-empty") as f64;
    let min = *counts.iter().min().expect("non-empty") as f64;
    let chunk = counts.len().div_ceil(buckets);
    let glyphs = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let mut out = String::new();
    for group in counts.chunks(chunk) {
        let avg = group.iter().sum::<u64>() as f64 / group.len() as f64;
        let frac = if max > min {
            (avg - min) / (max - min)
        } else {
            0.5
        };
        let idx = 1 + (frac * 7.0).round() as usize;
        out.push(glyphs[idx.min(8)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rds_datasets::{rand_cloud, uniform_dups};

    fn tiny_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let base = rand_cloud(12, 4, &mut rng);
        let mut ds = uniform_dups("tiny", &base, 4, &mut rng);
        ds.shuffle(&mut rng);
        ds
    }

    #[test]
    fn lookup_maps_every_point() {
        let ds = tiny_dataset();
        let lookup = GroupLookup::new(&ds);
        for lp in &ds.points {
            assert_eq!(lookup.group_of(&lp.point), lp.group);
        }
    }

    #[test]
    fn one_run_returns_valid_group() {
        let ds = tiny_dataset();
        let lookup = GroupLookup::new(&ds);
        let g = one_sampling_run(&ds, &lookup, 99);
        assert!(g < ds.n_groups);
    }

    #[test]
    fn parallel_distribution_records_all_runs() {
        let ds = tiny_dataset();
        let hist = sampling_distribution(&ds, 64, 7, 4);
        assert_eq!(hist.runs(), 64);
        assert_eq!(hist.n_groups(), ds.n_groups);
    }

    #[test]
    fn parallel_and_serial_agree_on_run_count() {
        let ds = tiny_dataset();
        let a = sampling_distribution(&ds, 32, 11, 1);
        let b = sampling_distribution(&ds, 32, 11, 4);
        // same seeds per run index => same multiset of recorded groups
        let mut ca = a.counts().to_vec();
        let mut cb = b.counts().to_vec();
        ca.sort_unstable();
        cb.sort_unstable();
        assert_eq!(ca, cb);
    }

    #[test]
    fn cost_measurement_is_populated() {
        let ds = tiny_dataset();
        let cost = cost_measurement(&ds, 2, 3);
        assert!(cost.p_time_ms > 0.0);
        assert!(cost.p_space_words > 0);
        assert_eq!(cost.stream_len, ds.len());
    }

    #[test]
    fn histogram_rendering_has_requested_width() {
        let counts = vec![5u64; 100];
        let s = render_histogram(&counts, 20);
        assert_eq!(s.chars().count(), 20);
        assert!(render_histogram(&[], 10).is_empty());
    }
}
