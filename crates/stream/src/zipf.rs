//! Seeded Zipf(θ) key generation.
//!
//! Multi-tenant workloads are heavily skewed: a few tenants receive most
//! of the traffic while a long tail stays almost idle. The standard model
//! for that skew is the Zipf distribution — key of rank `r` (0-based) is
//! drawn with probability proportional to `1 / (r + 1)^θ` — and it is
//! what the tenant bench and the loadgen tenant traffic mix use to drive
//! the registry's eviction machinery realistically.
//!
//! [`ZipfKeys`] is deterministic for a given seed (same workspace
//! contract as every other generator here: replayable workloads, no
//! ambient entropy) and samples in `O(log n)` per key from a precomputed
//! cumulative table built in `O(n)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// Why a [`ZipfKeys`] generator could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZipfError {
    /// The key space was empty (`n == 0`).
    EmptyKeySpace,
    /// The skew exponent was negative, NaN or infinite.
    InvalidTheta,
}

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipfError::EmptyKeySpace => write!(f, "zipf key space must hold at least one key"),
            ZipfError::InvalidTheta => {
                write!(f, "zipf exponent theta must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for ZipfError {}

/// A seeded generator of Zipf(θ)-distributed keys over `0..n`.
///
/// Rank 0 is the most popular key; `θ = 0` degenerates to the uniform
/// distribution and larger `θ` concentrates more of the mass on the low
/// ranks (`θ ≈ 1` is the classic web/tenant-traffic skew).
///
/// # Examples
///
/// ```
/// use rds_stream::ZipfKeys;
///
/// let mut keys = ZipfKeys::try_new(1_000, 1.0, 42).unwrap();
/// let k = keys.next_key();
/// assert!(k < 1_000);
/// // same seed → same sequence, replayable workloads
/// let mut again = ZipfKeys::try_new(1_000, 1.0, 42).unwrap();
/// assert_eq!(again.next_key(), k);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    /// `cdf[r]` = P(key ≤ r); the last entry is pinned to exactly 1.0.
    cdf: Vec<f64>,
    theta: f64,
    rng: StdRng,
}

impl ZipfKeys {
    /// Builds a generator over the key space `0..n` with skew `theta`,
    /// seeded deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// [`ZipfError::EmptyKeySpace`] when `n == 0`;
    /// [`ZipfError::InvalidTheta`] when `theta` is negative, NaN or
    /// infinite.
    pub fn try_new(n: usize, theta: f64, seed: u64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptyKeySpace);
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(ZipfError::InvalidTheta);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            // floating-point division can land the final entry a ULP
            // below 1.0; pin it so every draw in [0, 1) maps to a rank
            *last = 1.0;
        }
        Ok(Self {
            cdf,
            theta,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Draws the next key: a rank in `0..n`, rank 0 most popular.
    pub fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        // first rank whose cumulative mass exceeds the draw
        let idx = self.cdf.partition_point(|&c| c <= u);
        idx.min(self.cdf.len() - 1) as u64
    }

    /// The size of the key space `n`.
    pub fn key_space(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(
            ZipfKeys::try_new(0, 1.0, 1).unwrap_err(),
            ZipfError::EmptyKeySpace
        );
        assert_eq!(
            ZipfKeys::try_new(10, -0.5, 1).unwrap_err(),
            ZipfError::InvalidTheta
        );
        assert_eq!(
            ZipfKeys::try_new(10, f64::NAN, 1).unwrap_err(),
            ZipfError::InvalidTheta
        );
        assert_eq!(
            ZipfKeys::try_new(10, f64::INFINITY, 1).unwrap_err(),
            ZipfError::InvalidTheta
        );
    }

    #[test]
    fn deterministic_per_seed_and_within_bounds() {
        let mut a = ZipfKeys::try_new(1_000, 0.99, 7).unwrap();
        let mut b = ZipfKeys::try_new(1_000, 0.99, 7).unwrap();
        for _ in 0..10_000 {
            let k = a.next_key();
            assert_eq!(k, b.next_key());
            assert!(k < 1_000);
        }
        let mut c = ZipfKeys::try_new(1_000, 0.99, 8).unwrap();
        let same = (0..64).all(|_| a.next_key() == c.next_key());
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let mut g = ZipfKeys::try_new(10_000, 1.0, 3).unwrap();
        let mut counts = vec![0u32; 10_000];
        for _ in 0..200_000 {
            counts[g.next_key() as usize] += 1;
        }
        // under θ=1 rank 0 carries ~10% of the mass over 10k keys; rank
        // 999 carries a thousandth of that — orders of magnitude apart
        assert!(counts[0] > 10_000, "rank 0 drew {}", counts[0]);
        assert!(
            counts[0] > 50 * counts[999].max(1),
            "rank 0 ({}) should dwarf rank 999 ({})",
            counts[0],
            counts[999]
        );
        // the whole key space stays reachable: the tail is thin, not dead
        assert!(counts[9_999] < counts[0]);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let mut g = ZipfKeys::try_new(10, 0.0, 5).unwrap();
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[g.next_key() as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
