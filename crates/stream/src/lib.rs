//! Stream and window models for robust distinct sampling.
//!
//! The paper studies three computational models (Section 1):
//!
//! * the **infinite window** (standard streaming) model;
//! * the **sequence-based sliding window**: the last `w` *points*;
//! * the **time-based sliding window**: the points of the last `w` *time
//!   steps*.
//!
//! Its sliding-window algorithms work in both window flavours — "the only
//! difference is the definition of the expiration of a point". This crate
//! encodes that difference once ([`Window`]) so the samplers can be written
//! window-agnostically.

#![warn(missing_docs)]

mod zipf;

pub use zipf::{ZipfError, ZipfKeys};

use rds_geometry::Point;
use serde::{Deserialize, Serialize};

/// The position of a stream item in both window clocks: its sequence number
/// (arrival index) and its timestamp.
///
/// For sequence-based windows only `seq` matters; for time-based windows
/// only `time`. Items must arrive with non-decreasing stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Stamp {
    /// Arrival index (0-based, strictly increasing).
    pub seq: u64,
    /// Timestamp (non-decreasing; multiple items may share one time step).
    pub time: u64,
}

impl Stamp {
    /// Creates a stamp with equal sequence number and time, the common case
    /// where one item arrives per time step.
    pub fn at(seq: u64) -> Self {
        Self { seq, time: seq }
    }

    /// Creates a stamp with distinct sequence number and timestamp.
    pub fn new(seq: u64, time: u64) -> Self {
        Self { seq, time }
    }
}

/// A point together with its arrival stamp.
#[derive(Clone, Debug)]
pub struct StreamItem {
    /// The data point.
    pub point: Point,
    /// When it arrived.
    pub stamp: Stamp,
}

impl StreamItem {
    /// Convenience constructor.
    pub fn new(point: Point, stamp: Stamp) -> Self {
        Self { point, stamp }
    }
}

/// A window model over the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// The whole stream (standard streaming model).
    Infinite,
    /// The last `w` points (`w >= 1`).
    Sequence(u64),
    /// The points with timestamps in `(now - w, now]` (`w >= 1`).
    Time(u64),
}

impl Window {
    /// Whether an item stamped `stamp` is still inside the window when the
    /// current clock reads `now`.
    ///
    /// * `Infinite`: always.
    /// * `Sequence(w)`: the live items are the `w` most recent, i.e. those
    ///   with `seq > now.seq - w`.
    /// * `Time(w)`: the live items are those received in the last `w` time
    ///   steps, i.e. with `time > now.time - w`.
    #[inline]
    pub fn live(&self, stamp: Stamp, now: Stamp) -> bool {
        // Saturating: a width near u64::MAX (a de-facto infinite window)
        // must not overflow `stamp + w` and wrongly expire everything.
        match *self {
            Window::Infinite => true,
            Window::Sequence(w) => stamp.seq.saturating_add(w) > now.seq,
            Window::Time(w) => stamp.time.saturating_add(w) > now.time,
        }
    }

    /// Whether the window provably contains no items — never true for
    /// the window models here (every model keeps at least the newest
    /// item), provided for `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The window length parameter `w`, if bounded.
    pub fn len(&self) -> Option<u64> {
        match *self {
            Window::Infinite => None,
            Window::Sequence(w) | Window::Time(w) => Some(w),
        }
    }

    /// Whether this is the infinite window.
    pub fn is_infinite(&self) -> bool {
        matches!(self, Window::Infinite)
    }
}

// The vendored serde derive handles only named-field structs, so the
// window enum maps to/from a `{ "model": ..., "w": ... }` tree by hand.
impl serde::Serialize for Window {
    fn to_value(&self) -> serde::Value {
        let (model, w) = match *self {
            Window::Infinite => ("infinite", None),
            Window::Sequence(w) => ("sequence", Some(w)),
            Window::Time(w) => ("time", Some(w)),
        };
        let mut entries = vec![("model".to_string(), serde::Value::Str(model.to_string()))];
        if let Some(w) = w {
            entries.push(("w".to_string(), serde::Value::U64(w)));
        }
        serde::Value::Map(entries)
    }
}

impl serde::Deserialize for Window {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let model = match value.get("model") {
            Some(serde::Value::Str(s)) => s.as_str(),
            _ => return Err(serde::DeError::missing("model")),
        };
        let w = || -> Result<u64, serde::DeError> {
            u64::from_value(value.get("w").unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::custom(format!("field `w`: {e}")))
        };
        match model {
            "infinite" => Ok(Window::Infinite),
            "sequence" => Ok(Window::Sequence(w()?)),
            "time" => Ok(Window::Time(w()?)),
            other => Err(serde::DeError::custom(format!(
                "unknown window model `{other}`"
            ))),
        }
    }
}

/// Wraps a sequence of points into stream items stamped `0, 1, 2, ...`
/// (sequence number == timestamp).
pub fn enumerate_stream<I>(points: I) -> Vec<StreamItem>
where
    I: IntoIterator<Item = Point>,
{
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| StreamItem::new(p, Stamp::at(i as u64)))
        .collect()
}

/// Wraps `(point, time)` pairs into stream items with sequential arrival
/// indices and the given timestamps.
///
/// # Panics
///
/// Panics if the timestamps are not non-decreasing.
pub fn timed_stream<I>(points: I) -> Vec<StreamItem>
where
    I: IntoIterator<Item = (Point, u64)>,
{
    let mut last = 0u64;
    points
        .into_iter()
        .enumerate()
        .map(|(i, (p, t))| {
            assert!(t >= last, "timestamps must be non-decreasing");
            last = t;
            StreamItem::new(p, Stamp::new(i as u64, t))
        })
        .collect()
}

/// Iterator adapter yielding the underlying items in `Vec` batches of at
/// most `size` elements (the last batch may be shorter). Built by
/// [`batched`]; the unit ingestion hot paths (`rds-engine`,
/// `process_batch`) consume streams this way to amortize per-item
/// overhead.
#[derive(Clone, Debug)]
pub struct Batched<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator> Iterator for Batched<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Vec<I::Item>> {
        let mut batch = Vec::with_capacity(self.size);
        for item in self.inner.by_ref() {
            batch.push(item);
            if batch.len() == self.size {
                break;
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }
}

/// Chunks any stream of items (points, [`StreamItem`]s, ...) into batches
/// of at most `size` elements, preserving order.
///
/// # Panics
///
/// Panics if `size == 0`.
///
/// # Examples
///
/// ```
/// use rds_stream::batched;
///
/// let batches: Vec<Vec<u64>> = batched(0..5u64, 2).collect();
/// assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
/// ```
pub fn batched<I>(items: I, size: usize) -> Batched<I::IntoIter>
where
    I: IntoIterator,
{
    assert!(size >= 1, "batch size must be at least 1");
    Batched {
        inner: items.into_iter(),
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_window_never_expires() {
        let w = Window::Infinite;
        assert!(w.live(Stamp::at(0), Stamp::at(u64::MAX - 1)));
        assert!(w.len().is_none());
        assert!(w.is_infinite());
    }

    #[test]
    fn sequence_window_keeps_exactly_w_items() {
        let w = Window::Sequence(3);
        let now = Stamp::at(10);
        // live items: seq 8, 9, 10
        assert!(w.live(Stamp::at(8), now));
        assert!(w.live(Stamp::at(10), now));
        assert!(!w.live(Stamp::at(7), now));
    }

    #[test]
    fn sequence_window_of_one() {
        let w = Window::Sequence(1);
        let now = Stamp::at(5);
        assert!(w.live(Stamp::at(5), now));
        assert!(!w.live(Stamp::at(4), now));
    }

    #[test]
    fn time_window_uses_timestamps_not_sequence() {
        let w = Window::Time(5);
        let now = Stamp::new(100, 50);
        // seq is irrelevant; time 46..=50 is live
        assert!(w.live(Stamp::new(0, 46), now));
        assert!(!w.live(Stamp::new(99, 45), now));
    }

    #[test]
    fn time_window_with_bursts() {
        // several items share a timestamp; all expire together
        let w = Window::Time(2);
        let now = Stamp::new(10, 7);
        for seq in 0..5 {
            assert!(w.live(Stamp::new(seq, 6), now));
            assert!(!w.live(Stamp::new(seq, 5), now));
        }
    }

    #[test]
    fn enumerate_stream_stamps_sequentially() {
        let pts = vec![Point::origin(2), Point::new(vec![1.0, 1.0])];
        let items = enumerate_stream(pts);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].stamp, Stamp::at(0));
        assert_eq!(items[1].stamp, Stamp::at(1));
    }

    #[test]
    fn timed_stream_accepts_bursts() {
        let items = timed_stream(vec![
            (Point::origin(1), 3),
            (Point::origin(1), 3),
            (Point::origin(1), 8),
        ]);
        assert_eq!(items[1].stamp, Stamp::new(1, 3));
        assert_eq!(items[2].stamp, Stamp::new(2, 8));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn timed_stream_rejects_decreasing_time() {
        let _ = timed_stream(vec![(Point::origin(1), 5), (Point::origin(1), 4)]);
    }

    #[test]
    fn window_len_reports_parameter() {
        assert_eq!(Window::Sequence(9).len(), Some(9));
        assert_eq!(Window::Time(4).len(), Some(4));
    }

    #[test]
    fn batched_preserves_order_and_sizes() {
        let items = enumerate_stream((0..10).map(|i| Point::new(vec![i as f64])));
        let batches: Vec<Vec<StreamItem>> = batched(items, 4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let mut seq = 0u64;
        for batch in &batches {
            for item in batch {
                assert_eq!(item.stamp.seq, seq);
                seq += 1;
            }
        }
    }

    #[test]
    fn batched_exact_multiple_has_no_empty_tail() {
        let batches: Vec<Vec<u32>> = batched(0..6u32, 3).collect();
        assert_eq!(batches, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert_eq!(batched(std::iter::empty::<u32>(), 3).count(), 0);
    }

    #[test]
    fn batch_of_one_is_per_item_iteration() {
        let batches: Vec<Vec<u32>> = batched(0..3u32, 1).collect();
        assert_eq!(batches, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "batch size must be at least 1")]
    fn zero_batch_size_rejected() {
        let _ = batched(0..3u32, 0);
    }
}
