//! Computing `adj(p) = { C in G : d(p, C) <= alpha }`.
//!
//! Section 6.2 of the paper describes a depth-first enumeration with
//! distance pruning (Algorithms 6 and 7, `SearchAdj`): along each dimension
//! the nearest point of an adjacent cell is reached by moving the coordinate
//! to `floor(x_i)`, to `ceil(x_i)`, or not at all; the search prunes as soon
//! as the accumulated squared movement exceeds `alpha^2`.
//!
//! The DFS visits only the `3^d` lattice neighbourhood of `cell(p)`, which
//! covers all of `adj(p)` **iff the grid side length is at least `alpha`**.
//! For smaller sides (e.g. the `alpha/2` side used by the 2-D theory in
//! Section 2.1) use [`adjacent_cells_bfs`], a reference implementation that
//! is correct for every side length.

use crate::{Grid, Point};
use std::collections::{HashSet, VecDeque};

/// Visits every cell `C` with `d(p, C) <= alpha` in the `3^d` neighbourhood
/// of `cell(p)`, calling `visit` with the cell's coordinates.
///
/// Returns `true` if `visit` returned `true` for some cell, in which case
/// the enumeration stops early. This early exit is what makes the
/// "is some adjacent cell sampled?" test of Algorithms 1 and 2 cheap: the
/// caller's predicate typically hashes the cell and checks the sample bit.
///
/// This is Algorithms 6 and 7 of the paper implemented on integer cell
/// coordinates (so no boundary nudging is needed: moving to `floor` selects
/// the lower neighbouring cell index, moving to `ceil` the upper one).
///
/// # Panics
///
/// Panics if `grid.side() < alpha` (the 3^d neighbourhood would then not
/// cover `adj(p)`); use [`adjacent_cells_bfs`] in that regime.
pub fn for_each_adjacent_cell<F>(grid: &Grid, p: &Point, alpha: f64, mut visit: F) -> bool
where
    F: FnMut(&[i64]) -> bool,
{
    assert!(
        grid.side() >= alpha,
        "SearchAdj DFS requires side >= alpha (side={}, alpha={}); use adjacent_cells_bfs",
        grid.side(),
        alpha
    );
    let dim = grid.dim();
    debug_assert_eq!(p.dim(), dim, "dimension mismatch");
    let mut cell = vec![0i64; dim];
    let mut state = SearchState {
        grid,
        p,
        limit_sq: alpha * alpha,
        cell: &mut cell,
        visit: &mut visit,
    };
    search(&mut state, 0, 0.0)
}

struct SearchState<'a, F> {
    grid: &'a Grid,
    p: &'a Point,
    limit_sq: f64,
    cell: &'a mut [i64],
    visit: &'a mut F,
}

fn search<F>(st: &mut SearchState<'_, F>, depth: usize, acc_sq: f64) -> bool
where
    F: FnMut(&[i64]) -> bool,
{
    // Prune: the movement so far already exceeds alpha.
    if acc_sq > st.limit_sq {
        return false;
    }
    if depth == st.grid.dim() {
        return (st.visit)(st.cell);
    }
    let g = st.grid.grid_coord(st.p, depth);
    let base = g.floor() as i64;
    let side = st.grid.side();
    let down = (g - g.floor()) * side; // cost of moving to the lower boundary
    let up = (g.floor() + 1.0 - g) * side; // cost of moving to the upper boundary

    // Stay in the current cell along this dimension: zero cost.
    st.cell[depth] = base;
    if search(st, depth + 1, acc_sq) {
        return true;
    }
    // Move to the lower neighbour.
    st.cell[depth] = base - 1;
    if search(st, depth + 1, acc_sq + down * down) {
        return true;
    }
    // Move to the upper neighbour.
    st.cell[depth] = base + 1;
    if search(st, depth + 1, acc_sq + up * up) {
        return true;
    }
    false
}

/// Collects `adj(p)` using the pruned DFS ([`for_each_adjacent_cell`]).
///
/// The cell containing `p` itself is always part of the result (it is at
/// distance zero).
pub fn adjacent_cells(grid: &Grid, p: &Point, alpha: f64) -> Vec<Box<[i64]>> {
    let mut cells = Vec::new();
    for_each_adjacent_cell(grid, p, alpha, |c| {
        cells.push(c.to_vec().into_boxed_slice());
        false
    });
    cells
}

/// Reference implementation of `adj(p)` that is correct for **any** grid
/// side length: a breadth-first flood fill over lattice cells starting at
/// `cell(p)`, keeping cells with `d(p, C) <= alpha`.
///
/// The kept region is axis-convex around `cell(p)` (per-dimension distance
/// contributions decrease monotonically toward the base cell), so expanding
/// only through kept cells via the `2d` axis neighbours reaches all of
/// `adj(p)`.
///
/// This is `O(|adj(p)| * d)` but with hashing overhead; it exists as the
/// oracle for property tests and for the small-side theory configuration.
pub fn adjacent_cells_bfs(grid: &Grid, p: &Point, alpha: f64) -> Vec<Box<[i64]>> {
    let dim = grid.dim();
    debug_assert_eq!(p.dim(), dim, "dimension mismatch");
    let limit_sq = alpha * alpha;
    let start: Vec<i64> = (0..dim)
        .map(|i| grid.grid_coord(p, i).floor() as i64)
        .collect();
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    let mut queue: VecDeque<Vec<i64>> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(cell) = queue.pop_front() {
        if grid.dist_sq_point_cell(p, &cell) > limit_sq {
            continue;
        }
        out.push(cell.clone().into_boxed_slice());
        for i in 0..dim {
            for delta in [-1i64, 1] {
                let mut next = cell.clone();
                next[i] += delta;
                if !seen.contains(&next) {
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeSet;

    fn to_set(cells: Vec<Box<[i64]>>) -> BTreeSet<Vec<i64>> {
        cells.into_iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn own_cell_is_always_adjacent() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![0.5, 0.5]);
        let cells = to_set(adjacent_cells(&g, &p, 0.1));
        assert!(cells.contains(&vec![0, 0]));
    }

    #[test]
    fn centered_point_with_small_alpha_has_single_adjacent_cell() {
        let g = Grid::with_offset(3, 1.0, vec![0.0; 3]);
        let p = Point::new(vec![0.5, 0.5, 0.5]);
        let cells = adjacent_cells(&g, &p, 0.4);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn corner_point_touches_incident_cells() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        // near the lattice corner (1, 1): the four cells incident to the
        // corner are within ~0.0014; the cells at index 2 are ~0.999 away
        // and excluded by alpha = 0.9.
        let p = Point::new(vec![1.001, 1.001]);
        let cells = to_set(adjacent_cells(&g, &p, 0.9));
        assert_eq!(
            cells,
            BTreeSet::from([vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]])
        );
    }

    #[test]
    fn point_exactly_on_boundary() {
        let g = Grid::with_offset(1, 1.0, vec![0.0]);
        let p = Point::new(vec![2.0]); // boundary between cells 1 and 2
        let cells = to_set(adjacent_cells(&g, &p, 0.5));
        // cell 2 contains p; cell 1 touches it at distance 0; cell 3 is at
        // distance 1 > alpha.
        assert_eq!(cells, BTreeSet::from([vec![1], vec![2]]));
    }

    #[test]
    fn two_dim_alpha_half_side_shape() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![0.1, 0.5]);
        let cells = to_set(adjacent_cells(&g, &p, 0.5));
        // left cell at distance 0.1; up/down at 0.5; diagonals at
        // sqrt(0.1^2+0.5^2) ~ 0.51 > 0.5; right at 0.9.
        assert_eq!(
            cells,
            BTreeSet::from([vec![-1, 0], vec![0, -1], vec![0, 0], vec![0, 1]])
        );
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![1.0001, 1.0001]);
        let mut visited = 0usize;
        let stopped = for_each_adjacent_cell(&g, &p, 0.9, |_| {
            visited += 1;
            visited == 2
        });
        assert!(stopped);
        assert_eq!(visited, 2);
    }

    #[test]
    fn dfs_agrees_with_bfs_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        for dim in 1..=4usize {
            for _ in 0..40 {
                let side = rng.random_range(0.5..2.0);
                let alpha = rng.random_range(0.01..side);
                let g = Grid::random(dim, side, &mut rng);
                let p = Point::new((0..dim).map(|_| rng.random_range(-5.0..5.0)).collect());
                let dfs = to_set(adjacent_cells(&g, &p, alpha));
                let bfs = to_set(adjacent_cells_bfs(&g, &p, alpha));
                assert_eq!(dfs, bfs, "dim={dim} side={side} alpha={alpha}");
            }
        }
    }

    #[test]
    fn bfs_supports_sides_smaller_than_alpha() {
        let g = Grid::with_offset(1, 0.5, vec![0.0]);
        let p = Point::new(vec![0.25]);
        let cells = to_set(adjacent_cells_bfs(&g, &p, 1.0));
        // cells are [k*0.5, (k+1)*0.5); within distance 1.0 of x=0.25 are
        // cells covering [-0.75, 1.25] => indices -2..=2.
        assert_eq!(
            cells,
            BTreeSet::from([vec![-2], vec![-1], vec![0], vec![1], vec![2]])
        );
    }

    #[test]
    #[should_panic(expected = "side >= alpha")]
    fn dfs_rejects_small_side() {
        let g = Grid::with_offset(1, 0.5, vec![0.0]);
        let p = Point::new(vec![0.25]);
        let _ = adjacent_cells(&g, &p, 1.0);
    }

    #[test]
    fn all_reported_cells_are_within_alpha() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Grid::random(3, 1.0, &mut rng);
        let p = Point::new(vec![0.3, -2.4, 7.7]);
        let alpha = 0.8;
        for c in adjacent_cells(&g, &p, alpha) {
            assert!(g.dist_point_cell(&p, &c) <= alpha + 1e-12);
        }
    }
}
