//! Computing `adj(p) = { C in G : d(p, C) <= alpha }`.
//!
//! Section 6.2 of the paper describes a depth-first enumeration with
//! distance pruning (Algorithms 6 and 7, `SearchAdj`): along each dimension
//! the nearest point of an adjacent cell is reached by moving the coordinate
//! to `floor(x_i)`, to `ceil(x_i)`, or not at all; the search prunes as soon
//! as the accumulated squared movement exceeds `alpha^2`.
//!
//! The DFS visits only the `3^d` lattice neighbourhood of `cell(p)`, which
//! covers all of `adj(p)` **iff the grid side length is at least `alpha`**.
//! For smaller sides (e.g. the `alpha/2` side used by the 2-D theory in
//! Section 2.1) use [`adjacent_cells_bfs`], a reference implementation that
//! is correct for every side length.

use crate::{Grid, Point};
use std::collections::{HashSet, VecDeque};

/// Visits every cell `C` with `d(p, C) <= alpha` in the `3^d` neighbourhood
/// of `cell(p)`, calling `visit` with the cell's coordinates.
///
/// Returns `true` if `visit` returned `true` for some cell, in which case
/// the enumeration stops early. This early exit is what makes the
/// "is some adjacent cell sampled?" test of Algorithms 1 and 2 cheap: the
/// caller's predicate typically hashes the cell and checks the sample bit.
///
/// This is Algorithms 6 and 7 of the paper implemented on integer cell
/// coordinates (so no boundary nudging is needed: moving to `floor` selects
/// the lower neighbouring cell index, moving to `ceil` the upper one).
///
/// # Panics
///
/// Panics if `grid.side() < alpha` (the 3^d neighbourhood would then not
/// cover `adj(p)`); use [`adjacent_cells_bfs`] in that regime.
pub fn for_each_adjacent_cell<F>(grid: &Grid, p: &Point, alpha: f64, mut visit: F) -> bool
where
    F: FnMut(&[i64]) -> bool,
{
    assert!(
        grid.side() >= alpha,
        "SearchAdj DFS requires side >= alpha (side={}, alpha={}); use adjacent_cells_bfs",
        grid.side(),
        alpha
    );
    let dim = grid.dim();
    debug_assert_eq!(p.dim(), dim, "dimension mismatch");
    let mut cell = vec![0i64; dim];
    let mut state = SearchState {
        grid,
        p,
        limit_sq: alpha * alpha,
        cell: &mut cell,
        visit: &mut visit,
    };
    search(&mut state, 0, 0.0)
}

struct SearchState<'a, F> {
    grid: &'a Grid,
    p: &'a Point,
    limit_sq: f64,
    cell: &'a mut [i64],
    visit: &'a mut F,
}

fn search<F>(st: &mut SearchState<'_, F>, depth: usize, acc_sq: f64) -> bool
where
    F: FnMut(&[i64]) -> bool,
{
    // Prune: the movement so far already exceeds alpha.
    if acc_sq > st.limit_sq {
        return false;
    }
    if depth == st.grid.dim() {
        return (st.visit)(st.cell);
    }
    let g = st.grid.grid_coord(st.p, depth);
    let base = g.floor() as i64;
    let side = st.grid.side();
    let down = (g - g.floor()) * side; // cost of moving to the lower boundary
    let up = (g.floor() + 1.0 - g) * side; // cost of moving to the upper boundary

    // Stay in the current cell along this dimension: zero cost.
    st.cell[depth] = base;
    if search(st, depth + 1, acc_sq) {
        return true;
    }
    // Move to the lower neighbour.
    st.cell[depth] = base - 1;
    if search(st, depth + 1, acc_sq + down * down) {
        return true;
    }
    // Move to the upper neighbour.
    st.cell[depth] = base + 1;
    if search(st, depth + 1, acc_sq + up * up) {
        return true;
    }
    false
}

/// Like [`for_each_adjacent_cell`], but threads a caller-defined fold value
/// down the DFS: entering depth `i` with carry `acc` and choosing cell
/// coordinate `c_i` continues with `step(acc, c_i)`, and `visit` receives
/// the fully folded value alongside the cell coordinates.
///
/// When `step` is a per-coordinate hash fold (e.g. a seeded SplitMix64
/// avalanche), the fold value at a leaf *is* the cell's key, and prefixes
/// are shared along the DFS tree — visiting `k` cells costs `O(k)` fold
/// steps instead of `O(k · d)` from re-keying each cell from scratch. The
/// enumeration order, pruning, and early-exit contract are exactly those of
/// [`for_each_adjacent_cell`]; the first visited cell is always `cell(p)`.
///
/// # Panics
///
/// Panics if `grid.side() < alpha`, as in [`for_each_adjacent_cell`].
pub fn for_each_adjacent_cell_fold<S, F>(
    grid: &Grid,
    p: &Point,
    alpha: f64,
    init: u64,
    step: S,
    visit: F,
) -> bool
where
    S: FnMut(u64, i64) -> u64,
    F: FnMut(&[i64], u64) -> bool,
{
    let mut scratch = AdjacencyScratch::new();
    for_each_adjacent_cell_fold_with(grid, p, alpha, init, step, visit, &mut scratch)
}

/// Reusable buffers for [`for_each_adjacent_cell_fold_with`]: the DFS cell
/// coordinates and the per-dimension `(base, down, up)` bounds, sized on
/// first use. Holding one of these on the sampler keeps the per-point
/// arrival path free of heap allocation.
#[derive(Clone, Debug, Default)]
pub struct AdjacencyScratch {
    cell: Vec<i64>,
    dims: Vec<(i64, f64, f64)>,
}

impl AdjacencyScratch {
    /// Empty scratch; buffers grow to the grid dimension on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`for_each_adjacent_cell_fold`] with caller-owned scratch buffers: no
/// allocation per call, and the per-dimension grid coordinate and boundary
/// costs are computed once per point instead of once per DFS node re-entry.
/// Enumeration order, pruning, folded keys, and the early-exit contract are
/// exactly those of [`for_each_adjacent_cell_fold`].
///
/// # Panics
///
/// Panics if `grid.side() < alpha`, as in [`for_each_adjacent_cell`].
pub fn for_each_adjacent_cell_fold_with<S, F>(
    grid: &Grid,
    p: &Point,
    alpha: f64,
    init: u64,
    mut step: S,
    mut visit: F,
    scratch: &mut AdjacencyScratch,
) -> bool
where
    S: FnMut(u64, i64) -> u64,
    F: FnMut(&[i64], u64) -> bool,
{
    assert!(
        grid.side() >= alpha,
        "SearchAdj DFS requires side >= alpha (side={}, alpha={}); use adjacent_cells_bfs",
        grid.side(),
        alpha
    );
    let dim = grid.dim();
    debug_assert_eq!(p.dim(), dim, "dimension mismatch");
    scratch.cell.clear();
    scratch.cell.resize(dim, 0);
    scratch.dims.clear();
    let side = grid.side();
    for depth in 0..dim {
        // The exact node expressions of the recursive formulation, hoisted:
        // every re-entry of a depth recomputed the same three values.
        let g = grid.grid_coord(p, depth);
        let base = g.floor() as i64;
        let down = (g - g.floor()) * side;
        let up = (g.floor() + 1.0 - g) * side;
        scratch.dims.push((base, down, up));
    }
    let limit_sq = alpha * alpha;
    if dim == 2 {
        // The planar case (the common deployment regime), with the DFS
        // unrolled into two nested branch loops. Same branch order
        // (stay, lower, upper), same pruning comparisons on the same
        // accumulated costs, same fold calls at the same tree positions
        // — only the recursion frames are gone. Pruned subtrees skip
        // their fold step; the step is pure, so that is unobservable.
        let (b0, d0, u0) = scratch.dims[0];
        let (b1, d1, u1) = scratch.dims[1];
        let cell = &mut scratch.cell[..2];
        for (c0, cost0) in [(b0, 0.0), (b0 - 1, d0 * d0), (b0 + 1, u0 * u0)] {
            if cost0 > limit_sq {
                continue;
            }
            cell[0] = c0;
            let f0 = step(init, c0);
            for (c1, cost1) in [(b1, 0.0), (b1 - 1, d1 * d1), (b1 + 1, u1 * u1)] {
                if cost0 + cost1 > limit_sq {
                    continue;
                }
                cell[1] = c1;
                if visit(cell, step(f0, c1)) {
                    return true;
                }
            }
        }
        return false;
    }
    let mut state = FoldSearchState {
        dim,
        limit_sq,
        dims: &scratch.dims,
        cell: &mut scratch.cell,
        step: &mut step,
        visit: &mut visit,
    };
    search_fold(&mut state, 0, 0.0, init)
}

struct FoldSearchState<'a, S, F> {
    dim: usize,
    limit_sq: f64,
    dims: &'a [(i64, f64, f64)],
    cell: &'a mut [i64],
    step: &'a mut S,
    visit: &'a mut F,
}

fn search_fold<S, F>(st: &mut FoldSearchState<'_, S, F>, depth: usize, acc_sq: f64, acc: u64) -> bool
where
    S: FnMut(u64, i64) -> u64,
    F: FnMut(&[i64], u64) -> bool,
{
    if acc_sq > st.limit_sq {
        return false;
    }
    if depth == st.dim {
        return (st.visit)(st.cell, acc);
    }
    let (base, down, up) = st.dims[depth];

    st.cell[depth] = base;
    let folded = (st.step)(acc, base);
    if search_fold(st, depth + 1, acc_sq, folded) {
        return true;
    }
    st.cell[depth] = base - 1;
    let folded = (st.step)(acc, base - 1);
    if search_fold(st, depth + 1, acc_sq + down * down, folded) {
        return true;
    }
    st.cell[depth] = base + 1;
    let folded = (st.step)(acc, base + 1);
    if search_fold(st, depth + 1, acc_sq + up * up, folded) {
        return true;
    }
    false
}

/// Collects `adj(p)` using the pruned DFS ([`for_each_adjacent_cell`]).
///
/// The cell containing `p` itself is always part of the result (it is at
/// distance zero).
pub fn adjacent_cells(grid: &Grid, p: &Point, alpha: f64) -> Vec<Box<[i64]>> {
    let mut cells = Vec::new();
    for_each_adjacent_cell(grid, p, alpha, |c| {
        cells.push(c.to_vec().into_boxed_slice());
        false
    });
    cells
}

/// Reference implementation of `adj(p)` that is correct for **any** grid
/// side length: a breadth-first flood fill over lattice cells starting at
/// `cell(p)`, keeping cells with `d(p, C) <= alpha`.
///
/// The kept region is axis-convex around `cell(p)` (per-dimension distance
/// contributions decrease monotonically toward the base cell), so expanding
/// only through kept cells via the `2d` axis neighbours reaches all of
/// `adj(p)`.
///
/// This is `O(|adj(p)| * d)` but with hashing overhead; it exists as the
/// oracle for property tests and for the small-side theory configuration.
pub fn adjacent_cells_bfs(grid: &Grid, p: &Point, alpha: f64) -> Vec<Box<[i64]>> {
    let dim = grid.dim();
    debug_assert_eq!(p.dim(), dim, "dimension mismatch");
    let limit_sq = alpha * alpha;
    let start: Vec<i64> = (0..dim)
        .map(|i| grid.grid_coord(p, i).floor() as i64)
        .collect();
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    let mut queue: VecDeque<Vec<i64>> = VecDeque::new();
    let mut out = Vec::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some(cell) = queue.pop_front() {
        if grid.dist_sq_point_cell(p, &cell) > limit_sq {
            continue;
        }
        out.push(cell.clone().into_boxed_slice());
        for i in 0..dim {
            for delta in [-1i64, 1] {
                let mut next = cell.clone();
                next[i] += delta;
                if !seen.contains(&next) {
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeSet;

    fn to_set(cells: Vec<Box<[i64]>>) -> BTreeSet<Vec<i64>> {
        cells.into_iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn own_cell_is_always_adjacent() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![0.5, 0.5]);
        let cells = to_set(adjacent_cells(&g, &p, 0.1));
        assert!(cells.contains(&vec![0, 0]));
    }

    #[test]
    fn centered_point_with_small_alpha_has_single_adjacent_cell() {
        let g = Grid::with_offset(3, 1.0, vec![0.0; 3]);
        let p = Point::new(vec![0.5, 0.5, 0.5]);
        let cells = adjacent_cells(&g, &p, 0.4);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn corner_point_touches_incident_cells() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        // near the lattice corner (1, 1): the four cells incident to the
        // corner are within ~0.0014; the cells at index 2 are ~0.999 away
        // and excluded by alpha = 0.9.
        let p = Point::new(vec![1.001, 1.001]);
        let cells = to_set(adjacent_cells(&g, &p, 0.9));
        assert_eq!(
            cells,
            BTreeSet::from([vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]])
        );
    }

    #[test]
    fn point_exactly_on_boundary() {
        let g = Grid::with_offset(1, 1.0, vec![0.0]);
        let p = Point::new(vec![2.0]); // boundary between cells 1 and 2
        let cells = to_set(adjacent_cells(&g, &p, 0.5));
        // cell 2 contains p; cell 1 touches it at distance 0; cell 3 is at
        // distance 1 > alpha.
        assert_eq!(cells, BTreeSet::from([vec![1], vec![2]]));
    }

    #[test]
    fn two_dim_alpha_half_side_shape() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![0.1, 0.5]);
        let cells = to_set(adjacent_cells(&g, &p, 0.5));
        // left cell at distance 0.1; up/down at 0.5; diagonals at
        // sqrt(0.1^2+0.5^2) ~ 0.51 > 0.5; right at 0.9.
        assert_eq!(
            cells,
            BTreeSet::from([vec![-1, 0], vec![0, -1], vec![0, 0], vec![0, 1]])
        );
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![1.0001, 1.0001]);
        let mut visited = 0usize;
        let stopped = for_each_adjacent_cell(&g, &p, 0.9, |_| {
            visited += 1;
            visited == 2
        });
        assert!(stopped);
        assert_eq!(visited, 2);
    }

    #[test]
    fn fold_dfs_visits_same_cells_in_same_order_with_folded_keys() {
        // The fold variant must enumerate exactly the cells of the plain
        // DFS, in the same order, and the carried value at each leaf must
        // equal folding the leaf's coordinates from scratch.
        let step = |acc: u64, c: i64| {
            acc.rotate_left(7) ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let mut rng = StdRng::seed_from_u64(77);
        for dim in 1..=4usize {
            for _ in 0..40 {
                let side = rng.random_range(0.5..2.0);
                let alpha = rng.random_range(0.01..side);
                let g = Grid::random(dim, side, &mut rng);
                let p = Point::new((0..dim).map(|_| rng.random_range(-5.0..5.0)).collect());
                let plain = adjacent_cells(&g, &p, alpha);
                let mut folded: Vec<(Vec<i64>, u64)> = Vec::new();
                for_each_adjacent_cell_fold(&g, &p, alpha, 0xABCD, step, |c, key| {
                    folded.push((c.to_vec(), key));
                    false
                });
                assert_eq!(folded.len(), plain.len());
                for (got, want) in folded.iter().zip(plain.iter()) {
                    assert_eq!(&got.0[..], &want[..], "cell order diverged");
                    let scratch = got.0.iter().fold(0xABCD, |a, &c| step(a, c));
                    assert_eq!(got.1, scratch, "fold carry diverged from re-fold");
                }
            }
        }
    }

    #[test]
    fn fold_dfs_early_exit_matches_plain_dfs() {
        let g = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
        let p = Point::new(vec![1.0001, 1.0001]);
        let mut visited = 0usize;
        let stopped =
            for_each_adjacent_cell_fold(&g, &p, 0.9, 0, |a, c| a ^ c as u64, |_: &[i64], _| {
                visited += 1;
                visited == 2
            });
        assert!(stopped);
        assert_eq!(visited, 2);
    }

    #[test]
    fn fold_dfs_first_visit_is_own_cell() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..50 {
            let g = Grid::random(3, 1.0, &mut rng);
            let p = Point::new((0..3).map(|_| rng.random_range(-4.0..4.0)).collect());
            let mut first: Option<Vec<i64>> = None;
            for_each_adjacent_cell_fold(&g, &p, 0.8, 0, |a, _| a, |c: &[i64], _| {
                first = Some(c.to_vec());
                true
            });
            assert_eq!(first.as_deref(), Some(&*g.cell_of(&p)));
        }
    }

    #[test]
    fn dfs_agrees_with_bfs_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        for dim in 1..=4usize {
            for _ in 0..40 {
                let side = rng.random_range(0.5..2.0);
                let alpha = rng.random_range(0.01..side);
                let g = Grid::random(dim, side, &mut rng);
                let p = Point::new((0..dim).map(|_| rng.random_range(-5.0..5.0)).collect());
                let dfs = to_set(adjacent_cells(&g, &p, alpha));
                let bfs = to_set(adjacent_cells_bfs(&g, &p, alpha));
                assert_eq!(dfs, bfs, "dim={dim} side={side} alpha={alpha}");
            }
        }
    }

    #[test]
    fn bfs_supports_sides_smaller_than_alpha() {
        let g = Grid::with_offset(1, 0.5, vec![0.0]);
        let p = Point::new(vec![0.25]);
        let cells = to_set(adjacent_cells_bfs(&g, &p, 1.0));
        // cells are [k*0.5, (k+1)*0.5); within distance 1.0 of x=0.25 are
        // cells covering [-0.75, 1.25] => indices -2..=2.
        assert_eq!(
            cells,
            BTreeSet::from([vec![-2], vec![-1], vec![0], vec![1], vec![2]])
        );
    }

    #[test]
    #[should_panic(expected = "side >= alpha")]
    fn dfs_rejects_small_side() {
        let g = Grid::with_offset(1, 0.5, vec![0.0]);
        let p = Point::new(vec![0.25]);
        let _ = adjacent_cells(&g, &p, 1.0);
    }

    #[test]
    fn all_reported_cells_are_within_alpha() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Grid::random(3, 1.0, &mut rng);
        let p = Point::new(vec![0.3, -2.4, 7.7]);
        let alpha = 0.8;
        for c in adjacent_cells(&g, &p, alpha) {
            assert!(g.dist_point_cell(&p, &c) <= alpha + 1e-12);
        }
    }
}
