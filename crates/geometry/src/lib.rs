//! Geometric substrate for robust distinct sampling on noisy streams.
//!
//! This crate implements the Euclidean-space machinery of
//! *"Distinct Sampling on Streaming Data with Near-Duplicates"*
//! (Chen & Zhang, PODS 2018):
//!
//! * [`Point`] and [`Ball`] — points in `R^d` and the `Ball(p, alpha)`
//!   neighbourhoods used by the sampling guarantees;
//! * [`Grid`] — the randomly shifted grid of side `Θ(alpha)` posted over
//!   the point set (Section 2.1);
//! * [`for_each_adjacent_cell`] — the pruned depth-first enumeration of
//!   `adj(p) = { C : d(p, C) <= alpha }` (Algorithms 6 and 7, Section 6.2),
//!   plus a flood-fill reference implementation;
//! * [`JlProjection`] — Gaussian dimension reduction (Remark 2, Section 4).

#![warn(missing_docs)]

mod adjacency;
mod grid;
mod jl;
mod point;

pub use adjacency::{
    adjacent_cells, adjacent_cells_bfs, for_each_adjacent_cell, for_each_adjacent_cell_fold,
    for_each_adjacent_cell_fold_with, AdjacencyScratch,
};
pub use grid::{CellCoord, Grid};
pub use jl::{standard_normal, JlProjection};
pub use point::{Ball, Point};
