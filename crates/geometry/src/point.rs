//! Points in `R^d` and the distance kernels used throughout the library.
//!
//! The paper (Chen & Zhang, PODS 2018) models noisy data items as points in
//! Euclidean space; two points belong to the same *group* (i.e. are
//! near-duplicates of the same entity) when their distance is at most the
//! user-chosen threshold `alpha`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in `d`-dimensional Euclidean space.
///
/// Coordinates are stored in a boxed slice so that a `Point` is two words on
/// the stack and cheap to move. Cloning copies the coordinates.
///
/// # Examples
///
/// ```
/// use rds_geometry::Point;
///
/// let p = Point::new(vec![0.0, 3.0]);
/// let q = Point::new(vec![4.0, 0.0]);
/// assert_eq!(p.distance(&q), 5.0);
/// assert_eq!(p.dim(), 2);
/// ```
#[derive(PartialEq, Serialize)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Clone for Point {
    fn clone(&self) -> Self {
        Self {
            coords: self.coords.clone(),
        }
    }

    // Reservoir replacement overwrites points of identical dimension in a
    // tight loop; reusing the existing allocation keeps that path off the
    // allocator (the derive's clone_from would reallocate every time).
    fn clone_from(&mut self, source: &Self) {
        self.coords.clone_from(&source.coords);
    }
}

// Deserialization is manual (same wire shape as the derive would emit) so
// the constructor invariants hold for points read back from disk too: a
// snapshot or checkpoint file edited to contain an empty or non-finite
// point must surface as a deserialization error, not as a `Point` that
// violates the grid arithmetic's assumptions downstream.
impl Deserialize for Point {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let coords = Vec::<f64>::from_value(
            value.get("coords").unwrap_or(&serde::Value::Null),
        )
        .map_err(|e| serde::DeError::custom(format!("field `coords`: {e}")))?;
        if coords.is_empty() {
            return Err(serde::DeError::custom(
                "a point must have at least 1 dimension",
            ));
        }
        if !coords.iter().all(|c| c.is_finite()) {
            return Err(serde::DeError::custom(
                "point coordinates must be finite",
            ));
        }
        Ok(Self {
            coords: coords.into_boxed_slice(),
        })
    }
}

impl Point {
    /// Creates a point from its coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite coordinate;
    /// the grid arithmetic in this crate requires finite coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point must have at least 1 dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Creates the origin of `R^dim`.
    pub fn origin(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The `i`-th coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the dimensions differ.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Returns `true` when `d(self, other) <= alpha`.
    ///
    /// Exits early as soon as the partial squared sum exceeds `alpha^2`,
    /// which makes the (hot) candidate-group membership test of
    /// Algorithms 1 and 2 cheap in high dimension for far-apart points.
    #[inline]
    pub fn within(&self, other: &Point, alpha: f64) -> bool {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        let limit = alpha * alpha;
        let mut acc = 0.0;
        for (a, b) in self.coords.iter().zip(other.coords.iter()) {
            let d = a - b;
            acc += d * d;
            if acc > limit {
                return false;
            }
        }
        true
    }

    /// Euclidean norm of the point seen as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Coordinate-wise sum with `other`.
    pub fn add(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// The point scaled by `s`.
    pub fn scale(&self, s: f64) -> Point {
        Point::new(self.coords.iter().map(|c| c * s).collect())
    }

    /// Number of machine words needed to store the coordinates; used by the
    /// space-accounting harness that reproduces the paper's `pSpace` metric.
    #[inline]
    pub fn words(&self) -> usize {
        self.coords.len()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

/// A closed ball `Ball(center, radius) = { q : d(center, q) <= radius }`.
///
/// Definition 1.6 of the paper phrases the sampling guarantee for general
/// datasets in terms of `Ball(p, alpha) ∩ S`.
#[derive(Clone, Debug)]
pub struct Ball {
    center: Point,
    radius: f64,
}

impl Ball {
    /// Creates the closed ball with the given center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "invalid ball radius");
        Self { center, radius }
    }

    /// The ball's center.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// The ball's radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether `q` lies in the closed ball.
    #[inline]
    pub fn contains(&self, q: &Point) -> bool {
        self.center.within(q, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_hand_computation() {
        let p = Point::new(vec![1.0, 2.0, 2.0]);
        let q = Point::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.distance_sq(&q), 8.0);
        assert!((p.distance(&q) - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(vec![0.5, -3.25, 7.0]);
        assert_eq!(p.distance_sq(&p), 0.0);
        assert!(p.within(&p, 0.0));
    }

    #[test]
    fn within_is_inclusive_at_the_threshold() {
        let p = Point::new(vec![0.0]);
        let q = Point::new(vec![2.0]);
        assert!(p.within(&q, 2.0));
        assert!(!p.within(&q, 1.999_999));
    }

    #[test]
    fn within_early_exit_agrees_with_full_distance() {
        let p = Point::new(vec![10.0, 0.0, 0.0, 0.0]);
        let q = Point::new(vec![0.0, 0.0, 0.0, 0.0]);
        // first coordinate alone exceeds the threshold
        assert!(!p.within(&q, 9.0));
        assert!(p.within(&q, 10.0));
    }

    #[test]
    fn add_and_scale() {
        let p = Point::new(vec![1.0, 2.0]);
        let q = Point::new(vec![-1.0, 0.5]);
        assert_eq!(p.add(&q), Point::new(vec![0.0, 2.5]));
        assert_eq!(p.scale(2.0), Point::new(vec![2.0, 4.0]));
    }

    #[test]
    fn norm_of_unit_vectors() {
        assert_eq!(Point::new(vec![1.0, 0.0]).norm(), 1.0);
        assert!((Point::new(vec![3.0, 4.0]).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ball_contains_boundary() {
        let b = Ball::new(Point::new(vec![0.0, 0.0]), 1.0);
        assert!(b.contains(&Point::new(vec![1.0, 0.0])));
        assert!(!b.contains(&Point::new(vec![1.0, 0.1])));
        assert_eq!(b.radius(), 1.0);
        assert_eq!(b.center(), &Point::new(vec![0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_coordinate_panics() {
        let _ = Point::new(vec![f64::NAN]);
    }

    #[test]
    fn words_counts_coordinates() {
        assert_eq!(Point::origin(7).words(), 7);
    }
}
