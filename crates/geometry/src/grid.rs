//! Randomly shifted axis-aligned grids over `R^d`.
//!
//! Section 2.1 of the paper posts a random grid of side length `Θ(alpha)`
//! over the point set and samples *cells* (rather than groups) with a hash
//! function. A cell is identified by its integer coordinate vector
//! `c = (c_1, ..., c_d)` with `c_i = floor((x_i - offset_i) / side)`.

use crate::Point;
use rand::{Rng, RngExt};

/// Integer coordinates of a grid cell.
///
/// Cells are identified by the lattice coordinates of their lower corner, in
/// units of the grid side length.
pub type CellCoord = Box<[i64]>;

/// A randomly shifted axis-aligned grid with a fixed side length.
///
/// # Examples
///
/// ```
/// use rds_geometry::{Grid, Point};
///
/// let grid = Grid::with_offset(2, 1.0, vec![0.0, 0.0]);
/// let cell = grid.cell_of(&Point::new(vec![2.5, -0.5]));
/// assert_eq!(&*cell, &[2, -1]);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    dim: usize,
    side: f64,
    offset: Box<[f64]>,
}

impl Grid {
    /// Creates a grid with a uniformly random offset in `[0, side)^dim`.
    ///
    /// The random shift is what makes the "cell cut by a group" events
    /// probabilistic in Lemma 4.2 of the paper.
    pub fn random<R: Rng + ?Sized>(dim: usize, side: f64, rng: &mut R) -> Self {
        assert!(side.is_finite() && side > 0.0, "grid side must be positive");
        let offset = (0..dim).map(|_| rng.random_range(0.0..side)).collect();
        Self { dim, side, offset }
    }

    /// Creates a grid with an explicit offset (useful for deterministic
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if `offset.len() != dim`, if `side <= 0`, or if any offset
    /// coordinate is outside `[0, side)`.
    pub fn with_offset(dim: usize, side: f64, offset: Vec<f64>) -> Self {
        assert!(side.is_finite() && side > 0.0, "grid side must be positive");
        assert_eq!(offset.len(), dim, "offset dimension mismatch");
        assert!(
            offset.iter().all(|o| (0.0..side).contains(o)),
            "offsets must lie in [0, side)"
        );
        Self {
            dim,
            side,
            offset: offset.into_boxed_slice(),
        }
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Side length of each cell.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// The grid's offset vector.
    #[inline]
    pub fn offset(&self) -> &[f64] {
        &self.offset
    }

    /// Coordinate of `p` along dimension `i` in grid units (so that cell
    /// boundaries lie at integers).
    #[inline]
    pub fn grid_coord(&self, p: &Point, i: usize) -> f64 {
        (p.get(i) - self.offset[i]) / self.side
    }

    /// Writes the cell coordinates of `p` into `out` (cleared first).
    ///
    /// This is the allocation-free variant for hot paths.
    pub fn cell_of_into(&self, p: &Point, out: &mut Vec<i64>) {
        debug_assert_eq!(p.dim(), self.dim, "dimension mismatch");
        out.clear();
        out.extend((0..self.dim).map(|i| self.grid_coord(p, i).floor() as i64));
    }

    /// The cell containing `p` (`cell(p)` in the paper's notation).
    pub fn cell_of(&self, p: &Point) -> CellCoord {
        let mut out = Vec::with_capacity(self.dim);
        self.cell_of_into(p, &mut out);
        out.into_boxed_slice()
    }

    /// Squared distance from `p` to the closed cell with coordinates `cell`.
    ///
    /// The nearest point of the cell is the coordinate-wise clamp of `p` to
    /// the cell's box, which is exactly the "sequential movement" description
    /// in Section 6.2 of the paper.
    pub fn dist_sq_point_cell(&self, p: &Point, cell: &[i64]) -> f64 {
        debug_assert_eq!(cell.len(), self.dim, "cell dimension mismatch");
        let mut acc = 0.0;
        for (i, &ci) in cell.iter().enumerate() {
            let g = self.grid_coord(p, i);
            let lo = ci as f64;
            let hi = lo + 1.0;
            let delta = if g < lo {
                lo - g
            } else if g > hi {
                g - hi
            } else {
                0.0
            };
            let d = delta * self.side;
            acc += d * d;
        }
        acc
    }

    /// Distance from `p` to the closed cell `cell` (`d(p, C)` in the paper).
    pub fn dist_point_cell(&self, p: &Point, cell: &[i64]) -> f64 {
        self.dist_sq_point_cell(p, cell).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn unit_grid(dim: usize) -> Grid {
        Grid::with_offset(dim, 1.0, vec![0.0; dim])
    }

    #[test]
    fn cell_of_simple_cases() {
        let g = unit_grid(2);
        assert_eq!(&*g.cell_of(&Point::new(vec![0.5, 0.5])), &[0, 0]);
        assert_eq!(&*g.cell_of(&Point::new(vec![-0.5, 1.5])), &[-1, 1]);
        // boundary points belong to the upper cell (floor semantics)
        assert_eq!(&*g.cell_of(&Point::new(vec![1.0, 2.0])), &[1, 2]);
    }

    #[test]
    fn offset_shifts_cells() {
        let g = Grid::with_offset(1, 1.0, vec![0.25]);
        assert_eq!(&*g.cell_of(&Point::new(vec![0.2])), &[-1]);
        assert_eq!(&*g.cell_of(&Point::new(vec![0.3])), &[0]);
    }

    #[test]
    fn side_scales_cells() {
        let g = Grid::with_offset(1, 2.0, vec![0.0]);
        assert_eq!(&*g.cell_of(&Point::new(vec![3.9])), &[1]);
        assert_eq!(&*g.cell_of(&Point::new(vec![4.0])), &[2]);
    }

    #[test]
    fn dist_to_own_cell_is_zero() {
        let g = unit_grid(3);
        let p = Point::new(vec![0.3, 0.7, 0.999]);
        let c = g.cell_of(&p);
        assert_eq!(g.dist_sq_point_cell(&p, &c), 0.0);
    }

    #[test]
    fn dist_to_adjacent_cell() {
        let g = unit_grid(2);
        let p = Point::new(vec![0.25, 0.5]);
        // cell to the left: distance is 0.25 (to the boundary x=0)
        assert!((g.dist_point_cell(&p, &[-1, 0]) - 0.25).abs() < 1e-12);
        // diagonal cell (-1, -1): sqrt(0.25^2 + 0.5^2)
        let expect = (0.25_f64 * 0.25 + 0.5 * 0.5).sqrt();
        assert!((g.dist_point_cell(&p, &[-1, -1]) - expect).abs() < 1e-12);
    }

    #[test]
    fn dist_respects_side_length() {
        let g = Grid::with_offset(1, 2.0, vec![0.0]);
        let p = Point::new(vec![1.0]); // middle of cell 0 = [0, 2)
        assert!((g.dist_point_cell(&p, &[1]) - 1.0).abs() < 1e-12);
        assert!((g.dist_point_cell(&p, &[2]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_offsets_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let g = Grid::random(4, 2.5, &mut rng);
            assert!(g.offset().iter().all(|&o| (0.0..2.5).contains(&o)));
        }
    }

    #[test]
    fn reusable_buffer_matches_allocating_variant() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = Grid::random(5, 0.7, &mut rng);
        let mut buf = Vec::new();
        for _ in 0..64 {
            let p = Point::new((0..5).map(|_| rng.random_range(-10.0..10.0)).collect());
            g.cell_of_into(&p, &mut buf);
            assert_eq!(&buf[..], &*g.cell_of(&p));
        }
    }

    #[test]
    #[should_panic(expected = "side must be positive")]
    fn zero_side_panics() {
        let _ = Grid::with_offset(1, 0.0, vec![0.0]);
    }
}
