//! Johnson–Lindenstrauss style Gaussian random projections.
//!
//! Remark 2 of the paper observes that for high-dimensional data the
//! sparsity requirement `beta > d^1.5 * alpha` can be weakened to
//! `beta >= c * log^1.5(m) * alpha` by first applying a JL dimension
//! reduction. This module provides the projection used by that reduction.

use crate::Point;
use rand::{Rng, RngExt};

/// Draws a standard normal variate via the Box–Muller transform.
///
/// (The `rand` crate's normal distribution lives in the separate
/// `rand_distr` crate, which this workspace intentionally does not depend
/// on.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A linear map `R^d -> R^k` with i.i.d. `N(0, 1/k)` entries.
///
/// For any fixed pair of points, distances are preserved up to `1 ± eps`
/// with probability `1 - exp(-Omega(eps^2 k))`.
///
/// # Examples
///
/// ```
/// use rds_geometry::{JlProjection, Point};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let proj = JlProjection::new(64, 16, &mut rng);
/// let p = proj.project(&Point::origin(64));
/// assert_eq!(p.dim(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct JlProjection {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim x in_dim` matrix.
    mat: Box<[f64]>,
}

impl JlProjection {
    /// Samples a projection from `R^in_dim` to `R^out_dim`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let scale = 1.0 / (out_dim as f64).sqrt();
        let mat = (0..in_dim * out_dim)
            .map(|_| standard_normal(rng) * scale)
            .collect();
        Self {
            in_dim,
            out_dim,
            mat,
        }
    }

    /// The input dimension `d`.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The output dimension `k`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The suggested output dimension for a stream of length `m` and
    /// distortion `eps`, `k = ceil(8 ln(m) / eps^2)`.
    pub fn suggested_dim(stream_len: u64, eps: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let m = (stream_len.max(2)) as f64;
        ((8.0 * m.ln()) / (eps * eps)).ceil() as usize
    }

    /// Projects `p` into `R^out_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `p.dim() != self.in_dim()`.
    pub fn project(&self, p: &Point) -> Point {
        assert_eq!(p.dim(), self.in_dim, "dimension mismatch");
        let coords = (0..self.out_dim)
            .map(|r| {
                let row = &self.mat[r * self.in_dim..(r + 1) * self.in_dim];
                row.iter()
                    .zip(p.coords().iter())
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect();
        Point::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_samples_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn projection_is_linear() {
        let mut rng = StdRng::seed_from_u64(5);
        let proj = JlProjection::new(10, 4, &mut rng);
        let p = Point::new((0..10).map(|i| i as f64).collect());
        let q = Point::new((0..10).map(|i| (10 - i) as f64).collect());
        let sum = proj.project(&p.add(&q));
        let parts = proj.project(&p).add(&proj.project(&q));
        for i in 0..4 {
            assert!((sum.get(i) - parts.get(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn distances_roughly_preserved() {
        let mut rng = StdRng::seed_from_u64(8);
        let proj = JlProjection::new(200, 128, &mut rng);
        let mut ok = 0;
        let trials = 30;
        for _ in 0..trials {
            let p = Point::new((0..200).map(|_| standard_normal(&mut rng)).collect());
            let q = Point::new((0..200).map(|_| standard_normal(&mut rng)).collect());
            let d0 = p.distance(&q);
            let d1 = proj.project(&p).distance(&proj.project(&q));
            if (d1 / d0 - 1.0).abs() < 0.35 {
                ok += 1;
            }
        }
        assert!(ok >= trials - 2, "only {ok}/{trials} within distortion");
    }

    #[test]
    fn suggested_dim_shrinks_with_eps() {
        assert!(
            JlProjection::suggested_dim(1_000_000, 0.5)
                < JlProjection::suggested_dim(1_000_000, 0.1)
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn project_rejects_wrong_dim() {
        let mut rng = StdRng::seed_from_u64(5);
        let proj = JlProjection::new(10, 4, &mut rng);
        let _ = proj.project(&Point::origin(9));
    }
}
