//! # robust-distinct-sampling
//!
//! Robust ℓ0-sampling and distinct-element estimation on streams with
//! near-duplicates — a Rust implementation of Chen & Zhang,
//! *"Distinct Sampling on Streaming Data with Near-Duplicates"*
//! (PODS 2018).
//!
//! Points within a user-chosen distance `alpha` are treated as
//! near-duplicates of one *group* (entity). The library answers, in
//! space polylogarithmic in the stream length:
//!
//! * "give me a uniformly random **entity**" — [`core::RobustL0Sampler`]
//!   (whole stream) and [`core::SlidingWindowSampler`] (last `w` items or
//!   time units);
//! * "how many distinct entities are there?" — [`core::RobustF0Estimator`]
//!   and [`core::SlidingWindowF0`];
//! * "which entities dominate the stream?" — [`core::RobustHeavyHitters`];
//! * distributed unions ([`core::DistributedSampling`]), `k`-sampling,
//!   high-dimensional and angular-metric variants.
//!
//! This umbrella crate re-exports the workspace members and provides the
//! [`Rds`] facade — one window-agnostic, shard-agnostic handle over every
//! sampler regime; depend on the individual `rds-*` crates for narrower
//! builds.
//!
//! ```
//! use robust_distinct_sampling::{Rds, geometry::Point};
//!
//! let mut rds = Rds::builder()
//!     .dim(2)
//!     .alpha(0.1)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! for i in 0..1000 {
//!     // 10 entities, each emitting 100 noisy observations
//!     let entity = (i % 10) as f64 * 5.0;
//!     let jitter = 0.001 * (i / 10) as f64;
//!     rds.process(Point::new(vec![entity + jitter, entity]));
//! }
//! let sample = rds.query().expect("stream non-empty");
//! assert_eq!(sample.rep.dim(), 2);
//! assert_eq!(rds.f0_estimate(), 10.0);
//! ```
//!
//! Add `.window(Window::Sequence(w))` for sliding-window queries or
//! `.shards(n)` for concurrent sharded ingestion — same handle, same
//! calls. Swap `.build()` for `.build_split()` to get the
//! `(`[`RdsWriter`]`, `[`RdsReader`]`)` pair: the writer owns ingestion
//! and publishes immutable epoch-stamped [`Snapshot`]s, and cloned
//! readers serve `query`/`query_k`/`f0_estimate` with `&self` from any
//! number of threads without ever blocking the ingest path. The concrete
//! samplers behind the facade all implement [`core::DistinctSampler`],
//! the trait to program against when a library needs to accept any
//! family directly.
//!
//! State is durable: [`RdsWriter::checkpoint_to`] persists the complete
//! sampler state (every family implements [`core::Checkpointable`]) in a
//! versioned, checksummed container, and
//! `Rds::builder().restore_from(path)` resumes it — continued ingestion
//! and queries are bit-identical to a process that never restarted;
//! damaged or config-mismatched files fail with
//! [`core::RdsError::Checkpoint`].

#![warn(missing_docs)]

mod facade;

pub use facade::{
    fnv1a64, PublishCadence, Rds, RdsBuilder, RdsReader, RdsWriter, Snapshot, WriterCheckpoint,
    CHECKPOINT_FORMAT_VERSION, CHECKPOINT_MAGIC, DEFAULT_PUBLISH_EVERY,
};

pub use rds_baselines as baselines;
pub use rds_core as core;
pub use rds_datasets as datasets;
pub use rds_engine as engine;
pub use rds_geometry as geometry;
pub use rds_hashing as hashing;
pub use rds_metrics as metrics;
pub use rds_stream as stream;

/// Commonly used types.
pub mod prelude {
    pub use crate::facade::{PublishCadence, Rds, RdsBuilder, RdsReader, RdsWriter, Snapshot};
    pub use rds_core::{
        DistinctSampler, GroupRecord, RdsError, RobustF0Estimator, RobustHeavyHitters,
        RobustL0Sampler, SamplerConfig, SamplerSummary, SlidingWindowF0, SlidingWindowSampler,
    };
    pub use rds_engine::ShardedEngine;
    pub use rds_geometry::{Grid, Point};
    pub use rds_stream::{Stamp, StreamItem, Window};
}
