//! The `Rds` facade: one window-agnostic, shard-agnostic entry point.
//!
//! `Rds::builder()` collects the problem parameters — dimension, the
//! near-duplicate threshold `alpha`, the window model, the shard count —
//! and `build()` picks the backend: a single in-process sampler for
//! `shards == 1`, the sharded engine otherwise; the infinite-window
//! sampler for [`Window::Infinite`], the sliding-window hierarchy for a
//! bounded window. Every combination answers the same queries through the
//! same handle, so callers swap regimes by changing configuration, not
//! code.
//!
//! ```
//! use robust_distinct_sampling::{Rds, geometry::Point};
//!
//! let mut rds = Rds::builder()
//!     .dim(1)
//!     .alpha(0.5)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! for i in 0..200u64 {
//!     rds.process(Point::new(vec![(i % 20) as f64 * 10.0]));
//! }
//! assert_eq!(rds.f0_estimate(), 20.0);
//! let sample = rds.query().expect("stream non-empty");
//! assert_eq!(sample.rep.dim(), 1);
//! ```

use rds_core::{
    DistinctSampler, GroupRecord, RdsError, RobustL0Sampler, SamplerConfig, SlidingWindowSampler,
    DEFAULT_KAPPA_B,
};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

/// Which concrete pipeline serves the handle. One variant per
/// (window, sharding) combination; all four speak [`DistinctSampler`] /
/// the engine's merged-summary API.
enum Backend {
    /// `shards == 1`, infinite window: Algorithm 1 in-process.
    Single(Box<RobustL0Sampler>),
    /// `shards == 1`, bounded window: Algorithm 3 in-process.
    Window(Box<SlidingWindowSampler>),
    /// `shards > 1`, infinite window.
    Engine(ShardedEngine<RobustL0Sampler>),
    /// `shards > 1`, bounded window.
    WindowEngine(ShardedEngine<SlidingWindowSampler>),
}

/// A unified robust-distinct-sampling handle over any window model and
/// shard count. Build one with [`Rds::builder`].
pub struct Rds {
    backend: Backend,
    window: Window,
    shards: usize,
    fed: u64,
}

/// Fallible builder for [`Rds`]; `dim` and `alpha` are required, all
/// other parameters have the library defaults. Validation happens in
/// [`Self::build`] and surfaces as [`RdsError`] — no panics.
#[derive(Clone, Debug)]
pub struct RdsBuilder {
    dim: Option<usize>,
    alpha: Option<f64>,
    window: Window,
    shards: usize,
    seed: u64,
    expected_len: u64,
    k: usize,
    kappa0: Option<f64>,
    eps: Option<f64>,
}

impl Default for RdsBuilder {
    fn default() -> Self {
        Self {
            dim: None,
            alpha: None,
            window: Window::Infinite,
            shards: 1,
            seed: 0xC0FF_EE00,
            expected_len: 1 << 20,
            k: 1,
            kappa0: None,
            eps: None,
        }
    }
}

impl RdsBuilder {
    /// Sets the ambient dimension `d` (required).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Sets the near-duplicate distance threshold `alpha` (required).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Restricts queries to a sliding window ([`Window::Sequence`] /
    /// [`Window::Time`]); [`Window::Infinite`] (the default) covers the
    /// whole stream.
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Shards ingestion across `n` worker threads (default 1 = a plain
    /// in-process sampler). Works for every window model.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected stream length `m` (an estimate is fine).
    pub fn expected_len(mut self, m: u64) -> Self {
        self.expected_len = m;
        self
    }

    /// Sets the number of distinct samples per query (scales the accept
    /// thresholds, Section 2.3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the threshold constant `kappa_0`.
    pub fn kappa0(mut self, kappa0: f64) -> Self {
        self.kappa0 = Some(kappa0);
        self
    }

    /// Tunes the handle for F0 estimation at relative error `eps`
    /// (Section 5): the accept-set threshold becomes
    /// `ceil(kappa_B / eps^2)` instead of `kappa_0 k log m`.
    pub fn count_accuracy(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Validates every parameter and assembles the backend.
    ///
    /// # Errors
    ///
    /// Any [`RdsError`]: missing/invalid `dim` or `alpha`, a bad window,
    /// shard count, `k`, `kappa0`, or `eps` — never a panic.
    pub fn build(self) -> Result<Rds, RdsError> {
        let dim = self.dim.unwrap_or(0); // 0 is rejected by validation below
        let alpha = self.alpha.unwrap_or(f64::NAN); // NaN likewise
        let mut b = SamplerConfig::builder(dim, alpha)
            .seed(self.seed)
            .expected_len(self.expected_len)
            .k(self.k);
        if let Some(kappa0) = self.kappa0 {
            b = b.kappa0(kappa0);
        }
        let cfg = b.build()?;
        let threshold = match self.eps {
            Some(eps) => {
                if !(eps > 0.0 && eps <= 1.0) {
                    return Err(RdsError::InvalidEps { eps });
                }
                (DEFAULT_KAPPA_B / (eps * eps)).ceil().max(1.0) as usize
            }
            None => cfg.threshold(),
        };
        if self.shards == 0 {
            return Err(RdsError::InvalidShards);
        }
        let backend = match (self.window, self.shards) {
            (Window::Infinite, 1) => {
                Backend::Single(Box::new(RobustL0Sampler::try_with_threshold(cfg, threshold)?))
            }
            (Window::Infinite, n) => {
                Backend::Engine(ShardedEngine::try_with_threshold(cfg, n, threshold)?)
            }
            (window, 1) => Backend::Window(Box::new(SlidingWindowSampler::try_with_threshold(
                cfg, window, threshold,
            )?)),
            (window, n) => Backend::WindowEngine(
                ShardedEngine::try_sliding_window_with_threshold(cfg, window, n, threshold)?,
            ),
        };
        Ok(Rds {
            backend,
            window: self.window,
            shards: self.shards,
            fed: 0,
        })
    }
}

impl Rds {
    /// Starts a builder with the library defaults.
    pub fn builder() -> RdsBuilder {
        RdsBuilder::default()
    }

    /// Feeds one point, stamped with the arrival index (sequence number
    /// == timestamp). Use [`Self::process_item`] for explicit timestamps
    /// (time-based windows).
    pub fn process(&mut self, p: Point) {
        let stamp = Stamp::at(self.fed);
        self.process_item(StreamItem::new(p, stamp));
    }

    /// Feeds one stamped stream item. Stamps must be non-decreasing.
    pub fn process_item(&mut self, item: StreamItem) {
        self.fed += 1;
        match &mut self.backend {
            Backend::Single(s) => {
                s.process(&item.point);
            }
            Backend::Window(s) => {
                s.process(&item);
            }
            Backend::Engine(e) => e.ingest_item(item),
            Backend::WindowEngine(e) => e.ingest_item(item),
        }
    }

    /// Draws one uniformly random sampled entity, owned. `None` iff
    /// nothing was processed (or nothing is live in the window).
    pub fn query(&mut self) -> Option<GroupRecord> {
        match &mut self.backend {
            Backend::Single(s) => DistinctSampler::query_record(s.as_mut()),
            Backend::Window(s) => DistinctSampler::query_record(s.as_mut()),
            Backend::Engine(e) => e.query(),
            Backend::WindowEngine(e) => e.query(),
        }
    }

    /// Draws up to `k` distinct sampled entities, owned.
    pub fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        match &mut self.backend {
            Backend::Single(s) => DistinctSampler::query_k(s.as_mut(), k),
            Backend::Window(s) => DistinctSampler::query_k(s.as_mut(), k),
            Backend::Engine(e) => e.query_k(k),
            Backend::WindowEngine(e) => e.query_k(k),
        }
    }

    /// The estimate of the number of distinct entities (in the window,
    /// for window backends).
    pub fn f0_estimate(&mut self) -> f64 {
        match &mut self.backend {
            Backend::Single(s) => DistinctSampler::f0_estimate(s.as_ref()),
            Backend::Window(s) => DistinctSampler::f0_estimate(s.as_ref()),
            Backend::Engine(e) => e.f0_estimate(),
            Backend::WindowEngine(e) => e.f0_estimate(),
        }
    }

    /// Number of items fed through this handle.
    pub fn seen(&self) -> u64 {
        self.fed
    }

    /// The window model in force.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The shard count (1 = in-process sampler).
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![(i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 3) as f64])
    }

    fn base() -> RdsBuilder {
        Rds::builder().dim(1).alpha(0.5).seed(5).expected_len(2048)
    }

    #[test]
    fn all_four_backends_agree_on_exact_counts() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 4),
            (Window::Sequence(1 << 14), 1),
            (Window::Sequence(1 << 14), 4),
        ] {
            let mut rds = base().window(window).shards(shards).build().expect("valid");
            for i in 0..360u64 {
                rds.process(grouped_point(i, 18));
            }
            assert_eq!(
                rds.f0_estimate(),
                18.0,
                "backend (window {window:?}, shards {shards}) missed the count"
            );
            let q = rds.query().expect("non-empty");
            assert!(q.count > 0);
            assert_eq!(rds.seen(), 360);
            let picks = rds.query_k(3);
            assert_eq!(picks.len(), 3);
            for a in 0..picks.len() {
                for b in (a + 1)..picks.len() {
                    assert!(!picks[a].rep.within(&picks[b].rep, 0.5));
                }
            }
        }
    }

    #[test]
    fn windowed_backends_expire_old_entities() {
        for shards in [1usize, 3] {
            let mut rds = base()
                .window(Window::Sequence(32))
                .shards(shards)
                .build()
                .expect("valid");
            for i in 0..256u64 {
                rds.process(grouped_point(i, 16));
            }
            assert_eq!(rds.f0_estimate(), 16.0);
            for _ in 0..64u64 {
                rds.process(Point::new(vec![0.0]));
            }
            assert_eq!(rds.f0_estimate(), 1.0, "shards {shards}: window did not slide");
        }
    }

    #[test]
    fn time_based_window_through_the_facade() {
        let mut rds = base().window(Window::Time(10)).shards(2).build().expect("valid");
        for g in 0..5u64 {
            rds.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        assert_eq!(rds.f0_estimate(), 5.0);
        rds.process_item(StreamItem::new(Point::new(vec![990.0]), Stamp::new(5, 30)));
        assert_eq!(rds.f0_estimate(), 1.0);
    }

    #[test]
    fn count_accuracy_controls_the_threshold() {
        // eps = 1 → threshold 16: 12 groups stay exact
        let mut rds = base().count_accuracy(1.0).build().expect("valid");
        for i in 0..120u64 {
            rds.process(grouped_point(i, 12));
        }
        assert_eq!(rds.f0_estimate(), 12.0);
    }

    #[test]
    fn builder_surfaces_typed_errors() {
        assert!(matches!(
            Rds::builder().alpha(0.5).build(),
            Err(RdsError::InvalidDimension { .. })
        ));
        assert!(matches!(
            Rds::builder().dim(2).build(),
            Err(RdsError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            base().shards(0).build(),
            Err(RdsError::InvalidShards)
        ));
        assert!(matches!(
            base().count_accuracy(0.0).build(),
            Err(RdsError::InvalidEps { .. })
        ));
        assert!(matches!(
            base().window(Window::Sequence(0)).build(),
            Err(RdsError::EmptyWindow)
        ));
        assert!(matches!(
            base().k(0).build(),
            Err(RdsError::InvalidK)
        ));
    }

    #[test]
    fn backend_swap_needs_no_signature_churn() {
        // The satellite contract: identical calling code against single
        // and sharded backends.
        let run = |shards: usize| -> (f64, Option<GroupRecord>) {
            let mut rds = base().shards(shards).build().expect("valid");
            for i in 0..100u64 {
                rds.process(grouped_point(i, 10));
            }
            (rds.f0_estimate(), rds.query())
        };
        let (f0_single, q_single) = run(1);
        let (f0_sharded, q_sharded) = run(4);
        assert_eq!(f0_single, f0_sharded);
        assert!(q_single.is_some() && q_sharded.is_some());
    }
}
